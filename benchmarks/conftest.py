"""Benchmark configuration.

Every benchmark wraps one experiment harness (T1..T5, F1..F4). The
experiments are exact-solver sweeps, so most run with a single round via
``benchmark.pedantic`` — the interesting number is the one-shot wall time
(the paper reports lp_solve CPU seconds the same way), not a statistical
distribution over thousands of calls.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
