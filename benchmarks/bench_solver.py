"""Solver benchmark: the branch-and-bound fast path vs the plain search.

Measures the F1 width sweep (S1, the paper's heaviest routine exact
harness) under four solver configurations and writes the numbers to
``BENCH_solver.json``:

- ``fast_cold`` — defaults: node presolve + pseudocost branching, jobs=1,
  empty cache;
- ``baseline_cold`` — ``presolve=False, branching="most_fractional"``:
  exactly the pre-fast-path solver, same grid;
- ``fast_warm`` — defaults re-run on the populated disk cache (every solve
  answered from the store);
- ``fast_cold_jobsN`` — defaults, cold cache, parallel fan-out;
- ``cuts_off`` / ``cuts_on`` — the same sweep under a tight layout budget
  (grid floorplan, ``max_pair_distance=3.0``) with branch-and-cut disabled
  vs the default :class:`~repro.api.CutPolicy` — the pairwise exclusion
  rows give the clique separator real conflict structure, so this pair
  isolates what the cuts buy;
- ``presolve_off`` / ``presolve_on`` / ``warm_start`` — the PR-9 ladder on
  the same grid: root presolve and warm starts both off (the PR-8 solver),
  root presolve alone, then root presolve + warm-started node LPs (the
  defaults). ``presolve_off`` vs ``warm_start`` is the headline
  cold-wall-time step;
- ``presolve_active`` — S1 under ``timing="fixed"`` with mixed narrow
  widths and a tight power budget. Serial timing never renders a
  (core, bus) pair infeasible, so the default F1 grid gives the root
  reducer nothing to propagate and ``root_cols_removed`` /
  ``root_rows_removed`` stay 0 on every leg above; fixed timing forbids
  narrow buses to wide cores, the forced/zero-fix rows interact, and the
  reductions demonstrably fire. ``--check`` asserts they stay nonzero.

Besides wall time the script records the search-effort counters (B&B
nodes, LP solves, presolve fixings/prunes, warm LP solves/fallbacks) per
leg — node counts are machine-independent, so CI regression-checks them
instead of seconds: with ``--check`` the run compares its fast-path node
count against the checked-in ``benchmarks/bench_solver_baseline.json``
and exits 1 on a >20% regression, and additionally requires the
``warm_start`` leg to answer at least 90% of its node LPs from the warm
engine (the warm-vs-cold re-solve floor). ``--record-baseline`` refreshes
that file.

Run with::

    python benchmarks/bench_solver.py [--quick] [--check] [--jobs N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (  # noqa: E402
    CutPolicy,
    DesignProblem,
    MetricsRegistry,
    PresolvePolicy,
    RunTelemetry,
    SolutionCache,
    SolvePolicy,
    SolverOptions,
    TamArchitecture,
    build_s1,
    design,
    design_best_architecture,
    grid_place,
    use_cache,
    use_metrics,
    width_sweep,
)
from repro.obs import now  # noqa: E402
from repro.runtime.parallel import resolve_workers  # noqa: E402

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BASELINE_PATH = Path(__file__).resolve().parent / "bench_solver_baseline.json"

#: CI gate: fail when the fast path needs this much more search effort than
#: the recorded baseline (nodes are deterministic; seconds are not).
_NODE_REGRESSION_TOLERANCE = 0.20

#: CI gate: branch-and-cut must shrink the layout-constrained tree by at
#: least this factor vs the same sweep with cuts disabled.
_CUTS_MIN_NODE_REDUCTION = 1.5

#: CI gate: on the warm_start leg, at least this share of node LPs must be
#: answered by the revised dual simplex reoptimizing from a parent basis
#: (the rest fell back to cold re-solves on numerical trouble). The share
#: is deterministic for a fixed grid, unlike seconds.
_WARM_MIN_LP_SHARE = 0.9

#: Layout budget for the cuts legs. Tight enough that the pairwise
#: exclusion rows carry real conflict structure (every distance class of
#: the S1 grid floorplan above 2.67 is excluded), so clique separation has
#: something to cut.
_CUTS_MAX_PAIR_DISTANCE = 3.0


#: Architectures for the ``presolve_active`` leg: mixed widths under fixed
#: timing, so several (core, bus) pairs are width-infeasible and the root
#: reducer has zero-fix rows to propagate.
_PRESOLVE_ARCHS = ((16, 8, 4), (32, 16, 8), (32, 16, 4))

#: Power budget for the ``presolve_active`` leg — tight enough to force
#: pairwise exclusion/forcing structure into the root model.
_PRESOLVE_POWER_BUDGET = 100.0


def _grid(quick: bool) -> dict:
    return dict(
        bus_counts=(2,) if quick else (2, 3),
        total_widths=[8, 16, 24] if quick else [8, 16, 24, 32, 40, 48],
    )


def _cuts_grid(quick: bool) -> dict:
    return dict(
        bus_counts=(2,) if quick else (2, 3),
        total_widths=[16, 24] if quick else [16, 24, 32],
    )


def _run_sweep(soc, grid: dict, jobs: int, **solver_options) -> dict:
    start = now()
    telemetry = RunTelemetry(jobs=jobs)
    for num_buses in grid["bus_counts"]:
        points = width_sweep(
            soc, num_buses, grid["total_widths"], timing="serial",
            jobs=jobs, **solver_options,
        )
        for point in points:
            telemetry.merge(point.telemetry)
    elapsed = now() - start
    return {
        "seconds": round(elapsed, 3),
        "jobs": jobs,
        "nodes": telemetry.nodes,
        "lp_solves": telemetry.lp_solves,
        "presolve_fixings": telemetry.presolve_fixings,
        "presolve_pruned": telemetry.presolve_pruned,
        "root_cols_removed": telemetry.root_cols_removed,
        "root_rows_removed": telemetry.root_rows_removed,
        "warm_lp_solves": telemetry.warm_lp_solves,
        "warm_lp_fallbacks": telemetry.warm_lp_fallbacks,
        "cache_hits": telemetry.cache_hits,
        "solves": telemetry.solves,
    }


def _run_layout_sweep(soc, grid: dict, cuts: CutPolicy) -> dict:
    """The same width sweep under a tight layout budget, cuts on or off.

    Counters come from the metrics registry, not sweep telemetry: a tight
    layout budget makes many candidate architectures *infeasible*, and the
    node work spent proving that (where cuts help most) is only visible to
    the per-solve metrics — sweep telemetry records feasible designs only.
    """
    floorplan = grid_place(soc)
    policy = SolvePolicy(solver=SolverOptions(cuts=cuts))
    registry = MetricsRegistry()
    start = now()
    with use_metrics(registry):
        for num_buses in grid["bus_counts"]:
            for width in grid["total_widths"]:
                design_best_architecture(
                    soc, width, num_buses, timing="serial",
                    floorplan=floorplan,
                    max_pair_distance=_CUTS_MAX_PAIR_DISTANCE,
                    policy=policy,
                )
    elapsed = now() - start
    counts = registry.counts()
    return {
        "seconds": round(elapsed, 3),
        "jobs": 1,
        "nodes": counts.get("solve.nodes", 0),
        "lp_solves": counts.get("solve.lp_solves", 0),
        "cuts": counts.get("solve.cuts", 0),
    }


def _run_presolve_leg(soc) -> dict:
    """Fixed-timing instances where root presolve reductions actually fire."""
    telemetry = RunTelemetry()
    start = now()
    for widths in _PRESOLVE_ARCHS:
        problem = DesignProblem(
            soc,
            TamArchitecture(widths),
            timing="fixed",
            power_budget=_PRESOLVE_POWER_BUDGET,
        )
        result = design(problem, cache=False)
        telemetry.record(result.stats)
    elapsed = now() - start
    return {
        "seconds": round(elapsed, 3),
        "jobs": 1,
        "archs": [list(w) for w in _PRESOLVE_ARCHS],
        "power_budget": _PRESOLVE_POWER_BUDGET,
        "nodes": telemetry.nodes,
        "lp_solves": telemetry.lp_solves,
        "root_cols_removed": telemetry.root_cols_removed,
        "root_rows_removed": telemetry.root_rows_removed,
    }


def run_bench(quick: bool, jobs: int) -> dict:
    soc = build_s1()
    grid = _grid(quick)
    results: dict[str, dict] = {}

    baseline_policy = SolvePolicy(
        solver=SolverOptions(
            presolve=False,
            branching="most_fractional",
            cuts=CutPolicy.disabled(),
            root_presolve=PresolvePolicy.disabled(),
            warm_start=False,
        )
    )
    # The PR-9 ladder: the PR-8 solver (fast path + cuts, but no root
    # presolve and cold node LPs), then each new layer switched on.
    pr8_policy = SolvePolicy(
        solver=SolverOptions(
            root_presolve=PresolvePolicy.disabled(), warm_start=False
        )
    )
    presolve_only_policy = SolvePolicy(solver=SolverOptions(warm_start=False))
    with tempfile.TemporaryDirectory(prefix="repro-bench-solver-") as tmp:
        results["fast_cold"] = _run_sweep(soc, grid, jobs=1)
        results["baseline_cold"] = _run_sweep(soc, grid, jobs=1, policy=baseline_policy)
        results["presolve_off"] = _run_sweep(soc, grid, jobs=1, policy=pr8_policy)
        results["presolve_on"] = _run_sweep(
            soc, grid, jobs=1, policy=presolve_only_policy
        )
        results["warm_start"] = _run_sweep(soc, grid, jobs=1)  # = the defaults
        warm_dir = os.path.join(tmp, "warm")
        with use_cache(SolutionCache(directory=warm_dir)):
            _run_sweep(soc, grid, jobs=1)  # populate
            results["fast_warm"] = _run_sweep(soc, grid, jobs=1)
        assert results["fast_warm"]["nodes"] == 0, "warm re-run must be fully cached"
        results[f"fast_cold_jobs{jobs}"] = _run_sweep(soc, grid, jobs=jobs)

    cuts_grid = _cuts_grid(quick)
    results["cuts_off"] = _run_layout_sweep(soc, cuts_grid, CutPolicy.disabled())
    results["cuts_on"] = _run_layout_sweep(soc, cuts_grid, CutPolicy())
    assert results["cuts_off"]["cuts"] == 0
    results["presolve_active"] = _run_presolve_leg(soc)

    fast, base = results["fast_cold"], results["baseline_cold"]
    return {
        "benchmark": "F1 width sweep, solver fast path",
        "soc": soc.name,
        "grid": {k: list(v) for k, v in grid.items()},
        "cuts_grid": {
            **{k: list(v) for k, v in cuts_grid.items()},
            "max_pair_distance": _CUTS_MAX_PAIR_DISTANCE,
        },
        "quick": quick,
        "results": results,
        "speedup": {
            "cold_wall_time": round(base["seconds"] / max(fast["seconds"], 1e-9), 2),
            "node_reduction": round(base["nodes"] / max(fast["nodes"], 1), 2),
            "lp_solve_reduction": round(base["lp_solves"] / max(fast["lp_solves"], 1), 2),
            "parallel_vs_serial_cold": round(
                fast["seconds"]
                / max(results[f"fast_cold_jobs{jobs}"]["seconds"], 1e-9),
                2,
            ),
            "cuts_node_reduction": round(
                results["cuts_off"]["nodes"] / max(results["cuts_on"]["nodes"], 1), 2
            ),
            # The PR-9 headline: cold wall-time step from the PR-8 solver to
            # root presolve + warm-started node LPs on the same grid.
            "presolve_warm_step": round(
                results["presolve_off"]["seconds"]
                / max(results["warm_start"]["seconds"], 1e-9),
                2,
            ),
            "warm_lp_share": round(
                results["warm_start"]["warm_lp_solves"]
                / max(results["warm_start"]["lp_solves"], 1),
                3,
            ),
        },
    }


def check_baseline(payload: dict) -> int:
    """Compare this run's fast-path node count against the checked-in one."""
    if not _BASELINE_PATH.exists():
        print(f"no baseline at {_BASELINE_PATH}; run with --record-baseline first",
              file=sys.stderr)
        return 1
    baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
    key = "quick" if payload["quick"] else "full"
    recorded = baseline.get(key)
    if recorded is None:
        print(f"baseline has no {key!r} entry; skipping check", file=sys.stderr)
        return 0
    nodes = payload["results"]["fast_cold"]["nodes"]
    limit = recorded["nodes"] * (1.0 + _NODE_REGRESSION_TOLERANCE)
    print(f"node check ({key}): {nodes} vs baseline {recorded['nodes']} "
          f"(limit {limit:.0f})")
    if nodes > limit:
        print(
            f"REGRESSION: fast-path cold node count {nodes} exceeds baseline "
            f"{recorded['nodes']} by more than {_NODE_REGRESSION_TOLERANCE:.0%}",
            file=sys.stderr,
        )
        return 1
    reduction = payload["speedup"]["cuts_node_reduction"]
    print(f"cuts check ({key}): {reduction}x node reduction "
          f"(floor {_CUTS_MIN_NODE_REDUCTION}x)")
    if reduction < _CUTS_MIN_NODE_REDUCTION:
        print(
            f"REGRESSION: branch-and-cut node reduction {reduction}x is below "
            f"the {_CUTS_MIN_NODE_REDUCTION}x floor on the layout-constrained "
            "sweep",
            file=sys.stderr,
        )
        return 1
    share = payload["speedup"]["warm_lp_share"]
    print(f"warm-share check ({key}): {share:.1%} of node LPs answered warm "
          f"(floor {_WARM_MIN_LP_SHARE:.0%})")
    if share < _WARM_MIN_LP_SHARE:
        print(
            f"REGRESSION: only {share:.1%} of node LPs on the warm_start leg "
            f"were answered by the warm dual simplex (floor "
            f"{_WARM_MIN_LP_SHARE:.0%}); the rest re-solved cold",
            file=sys.stderr,
        )
        return 1
    active = payload["results"]["presolve_active"]
    removed = active["root_cols_removed"] + active["root_rows_removed"]
    print(f"presolve-activity check ({key}): {active['root_cols_removed']} cols + "
          f"{active['root_rows_removed']} rows removed (must be > 0)")
    if removed <= 0:
        print(
            "REGRESSION: the presolve_active leg (fixed timing, tight power "
            "budget) removed no root rows or columns — the root reducer is "
            "dead on the one grid built to exercise it",
            file=sys.stderr,
        )
        return 1
    cuts_recorded = recorded.get("cuts_on_nodes")
    if cuts_recorded is not None:
        cuts_nodes = payload["results"]["cuts_on"]["nodes"]
        cuts_limit = cuts_recorded * (1.0 + _NODE_REGRESSION_TOLERANCE)
        print(f"cuts-on node check ({key}): {cuts_nodes} vs baseline "
              f"{cuts_recorded} (limit {cuts_limit:.0f})")
        if cuts_nodes > cuts_limit:
            print(
                f"REGRESSION: cuts-on cold node count {cuts_nodes} exceeds "
                f"baseline {cuts_recorded} by more than "
                f"{_NODE_REGRESSION_TOLERANCE:.0%}",
                file=sys.stderr,
            )
            return 1
    return 0


def record_baseline(payload: dict) -> None:
    key = "quick" if payload["quick"] else "full"
    baseline = {}
    if _BASELINE_PATH.exists():
        baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
    baseline[key] = {
        "nodes": payload["results"]["fast_cold"]["nodes"],
        "lp_solves": payload["results"]["fast_cold"]["lp_solves"],
        "cuts_on_nodes": payload["results"]["cuts_on"]["nodes"],
        "warm_lp_share": payload["speedup"]["warm_lp_share"],
        "grid": payload["grid"],
    }
    _BASELINE_PATH.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"recorded {key} baseline to {_BASELINE_PATH}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker count for the parallel leg (default: 0 = one per core)")
    parser.add_argument("--out", default=str(_REPO_ROOT / "BENCH_solver.json"),
                        help="output JSON path (default: repo-root BENCH_solver.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if the cold node count regresses >20%% "
                             "vs benchmarks/bench_solver_baseline.json")
    parser.add_argument("--record-baseline", action="store_true",
                        help="refresh the checked-in node-count baseline from this run")
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick, jobs=resolve_workers(args.jobs))
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    r = payload["results"]
    for leg in sorted(r):
        row = r[leg]
        print(f"{leg:22s}: {row['seconds']:7.2f}s  nodes={row['nodes']:<7d} "
              f"LPs={row['lp_solves']:<7d} jobs={row['jobs']}")
    s = payload["speedup"]
    print(f"speedups: cold wall {s['cold_wall_time']}x, nodes {s['node_reduction']}x, "
          f"LPs {s['lp_solve_reduction']}x, parallel {s['parallel_vs_serial_cold']}x, "
          f"cuts nodes {s['cuts_node_reduction']}x, "
          f"presolve+warm step {s['presolve_warm_step']}x "
          f"(warm share {s['warm_lp_share']:.0%})")
    print(f"wrote {args.out}")

    if args.record_baseline:
        record_baseline(payload)
    if args.check:
        return check_baseline(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
