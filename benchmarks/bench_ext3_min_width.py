"""Benchmark E3 — minimum TAM width per testing-time budget."""

from repro.experiments import e3_min_width


def test_bench_ext3_min_width(once):
    result = once(e3_min_width.run)
    assert result.experiment_id == "E3"
    widths = result.tables[0].column("min W")
    assert widths == sorted(widths)  # loosest budget first -> widths grow
