"""Benchmark E2 — bus-count knee at fixed total TAM width."""

from repro.experiments import e2_bus_count


def test_bench_ext2_bus_count(once):
    result = once(e2_bus_count.run)
    assert result.experiment_id == "E2"
    assert any("knee at NB=" in c for c in result.checks)
