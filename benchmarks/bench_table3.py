"""Benchmark T3 — power-constrained design sweep."""

from repro.experiments import t3_power


def test_bench_table3_power(once):
    result = once(t3_power.run)
    assert result.experiment_id == "T3"
    for table in result.tables:
        times = [t for t in table.column("T* (cycles)") if t is not None]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
