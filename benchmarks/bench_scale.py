"""Scale trajectory: the stress corpus under bnb / heuristic / portfolio.

Runs every corpus instance in the grid under three solver legs and writes
cores vs wall time vs optimality gap to ``BENCH_scale.json``:

- ``bnb`` — exact branch & bound alone under the budget (the incumbent
  is returned on exhaustion);
- ``heuristic`` — the lpt→sa rung ladder alone (a heuristic-only
  portfolio, gap certified against the combinatorial lower bound);
- ``portfolio`` — the full race (:func:`repro.api.run_portfolio`): both
  heuristics, best incumbent cross-fed to B&B as its starting cutoff,
  one shared budget.

The grid mixes the ITC'02-class analogues (d695, p93791, t512505) with
generated ``scale<n>`` systems up to 256 cores (``mode="itc02"``, seeded
by core count). The two constrained instances are where the racing path
is the headline win:

- ``d695-pw`` — power-constrained d695: the cross-fed incumbent prunes
  the exact tree roughly in half, nodes-to-proof, deterministically;
- ``p93791-pw`` — power-constrained p93791: exact search alone exhausts
  its budget on a poor incumbent, while the portfolio's cross-fed cutoff
  lets B&B *prove* the heuristic-quality answer well inside the budget —
  better objective at a fraction of the wall.

``--quick`` swaps the wall deadline for per-instance node budgets, making
every leg deterministic for CI; ``--check`` then gates on machine-
independent facts: the portfolio is never worse than the best single
entrant beyond tolerance, the cross-fed tree on ``d695-pw`` is strictly
smaller than the cold tree, and the portfolio strictly beats truncated
exact search on ``p93791-pw``. In quick mode ``--check`` additionally
validates the *checked-in* full trajectory (read before this run
overwrites it): it must reach >= 200 cores on all three legs and contain
at least one instance where the portfolio beat bnb-only wall time at an
equal-or-better makespan.

Run with::

    python benchmarks/bench_scale.py [--quick] [--check] [--jobs N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (  # noqa: E402
    DesignProblem,
    PortfolioPolicy,
    SolvePolicy,
    SolverOptions,
    TamArchitecture,
    design,
    resolve_soc,
)
from repro.obs import now  # noqa: E402

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_OUT = _REPO_ROOT / "BENCH_scale.json"

#: Shared wall budget per solve in the full run (seconds).
_FULL_DEADLINE = 15.0

#: Tolerance for the never-worse gate: the portfolio may trail the best
#: single entrant by at most this relative margin.
_PORTFOLIO_TOLERANCE = 0.05

#: Wall-win factor the recorded trajectory must contain on >= 1 instance:
#: portfolio wall < factor * bnb wall at equal-or-better makespan.
_WALL_WIN_FACTOR = 0.9

#: The instance grid: (name, soc spec, widths, power budget knob,
#: quick-mode node budget, in_quick). ``power="top2"`` resolves to the sum
#: of the two largest core powers — the tightest budget that cannot be
#: infeasible on pairwise-concurrency grounds, and tight enough to bind.
_INSTANCES = (
    ("d695-pw", "d695", (32, 16, 16, 8), "top2", 3000, True),
    ("p93791-pw", "p93791", (32, 16, 16, 8), "top2", 3000, True),
    ("t512505", "t512505", (32, 16, 16, 8), None, 1000, False),
    ("scale64", "scale64", (32, 16, 16, 8), None, 500, True),
    ("scale128", "scale128", (32, 16, 16, 8), None, 300, False),
    ("scale200", "scale200", (32, 16, 16, 8), None, 200, False),
    ("scale256", "scale256", (32, 16, 16, 8), None, 150, False),
)


def _top2_power(soc) -> float:
    powers = sorted(core.test_power for core in soc.cores)
    return round(powers[-1] + powers[-2], 1)


def _budget_policy(quick: bool, node_budget: int, solver=None) -> SolvePolicy:
    if quick:
        return SolvePolicy(node_budget=node_budget, solver=solver)
    return SolvePolicy(deadline=_FULL_DEADLINE, solver=solver)


def _gap_of(result) -> float | None:
    if result.portfolio is not None:
        return result.portfolio.gap
    if result.status.value == "optimal":
        return 0.0
    bound = result.stats.best_bound
    if bound is None or not result.makespan:
        return None
    return max(0.0, (result.makespan - bound) / result.makespan)


def _leg_payload(result, wall: float) -> dict:
    payload = {
        "status": result.status.value,
        "makespan": result.makespan,
        "wall": round(wall, 3),
        "nodes": result.stats.nodes,
        "gap": _gap_of(result),
        "best_bound": result.stats.best_bound,
    }
    if result.portfolio is not None:
        report = result.portfolio
        bnb = report.entrant("bnb")
        payload["winner"] = report.winner
        payload["cross_fed"] = report.cross_fed
        payload["bnb_nodes"] = bnb.nodes if bnb is not None else 0
        payload["entrants"] = [record.as_dict() for record in report.entrants]
    return payload


def _run_instance(name, spec, widths, power, node_budget, quick, jobs) -> dict:
    soc = resolve_soc(spec)
    budget = _top2_power(soc) if power == "top2" else power
    problem = DesignProblem(
        soc, TamArchitecture(widths), timing="serial", power_budget=budget
    )
    legs: dict[str, dict] = {}

    t0 = now()
    bnb = design(problem, policy=_budget_policy(quick, node_budget), cache=False)
    legs["bnb"] = _leg_payload(bnb, now() - t0)

    heur_policy = _budget_policy(
        quick,
        node_budget,
        solver=SolverOptions(
            portfolio=PortfolioPolicy(entrants=("lpt", "sa"), jobs=jobs)
        ),
    )
    t0 = now()
    heur = design(problem, policy=heur_policy, cache=False)
    legs["heuristic"] = _leg_payload(heur, now() - t0)

    race_policy = _budget_policy(
        quick, node_budget, solver=SolverOptions(portfolio=PortfolioPolicy(jobs=jobs))
    )
    t0 = now()
    race = design(problem, policy=race_policy, cache=False)
    legs["portfolio"] = _leg_payload(race, now() - t0)

    print(
        f"{name:12s} ({len(soc.cores):3d} cores): "
        f"bnb T={legs['bnb']['makespan']:.0f}/{legs['bnb']['wall']:.2f}s "
        f"heur T={legs['heuristic']['makespan']:.0f}/{legs['heuristic']['wall']:.2f}s "
        f"race T={legs['portfolio']['makespan']:.0f}/{legs['portfolio']['wall']:.2f}s "
        f"-> {legs['portfolio']['winner']}"
    )
    return {
        "name": name,
        "soc": spec,
        "num_cores": len(soc.cores),
        "widths": list(widths),
        "power_budget": budget,
        "node_budget": node_budget if quick else None,
        "legs": legs,
    }


def run_bench(quick: bool, jobs: int) -> dict:
    instances = [
        _run_instance(name, spec, widths, power, node_budget, quick, jobs)
        for name, spec, widths, power, node_budget, in_quick in _INSTANCES
        if in_quick or not quick
    ]
    return {
        "benchmark": "scale trajectory: stress corpus x {bnb, heuristic, portfolio}",
        "quick": quick,
        "budget": (
            {"node_budget": "per-instance"} if quick
            else {"deadline": _FULL_DEADLINE}
        ),
        "jobs": jobs,
        "instances": instances,
    }


def _check_fresh(payload: dict) -> int:
    """Machine-independent gates on the run that just happened."""
    rc = 0
    by_name = {inst["name"]: inst for inst in payload["instances"]}
    for inst in payload["instances"]:
        legs = inst["legs"]
        best_single = min(legs["bnb"]["makespan"], legs["heuristic"]["makespan"])
        limit = best_single * (1.0 + _PORTFOLIO_TOLERANCE)
        ok = legs["portfolio"]["makespan"] <= limit
        print(
            f"never-worse check [{inst['name']}]: portfolio "
            f"{legs['portfolio']['makespan']:.0f} vs best single "
            f"{best_single:.0f} (limit {limit:.0f}) -> {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            print(
                f"REGRESSION: portfolio makespan on {inst['name']} is worse than "
                f"the best single entrant by more than "
                f"{_PORTFOLIO_TOLERANCE:.0%}",
                file=sys.stderr,
            )
            rc = 1
    d695 = by_name.get("d695-pw")
    if d695 is not None:
        cold = d695["legs"]["bnb"]["nodes"]
        fed = d695["legs"]["portfolio"]["bnb_nodes"]
        print(f"cross-feed pruning check [d695-pw]: {cold} cold nodes vs "
              f"{fed} cross-fed (must be strictly fewer)")
        if not (0 <= fed < cold):
            print(
                "REGRESSION: the cross-fed incumbent no longer prunes the "
                "d695-pw exact tree (cold vs cross-fed node counts above)",
                file=sys.stderr,
            )
            rc = 1
    p93 = by_name.get("p93791-pw")
    if p93 is not None and payload["quick"]:
        bnb_t = p93["legs"]["bnb"]["makespan"]
        race_t = p93["legs"]["portfolio"]["makespan"]
        print(f"truncated-exact check [p93791-pw]: portfolio {race_t:.0f} vs "
              f"node-limited bnb {bnb_t:.0f} (must be strictly better)")
        if not race_t < bnb_t:
            print(
                "REGRESSION: on p93791-pw the portfolio no longer beats "
                "node-limited exact search — the cross-feed/budget sharing "
                "path has lost its headline win",
                file=sys.stderr,
            )
            rc = 1
    return rc


def _check_trajectory(payload: dict, source: str) -> int:
    """The acceptance gates on a recorded *full* trajectory."""
    rc = 0
    insts = payload.get("instances", [])
    big = [i for i in insts if i["num_cores"] >= 200
           and all(leg in i["legs"] for leg in ("bnb", "heuristic", "portfolio"))]
    print(f"trajectory check ({source}): "
          f"{max((i['num_cores'] for i in insts), default=0)} max cores, "
          f"{len(big)} instance(s) >= 200 cores with all three legs")
    if not big:
        print(
            f"REGRESSION: {source} has no >=200-core instance with bnb/"
            "heuristic/portfolio legs",
            file=sys.stderr,
        )
        rc = 1
    wins = [
        i["name"] for i in insts
        if i["legs"]["portfolio"]["wall"]
        < _WALL_WIN_FACTOR * i["legs"]["bnb"]["wall"]
        and i["legs"]["portfolio"]["makespan"] <= i["legs"]["bnb"]["makespan"] + 1e-9
    ]
    print(f"wall-win check ({source}): portfolio beats bnb-only wall at "
          f"equal-or-better makespan on {wins or 'NO instances'}")
    if not wins:
        print(
            f"REGRESSION: {source} records no instance where the portfolio "
            f"beat bnb-only wall time (factor {_WALL_WIN_FACTOR}) at an "
            "equal-or-better makespan",
            file=sys.stderr,
        )
        rc = 1
    return rc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="node-budget legs on the small instances "
                             "(deterministic; for CI)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="fan the heuristic race across N workers "
                             "(default 1: serial, deterministic wall)")
    parser.add_argument("--out", default=str(_DEFAULT_OUT),
                        help="output JSON path (default: repo-root BENCH_scale.json)")
    parser.add_argument("--check", action="store_true",
                        help="gate on the portfolio invariants (and, in quick "
                             "mode, validate the checked-in full trajectory)")
    args = parser.parse_args(argv)

    rc = 0
    checked_in = None
    if args.check and args.quick and _DEFAULT_OUT.exists():
        # Read the recorded full trajectory before this run overwrites it.
        checked_in = json.loads(_DEFAULT_OUT.read_text(encoding="utf-8"))

    payload = run_bench(quick=args.quick, jobs=args.jobs)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check:
        rc |= _check_fresh(payload)
        if args.quick:
            if checked_in is None:
                print(
                    "REGRESSION: no checked-in BENCH_scale.json full "
                    "trajectory to validate",
                    file=sys.stderr,
                )
                rc = 1
            elif checked_in.get("quick"):
                print(
                    "REGRESSION: the checked-in BENCH_scale.json is a quick "
                    "run, not the recorded full trajectory",
                    file=sys.stderr,
                )
                rc = 1
            else:
                rc |= _check_trajectory(checked_in, "checked-in BENCH_scale.json")
        else:
            rc |= _check_trajectory(payload, "this run")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
