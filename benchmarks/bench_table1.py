"""Benchmark T1 — SOC composition table (wrapper curve computation cost)."""

from repro.experiments import t1_composition


def test_bench_table1_composition(benchmark):
    result = benchmark(t1_composition.run)
    assert result.experiment_id == "T1"
    assert len(result.tables) == 2
