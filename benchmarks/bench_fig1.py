"""Benchmark F1 — testing time vs total TAM width staircase."""

from repro.experiments import f1_width


def test_bench_fig1_width_staircase(once):
    result = once(f1_width.run)
    assert result.experiment_id == "F1"
    for bus_count in (2, 3):
        series = result.tables[0].column(f"NB={bus_count} T*")
        values = [v for v in series if v is not None]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
