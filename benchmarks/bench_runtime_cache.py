"""Runtime benchmark: solve cache and parallel fan-out speedups.

Measures the F1 width sweep (the heaviest exact harness the suite runs
routinely) under four runtime configurations and writes the numbers to
``BENCH_runtime.json``:

- ``serial_cold`` — jobs=1, empty cache: the seed's baseline behavior;
- ``serial_warm`` — jobs=1 re-run on the populated disk cache, which must
  answer every solve from the store (zero fresh B&B work — asserted);
- ``parallel_cold`` — jobs=N on a fresh cache directory;
- ``parallel_warm`` — jobs=N on the shared warm store.

Run with::

    python benchmarks/bench_runtime_cache.py [--quick] [--jobs N] [--out PATH]

The script is deliberately not a pytest-benchmark module: CI runs it as a
smoke step and archives the JSON artifact, so it needs a plain entry point
and machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentConfig, build_s1, run_experiment  # noqa: E402
from repro.obs import now  # noqa: E402
from repro.runtime.parallel import resolve_workers  # noqa: E402


def _run_f1(grid: dict, jobs: int, cache_dir: str):
    config = ExperimentConfig(jobs=jobs, cache_dir=cache_dir)
    start = now()
    result = run_experiment("F1", config=config, **grid)
    elapsed = now() - start
    return elapsed, config, result


def _best_cold(grid: dict, jobs: int, base_dir: str, repeats: int):
    """Best-of-N cold run (fresh cache dir per repetition, min wall time)."""
    best = None
    for rep in range(repeats):
        elapsed, config, result = _run_f1(
            grid, jobs=jobs, cache_dir=os.path.join(base_dir, f"rep{rep}")
        )
        if best is None or elapsed < best[0]:
            best = (elapsed, config, result)
    return best


def run_bench(quick: bool, jobs: int, repeats: int = 3) -> dict:
    soc = build_s1()
    grid = dict(
        soc=soc,
        bus_counts=(2,) if quick else (2, 3),
        total_widths=[8, 16, 24] if quick else [8, 16, 24, 32, 40, 48],
    )

    results: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_store = os.path.join(tmp, "serial")
        parallel_store = os.path.join(tmp, "parallel")

        cold_s, cold_cfg, _ = _best_cold(grid, 1, serial_store, repeats)
        warm_s, warm_cfg, _ = _run_f1(grid, jobs=1, cache_dir=os.path.join(serial_store, "rep0"))
        assert warm_cfg.cache.misses == 0, "warm serial re-run must be fully cached"

        cold_p, _, _ = _best_cold(grid, jobs, parallel_store, repeats)
        warm_p, warm_p_cfg, _ = _run_f1(
            grid, jobs=jobs, cache_dir=os.path.join(parallel_store, "rep0")
        )

        results["serial_cold"] = {"seconds": cold_s, "cache_misses": cold_cfg.cache.misses}
        results["serial_warm"] = {"seconds": warm_s, "cache_misses": warm_cfg.cache.misses}
        results["parallel_cold"] = {"seconds": cold_p, "jobs": jobs}
        results["parallel_warm"] = {
            "seconds": warm_p,
            "jobs": jobs,
            "cache_misses": warm_p_cfg.cache.misses,
        }

    return {
        "benchmark": "F1 width sweep runtime",
        "soc": soc.name,
        "grid": {k: list(v) if not isinstance(v, (int, str)) else v
                 for k, v in grid.items() if k != "soc"},
        "quick": quick,
        "results": results,
        "speedup": {
            "warm_cache_vs_cold": round(results["serial_cold"]["seconds"]
                                        / max(results["serial_warm"]["seconds"], 1e-9), 2),
            "parallel_vs_serial_cold": round(results["serial_cold"]["seconds"]
                                             / max(results["parallel_cold"]["seconds"], 1e-9), 2),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker count for the parallel legs (default: 0 = one "
                             "per core; forcing more workers than cores oversubscribes "
                             "CPU-bound solves and measures scheduler thrash, not the "
                             "runtime)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="repetitions per cold leg, best (min) wall time kept "
                             "(default: 3; --quick uses 1)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_runtime.json"),
                        help="output JSON path (default: repo-root BENCH_runtime.json)")
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick, jobs=resolve_workers(args.jobs),
                        repeats=1 if args.quick else args.repeats)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    r = payload["results"]
    print(f"serial cold   : {r['serial_cold']['seconds']:7.2f}s "
          f"({r['serial_cold']['cache_misses']} solves)")
    print(f"serial warm   : {r['serial_warm']['seconds']:7.2f}s "
          f"({r['serial_warm']['cache_misses']} fresh solves)")
    print(f"parallel cold : {r['parallel_cold']['seconds']:7.2f}s (jobs={r['parallel_cold']['jobs']})")
    print(f"parallel warm : {r['parallel_warm']['seconds']:7.2f}s")
    print(f"speedups      : warm-cache {payload['speedup']['warm_cache_vs_cold']}x, "
          f"parallel {payload['speedup']['parallel_vs_serial_cold']}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
