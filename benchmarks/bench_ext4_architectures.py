"""Benchmark E4 — access architecture style comparison."""

from repro.experiments import e4_architectures


def test_bench_ext4_architectures(once):
    result = once(e4_architectures.run)
    assert result.experiment_id == "E4"
    assert any("bypass overhead" in c for c in result.checks)
