"""Ablation: TAM wirelength estimators.

Compares the three routing estimators on the optimal designs of both SOCs,
asserting the geometric ordering (bounding box <= MST <= daisy chain per
bus) that makes the cheaper estimators safe lower bounds for the chain
topology test buses actually use.
"""

import pytest

from repro.api import (
    DesignProblem,
    TamArchitecture,
    build_s1,
    build_s2,
    bus_wirelength,
    design,
    grid_place,
)


@pytest.mark.parametrize(
    "soc_builder,widths", [(build_s1, [16, 16, 16]), (build_s2, [32, 16, 16])],
    ids=["S1", "S2"],
)
def test_bench_ablation_wirelength(benchmark, soc_builder, widths):
    soc = soc_builder()
    floorplan = grid_place(soc)
    problem = DesignProblem(
        soc=soc, arch=TamArchitecture(widths), timing="serial", floorplan=floorplan
    )
    assignment = design(problem).assignment

    def run():
        totals = {"bbox": 0.0, "mst": 0.0, "chain": 0.0}
        for bus in range(problem.arch.num_buses):
            members = assignment.cores_on_bus(bus)
            if not members:
                continue
            for method in totals:
                totals[method] += bus_wirelength(floorplan, members, method=method)
        return totals

    totals = benchmark(run)
    assert totals["bbox"] <= totals["mst"] + 1e-9
    assert totals["mst"] <= totals["chain"] + 1e-9
