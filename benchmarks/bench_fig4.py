"""Benchmark F4 — ILP scalability sweep (solver effort vs core count)."""

from repro.experiments import f4_scaling


def test_bench_fig4_scaling(once):
    result = once(f4_scaling.run)
    assert result.experiment_id == "F4"
    assert any("bnb optimum equals HiGHS" in c for c in result.checks)
    nodes = result.tables[0].column("bnb nodes")
    assert max(nodes) > min(nodes)
