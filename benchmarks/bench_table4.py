"""Benchmark T4 — place-and-route-constrained design sweep."""

from repro.experiments import t4_layout


def test_bench_table4_layout(once):
    result = once(t4_layout.run)
    assert result.experiment_id == "T4"
    for table in result.tables:
        times = [t for t in table.column("T* (cycles)") if t is not None]
        # deltas descend down the table, so times weakly increase
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
