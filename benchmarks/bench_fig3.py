"""Benchmark F3 — wirelength / testing-time Pareto frontier."""

from repro.experiments import f3_tradeoff


def test_bench_fig3_tradeoff(once):
    result = once(f3_tradeoff.run)
    assert result.experiment_id == "F3"
    assert any("frontier monotone" in c for c in result.checks)
