"""Benchmark E5 — test resource accounting."""

from repro.experiments import e5_resources


def test_bench_ext5_resources(once):
    result = once(e5_resources.run)
    assert result.experiment_id == "E5"
    utilizations = result.tables[0].column("utilization (%)")
    assert all(0 < u <= 100.0 + 1e-9 for u in utilizations)
