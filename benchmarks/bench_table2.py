"""Benchmark T2 — optimal unconstrained TAM design (the paper's main table).

The full default sweep (S1 + S2, five budgets each, every width partition
solved exactly, plus baselines and cross-checks) is the headline cost; it
runs once under the clock.
"""

from repro.experiments import t2_unconstrained


def test_bench_table2_unconstrained(once):
    result = once(t2_unconstrained.run)
    assert result.experiment_id == "T2"
    for table in result.tables:
        ilp = table.column("ILP T*")
        for heuristic in ("LPT", "random", "SA"):
            values = table.column(heuristic)
            assert all(
                h >= i - 1e-9 for i, h in zip(ilp, values) if h is not None
            )
