"""Ablation: the three core-to-bus timing models.

Quantifies what each modeling choice costs/buys on the same instances:
fixed interfaces can only be slower than serialization, which can only be
slower than per-bus wrapper redesign — the bench asserts the dominance
chain while timing the end-to-end exact sweeps.
"""

import math

import pytest

from repro.api import build_s1, build_s2, design_best_architecture


@pytest.mark.parametrize("soc_builder", [build_s1, build_s2], ids=["S1", "S2"])
def test_bench_ablation_timing_models(benchmark, soc_builder):
    soc = soc_builder()

    def run():
        results = {}
        for timing in ("fixed", "serial", "flexible"):
            sweep = design_best_architecture(
                soc, 48, 3, timing=timing, clamp_useless_width=True
            )
            results[timing] = sweep.best_makespan
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Dominance chain: each relaxation of the width model can only help.
    if math.isfinite(results["fixed"]):
        assert results["serial"] <= results["fixed"] + 1e-9
    assert results["flexible"] <= results["serial"] + 1e-9
