"""Benchmark E1 — hard peak-power cap vs the paper's pairwise model."""

from repro.experiments import e1_power_cap


def test_bench_ext1_power_cap(once):
    result = once(e1_power_cap.run)
    assert result.experiment_id == "E1"
    assert any("within cap" in c for c in result.checks)
