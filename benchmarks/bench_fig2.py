"""Benchmark F2 — testing time vs power budget staircase."""

from repro.experiments import f2_power_curve


def test_bench_fig2_power_staircase(benchmark):
    result = benchmark(f2_power_curve.run)
    assert result.experiment_id == "F2"
    assert any("staircase non-increasing" in c for c in result.checks)
