"""Ablation: branch-and-bound design choices.

DESIGN.md calls out three solver knobs; this bench quantifies each on a
fixed instance set (S1/S2 TAM ILPs + a fractional knapsack) while asserting
that every configuration returns the same optimum:

- the root rounding *dive* (early incumbent for pruning);
- the *branching rule* (most-fractional vs first-index);
- *branch-and-cut* (lifted cover + clique cuts under the default
  :class:`~repro.api.CutPolicy` — cover-only strengthening on knapsacks,
  a no-op on pure TAM rows).
"""

import pytest

from repro.api import (
    CutPolicy,
    DesignProblem,
    Model,
    TamArchitecture,
    build_assignment_ilp,
    build_s1,
    build_s2,
    quicksum,
)


def _instances():
    models = []
    for soc, widths in ((build_s1(), [16, 16, 16]), (build_s2(), [32, 16, 16])):
        problem = DesignProblem(soc=soc, arch=TamArchitecture(widths), timing="serial")
        models.append((f"tam-{soc.name}", build_assignment_ilp(problem).model))
    knapsack = Model("knapsack")
    xs = [knapsack.add_binary(f"x{i}") for i in range(12)]
    weights = [5, 7, 11, 4, 9, 6, 13, 8, 5, 10, 7, 6]
    profits = [9, 12, 20, 6, 14, 11, 22, 13, 8, 17, 12, 10]
    knapsack.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 45)
    knapsack.maximize(quicksum(p * x for p, x in zip(profits, xs)))
    models.append(("knapsack12", knapsack))
    return models


CONFIGS = {
    "baseline": {},
    "no_dive": {"dive": False},
    "first_branching": {"branching": "first"},
    "cuts": {"cut_policy": CutPolicy()},
}


@pytest.fixture(scope="module")
def reference_objectives():
    return {name: model.solve(backend="scipy").objective for name, model in _instances()}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_bench_ablation_solver(benchmark, config_name, reference_objectives):
    options = CONFIGS[config_name]
    instances = _instances()

    def run():
        nodes = 0
        for name, model in instances:
            solution = model.solve(**options)
            assert solution.objective == pytest.approx(reference_objectives[name])
            nodes += solution.stats.nodes
        return nodes

    total_nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total_nodes >= len(instances)
