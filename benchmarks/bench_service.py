"""Service benchmark: the HTTP job queue under concurrent client load.

Boots an in-process :class:`~repro.service.DesignServer` on an ephemeral
port and drives it with the load generator at two concurrency levels,
cold cache then warm cache, writing the numbers to ``BENCH_service.json``:

- ``c<N>_cold`` — N client threads, fresh tenant namespace: every distinct
  fingerprint is a real B&B solve; identical in-flight submissions dedupe
  onto one run (the measured join rate);
- ``c<N>_warm`` — the same mix re-driven on the same tenant: jobs are
  finished, so nothing dedupes and every solve answers from the tenant's
  solution cache.

Each leg reports client-observed submit→result latency (p50/p99/min/max),
throughput, and the server's dedupe-join delta. Latency includes poll
granularity — this measures the service as a client sees it, not the bare
solver.

Run with::

    python benchmarks/bench_service.py [--quick] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import DesignServer, run_load  # noqa: E402

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Request mix: two identical S1 designs (dedupe + cache), two distinct
#: ones (throughput). Widths are small so the benchmark stays seconds-fast.
_MIX = [
    {"kind": "design", "soc": "S1", "widths": [16, 16, 16]},
    {"kind": "design", "soc": "S1", "widths": [16, 16]},
    {"kind": "design", "soc": "S1", "widths": [32, 16]},
    {"kind": "design", "soc": "S1", "widths": [16, 16, 16]},
]


class _ServerThread:
    """A DesignServer on its own event loop, stoppable from the outside."""

    def __init__(self, workers: int, cache_dir: str, state_dir: str):
        self._started = threading.Event()
        self._box: dict = {}
        self._thread = threading.Thread(
            target=self._run, args=(workers, cache_dir, state_dir), daemon=True
        )

    def _run(self, workers: int, cache_dir: str, state_dir: str) -> None:
        async def main() -> None:
            server = DesignServer(
                "127.0.0.1", 0, workers=workers, cache_dir=cache_dir, state_dir=state_dir
            )
            self._box["port"] = await server.start()
            self._box["loop"] = asyncio.get_running_loop()
            self._box["stop"] = asyncio.Event()
            self._started.set()
            await self._box["stop"].wait()
            await server.close()

        asyncio.run(main())

    def __enter__(self) -> str:
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start")
        return f"127.0.0.1:{self._box['port']}"

    def __exit__(self, *exc) -> None:
        self._box["loop"].call_soon_threadsafe(self._box["stop"].set)
        self._thread.join(timeout=30)


def run_benchmark(
    concurrency_levels: tuple[int, ...],
    requests_per_client: int,
    workers: int,
) -> dict:
    legs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        with _ServerThread(workers, f"{tmp}/cache", f"{tmp}/state") as base_url:
            for clients in concurrency_levels:
                tenant = f"bench-c{clients}"  # fresh namespace => cold cache
                for phase in ("cold", "warm"):
                    leg = f"c{clients}_{phase}"
                    print(f"[bench_service] {leg}: {clients} clients "
                          f"x {requests_per_client} requests ...", flush=True)
                    legs[leg] = run_load(
                        base_url,
                        payloads=_MIX,
                        clients=clients,
                        requests_per_client=requests_per_client,
                        tenant=tenant,
                    )
                    if legs[leg]["errors"]:
                        raise RuntimeError(f"{leg}: {legs[leg]['errors']}")
    cold_legs = [legs[k] for k in legs if k.endswith("_cold")]
    joins = sum(leg["dedupe"]["joins"] for leg in cold_legs)
    submitted = sum(leg["dedupe"]["submitted"] for leg in cold_legs)
    return {
        "workers": workers,
        "mix_size": len(_MIX),
        "requests_per_client": requests_per_client,
        "concurrency_levels": list(concurrency_levels),
        "legs": legs,
        "dedupe_hit_rate_cold": (joins / submitted) if submitted else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller load (CI smoke)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default=str(_REPO_ROOT / "BENCH_service.json"))
    args = parser.parse_args(argv)

    levels = (2, 4) if args.quick else (2, 6)
    per_client = 2 if args.quick else 4
    payload = run_benchmark(levels, per_client, args.workers)

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_service] wrote {out}")
    for leg, stats in sorted(payload["legs"].items()):
        latency = stats["latency"]
        print(
            f"  {leg:10s} p50={latency['p50']:.3f}s p99={latency['p99']:.3f}s "
            f"throughput={stats['throughput']:.1f} req/s "
            f"joins={stats['dedupe']['joins']}"
        )
    print(f"  dedupe hit rate (cold legs): {payload['dedupe_hit_rate_cold']:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
