"""Benchmark T5 — combined power + layout budget grid."""

from repro.experiments import t5_combined


def test_bench_table5_combined(once):
    result = once(t5_combined.run)
    assert result.experiment_id == "T5"
    assert any("combined >=" in c for c in result.checks)
