"""The MILP substrate as a standalone library.

Run with::

    python examples/solver_playground.py

The ILP layer underneath the TAM designer is a general (small-scale) MILP
toolkit: an expression API, our own two-phase simplex, exact branch & bound,
and a scipy/HiGHS cross-check backend. This example uses it directly on two
classic problems, then shows what the TAM formulation itself looks like as
a model object.
"""

from repro.api import (
    DesignProblem,
    Model,
    TamArchitecture,
    build_assignment_ilp,
    build_s1,
    quicksum,
    trace_solve,
)

def knapsack() -> None:
    weights = [12, 7, 11, 8, 9]
    profits = [24, 13, 23, 15, 16]
    capacity = 26

    model = Model("knapsack")
    take = [model.add_binary(f"take_{i}") for i in range(len(weights))]
    model.add_constr(quicksum(w * t for w, t in zip(weights, take)) <= capacity)
    model.maximize(quicksum(p * t for p, t in zip(profits, take)))

    ours = model.solve()                      # our branch & bound
    reference = model.solve(backend="scipy")  # HiGHS cross-check
    chosen = [i for i, t in enumerate(take) if ours[t] > 0.5]
    print(f"knapsack: profit {ours.objective:.0f} with items {chosen} "
          f"({ours.stats.nodes} B&B nodes; HiGHS agrees: "
          f"{abs(ours.objective - reference.objective) < 1e-6})")


def vertex_cover() -> None:
    edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4)]
    model = Model("vertex-cover")
    picked = [model.add_binary(f"v{i}") for i in range(5)]
    for u, v in edges:
        model.add_constr(picked[u] + picked[v] >= 1)
    model.minimize(quicksum(picked))
    solution = model.solve()
    cover = [i for i, v in enumerate(picked) if solution[v] > 0.5]
    print(f"vertex cover: size {solution.objective:.0f}, vertices {cover}")


def tam_formulation() -> None:
    soc = build_s1()
    problem = DesignProblem(
        soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial",
        power_budget=120.0,
    )
    formulation = build_assignment_ilp(problem)
    print(f"\nTAM ILP for {problem.constraint_summary()}:")
    print(f"  {formulation.model.summary()}")

    relaxation = formulation.model.solve_relaxation()
    exact = formulation.model.solve()
    print(f"  LP relaxation bound: {relaxation.objective:.1f} cycles")
    print(f"  integer optimum:     {exact.objective:.0f} cycles "
          f"({exact.stats.nodes} nodes, {exact.stats.lp_solves} LPs)")
    assignment = formulation.decode(exact)
    print(f"  decoded assignment:  {assignment.groups()}")

    # The relaxation can also be solved with our own tableau simplex:
    tableau = formulation.model.solve_relaxation(method="simplex")
    print(f"  simplex (from scratch) agrees with HiGHS: "
          f"{abs(tableau.objective - relaxation.objective) < 1e-6}")


def traced_solve() -> None:
    """Where does the solve time go? Trace one B&B run and print the flame."""
    soc = build_s1()
    problem = DesignProblem(
        soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial"
    )
    formulation = build_assignment_ilp(problem)
    with trace_solve() as trace:
        formulation.model.solve(cache=False)
    print()
    print(trace.flame())


if __name__ == "__main__":
    knapsack()
    vertex_cover()
    tam_formulation()
    traced_solve()
