"""Compare test access architecture styles on the d695 benchmark.

Run with::

    python examples/architecture_comparison.py

Pits the paper's test-bus architecture against the other classic access
styles (multiplexed, daisy-chain, distribution) at equal pin budgets on the
d695 benchmark SOC, then breaks down the winning design's resource usage —
testing time, ATE vector memory, TAM utilization, and wrapper hardware cost.
"""

from repro.api import (
    DesignProblem,
    SolvePolicy,
    TamArchitecture,
    ate_vector_memory,
    build_d695,
    compare_architectures,
    design,
    distribution_allocation,
    soc_test_data_volume,
    soc_wrapper_overhead,
    tam_utilization,
)

def main() -> None:
    soc = build_d695()
    print(soc.describe())
    print(f"\ntotal test data volume: {soc_test_data_volume(soc):,} bits\n")

    print(f"{'W':>4} | {'multiplexed':>11} | {'daisychain':>10} | "
          f"{'distribution':>12} | {'test bus':>8} | winner")
    for width in (16, 24, 32, 48, 64):
        comparison = compare_architectures(soc, width, num_buses=3)
        dist = f"{comparison.distribution}" if comparison.distribution is not None else "-"
        print(f"{width:>4} | {comparison.multiplexed:>11} | {comparison.daisychain:>10} | "
              f"{dist:>12} | {comparison.test_bus:>8.0f} | {comparison.best_style()}")

    # Drill into the 32-wire test-bus design. The d695 instance is bigger
    # than the academic SOCs, so give the solve an anytime budget: exact if
    # it finishes, best incumbent (with provenance) if not.
    print("\n--- 32-wire test-bus design in detail " + "-" * 30)
    problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 8, 8]), timing="flexible")
    result = design(problem, policy=SolvePolicy(deadline=120.0))
    print(result.describe())
    print(f"provenance: {result.provenance}")

    utilization = tam_utilization(soc, result.assignment, problem.timing)
    print(f"\n{utilization}")
    print(f"ATE vector memory: {ate_vector_memory(result.assignment, problem.timing):,.0f} bits")

    allocation = distribution_allocation(soc, 32)
    print("\ndistribution allocation at the same budget:")
    for core, width in zip(soc.cores, allocation.widths):
        print(f"  {core.name:>8}: {width:>2} private wires")
    print(f"  -> makespan {allocation.makespan} cycles "
          f"(vs {result.makespan:.0f} for the 3-bus design)")

    overhead = soc_wrapper_overhead(soc)
    print(f"\nwrapper hardware: {overhead.total_ge:,} gate equivalents "
          f"({overhead.area_fraction:.1%} of the SOC's logic)")


if __name__ == "__main__":
    main()
