"""Power-constrained TAM design: the testing-time / power-budget staircase.

Run with::

    python examples/power_constrained_design.py

Scenario from the paper's motivation: scan testing switches far more logic
than mission mode, so testing everything in parallel can exceed the package's
power limit. The design flow forces power-incompatible cores onto a common
bus (serializing them) and pays for tight budgets with testing time.

The script sweeps the budget through every point where the constraint set
changes, prints the staircase, then drills into one tight budget: the
optimal design, its Gantt chart, and an independent verification of the
schedule's instantaneous power.
"""

from repro.api import (
    DesignProblem,
    TamArchitecture,
    budget_sweep_points,
    build_s1,
    build_schedule,
    design,
    power_budget_sweep,
    power_groups,
    use_metrics,
)

def main() -> None:
    # Scope a metrics registry to this run: every solve below folds its
    # node/LP counters into it, summarized at the end.
    with use_metrics() as metrics:
        _run_staircase()
        print()
        nodes = metrics.counter("solve.nodes").value
        lps = metrics.counter("solve.lp_solves").value
        print(f"[metrics] {nodes} B&B nodes, {lps} LP solves across the sweep")


def _run_staircase() -> None:
    soc = build_s1()
    arch = TamArchitecture([16, 16, 16])

    print(f"core test powers: "
          + ", ".join(f"{c.name}={c.test_power:g}mW" for c in soc))
    print(f"budget change points: {[round(b, 1) for b in budget_sweep_points(soc)]}")
    print()

    # --- the staircase -----------------------------------------------------
    print(f"{'P_max (mW)':>12} | {'T* (cycles)':>12} | groups forced together")
    for point in power_budget_sweep(soc, arch, timing="serial"):
        groups = power_groups(soc, point.budget)
        names = "; ".join(
            "{" + ", ".join(soc.cores[i].name for i in sorted(g)) + "}" for g in groups
        )
        time_text = f"{point.makespan:.0f}" if point.feasible else "INFEASIBLE"
        print(f"{point.budget:12.1f} | {time_text:>12} | {names or '-'}")
    print()

    # --- one tight budget in detail ----------------------------------------
    budget = 110.0
    problem = DesignProblem(
        soc=soc, arch=arch, timing="serial", power_budget=budget
    )
    result = design(problem)
    print(result.describe())
    print()

    schedule = build_schedule(problem, result.assignment, policy="power_stagger")
    print(schedule.gantt(width=60))
    print()

    profile = schedule.power_profile()
    print(f"true instantaneous peak: {profile.peak:.1f} mW "
          f"(budget {budget:g} mW applies to concurrent *pairs*)")
    worst_pair = 0.0
    for i, a in enumerate(schedule.sessions):
        for b in schedule.sessions[i + 1:]:
            if a.bus != b.bus and a.start < b.end and b.start < a.end:
                worst_pair = max(worst_pair, a.power + b.power)
    print(f"worst concurrent pair: {worst_pair:.1f} mW -> "
          f"{'OK' if worst_pair <= budget else 'VIOLATION'}")


if __name__ == "__main__":
    main()
