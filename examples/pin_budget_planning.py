"""Pin budget planning: how many TAM wires does a test-time target need?

Run with::

    python examples/pin_budget_planning.py

The planning conversation the dual formulation answers: marketing fixed the
test cost ceiling (tester seconds -> cycle budget), how many chip pins must
the TAM get? The script walks budgets from loose to tight, reports the
minimum width and the architecture that achieves it, and shows the knee
where extra pins stop helping (so over-asking is provably wasted).
"""

from repro.api import (
    InfeasibleError,
    SolvePolicy,
    build_s1,
    bus_count_curve,
    design_best_architecture,
    min_width,
)

def main() -> None:
    soc = build_s1()
    num_buses = 3
    print(f"planning for {soc.name} over {num_buses} test buses (serial timing)\n")

    # What's even achievable? The saturation point of the width curve.
    saturated = design_best_architecture(
        soc, 64, num_buses, timing="serial", clamp_useless_width=True, backend="scipy"
    )
    floor = saturated.best_makespan
    print(f"fastest achievable testing time at any width: {floor:.0f} cycles\n")

    print(f"{'time budget':>12} | {'min W':>5} | {'architecture':>14} | {'T* (cycles)':>11}")
    for factor in (3.0, 2.0, 1.5, 1.2, 1.0):
        budget = floor * factor
        try:
            plan = min_width(
                soc, num_buses, budget, timing="serial", max_width=64, backend="scipy"
            )
        except InfeasibleError:
            print(f"{budget:>12.0f} | {'-':>5} | {'unreachable':>14} |")
            continue
        print(f"{budget:>12.0f} | {plan.min_width:>5} | "
              f"{str(plan.design.arch):>14} | {plan.design.makespan:>11.0f}")

    print("\nand if the bus count itself is negotiable (W = 32):")
    # Planning runs are interactive: a per-solve deadline keeps the loop
    # snappy, degrading to an incumbent/heuristic rather than stalling.
    snappy = SolvePolicy(deadline=30.0)
    for point in bus_count_curve(soc, 32, 5, timing="serial", backend="scipy",
                                 policy=snappy):
        widths = "+".join(str(w) for w in point.arch_widths) if point.arch_widths else "-"
        time = f"{point.makespan:.0f}" if point.makespan is not None else "infeasible"
        print(f"  NB={point.num_buses}: {time:>10} cycles  (widths {widths})")


if __name__ == "__main__":
    main()
