"""Quickstart: design an optimal test access architecture for the S1 SOC.

Run with::

    python examples/quickstart.py

Covers the 90% use case in ~20 lines: build a benchmark SOC, state the bus
architecture and timing model, solve to proven optimality, and inspect the
result (per-bus core lists, makespan, solver effort) — then the anytime
variant: the same solve under a :class:`SolvePolicy` budget, which returns
the best incumbent (or a heuristic stand-in) instead of failing.
"""

from repro.api import (
    DesignProblem,
    SolvePolicy,
    TamArchitecture,
    build_s1,
    design,
    run_all_baselines,
)

def main() -> None:
    # The six-core academic SOC used throughout the paper's evaluation.
    soc = build_s1()
    print(soc.describe())
    print()

    # Three 16-bit test buses; narrow cores are serialized when needed.
    problem = DesignProblem(
        soc=soc,
        arch=TamArchitecture([16, 16, 16]),
        timing="serial",
    )

    # Exact ILP solve (our branch & bound; pass backend="scipy" for HiGHS).
    result = design(problem)
    print(result.describe())
    print()

    # How much did exactness buy? Compare the heuristics a practitioner
    # would otherwise use.
    print("heuristic comparison:")
    for baseline in run_all_baselines(problem, seed=0):
        gap = (baseline.makespan - result.makespan) / result.makespan * 100
        print(f"  {baseline.name:>12}: {baseline.makespan:8.0f} cycles  (+{gap:.1f}%)")
    print()

    # Anytime mode: cap the solver's effort. On exhaustion you still get a
    # design — the best incumbent found, or a heuristic fallback — with its
    # provenance recorded instead of a SolverError.
    capped = design(problem, policy=SolvePolicy(node_budget=5, deadline=10.0))
    print(f"capped solve: {capped.makespan:.0f} cycles "
          f"(status={capped.status.value}, provenance={capped.provenance})")
    if capped.fallback is not None:
        print(f"  resilience: {capped.fallback.render()}")


if __name__ == "__main__":
    main()
