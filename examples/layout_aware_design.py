"""Layout-aware TAM design: trading testing time for routable TAM wiring.

Run with::

    python examples/layout_aware_design.py

Scenario: the unconstrained optimum happily chains cores from opposite die
corners onto one bus, producing TAM routes that congest the design. The
place-and-route constraint family forbids distant cores from sharing a bus.
This script places S1 (deterministic grid placement and a simulated-
annealing placement), tightens the distance budget step by step, and prints
the wirelength/testing-time tradeoff plus its Pareto frontier.
"""

from repro.api import (
    DesignProblem,
    TamArchitecture,
    anneal_place,
    build_s1,
    design,
    distance_budget_sweep,
    grid_place,
    pareto_front,
    tam_wirelength,
    trace_solve,
)

def main() -> None:
    soc = build_s1()
    arch = TamArchitecture([16, 16, 16])

    for label, floorplan in (
        ("grid", grid_place(soc)),
        ("simulated annealing", anneal_place(soc, seed=11, iterations=400)),
    ):
        print(f"--- {label} floorplan " + "-" * 40)
        print(floorplan.describe())
        print()

        sweep = distance_budget_sweep(soc, arch, floorplan, timing="serial")
        print(f"{'delta (mm)':>10} | {'T* (cycles)':>11} | {'WL (wire-mm)':>12} | detail")
        for point in sweep:
            time_text = f"{point.makespan:.0f}" if point.feasible else "-"
            wl_text = f"{point.wirelength:.1f}" if point.wirelength is not None else "-"
            print(f"{point.budget:10.2f} | {time_text:>11} | {wl_text:>12} | {point.detail}")

        front = pareto_front(sweep)
        print("\nPareto frontier (testing time vs routing cost):")
        for point in sorted(front, key=lambda p: p.makespan):
            print(f"  {point.makespan:.0f} cycles at {point.wirelength:.1f} wire-mm")
        print()

    # Show one concrete constrained design with its routes — traced, so the
    # flame summary at the end shows where the solve time went.
    floorplan = grid_place(soc)
    problem = DesignProblem(
        soc=soc, arch=arch, timing="serial",
        floorplan=floorplan, max_pair_distance=5.0,
    )
    with trace_solve() as trace:
        result = design(problem)
    print("design at delta = 5.0 mm:")
    print(result.describe())
    print("per-bus route lengths (chain estimator, raw mm):")
    for bus in range(arch.num_buses):
        members = result.assignment.cores_on_bus(bus)
        names = ", ".join(soc.cores[i].name for i in members) or "(empty)"
        from repro.api import bus_wirelength

        length = bus_wirelength(floorplan, members) if members else 0.0
        print(f"  bus {bus}: {length:6.2f} mm  [{names}]")
    print(f"total width-weighted: {tam_wirelength(floorplan, result.assignment):.1f} wire-mm")
    print()
    print(trace.flame())


if __name__ == "__main__":
    main()
