"""Design a TAM for your own SOC described in a plain-text .soc file.

Run with::

    python examples/custom_soc_from_file.py

Shows the file-driven workflow a downstream user would adopt: describe the
system in the ``.soc`` format (no Python required), then search the full
architecture space — every width distribution of a pin budget, under all
three timing models — and report the best design per model.
"""

import tempfile
from pathlib import Path

from repro.api import SolvePolicy, design_best_architecture, load_soc

SOC_TEXT = """\
# A hypothetical set-top-box SOC: CPU, DSP, two memories, peripherals.
soc settop
die 12 12
powerbudget 800

core cpu    inputs=64 outputs=64 flipflops=2200 gates=30000 \\
            patterns=180 width=32 power=640 activity=0.5
core dsp    inputs=32 outputs=32 flipflops=900  gates=12000 \\
            patterns=140 width=16 power=290 activity=0.55
core memctl inputs=40 outputs=36 flipflops=350  gates=5000  \\
            patterns=90  width=16 power=120 activity=0.6
core sram   inputs=24 outputs=16 flipflops=0    gates=2000  \\
            patterns=40  width=8  power=55  activity=0.7
core uart   inputs=12 outputs=10 flipflops=60   gates=900   \\
            patterns=55  width=4  power=25  activity=0.6
core gpio   inputs=16 outputs=16 flipflops=40   gates=600   \\
            patterns=35  width=4  power=18  activity=0.6
"""

def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "settop.soc"
        path.write_text(SOC_TEXT)
        soc = load_soc(path)

    print(soc.describe())
    print(f"\npin budget: 48 TAM wires over 3 buses; "
          f"SOC power budget {soc.power_budget:g} mW\n")

    # An unfamiliar SOC can hide hard instances: a per-solve deadline keeps
    # the sweep responsive (exhausted solves return their best incumbent).
    policy = SolvePolicy(deadline=60.0)
    for timing in ("fixed", "serial", "flexible"):
        sweep = design_best_architecture(
            soc, total_width=48, num_buses=3,
            timing=timing, power_budget=soc.power_budget,
            policy=policy,
        )
        if sweep.best is None:
            print(f"{timing:>9}: no feasible width distribution "
                  f"({sweep.infeasible}/{sweep.evaluated} infeasible)")
            continue
        best = sweep.best
        print(f"{timing:>9}: T* = {best.makespan:7.0f} cycles on {best.arch}  "
              f"({sweep.evaluated} distributions, {sweep.infeasible} infeasible, "
              f"{sweep.wall_time:.1f}s)")
        for bus, names in best.assignment.groups().items():
            print(f"           bus {bus} (w={best.arch.width_of(bus)}): {', '.join(names) or '-'}")
    print("\nNote the model ordering: fixed (rigid interfaces) can only get"
          "\nslower than serial (width adaptation), which can only get slower"
          "\nthan flexible (full wrapper redesign per bus).")


if __name__ == "__main__":
    main()
