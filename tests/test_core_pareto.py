"""Tests for the sweep drivers and Pareto extraction."""

from repro.core import distance_budget_sweep, power_budget_sweep, width_sweep
from repro.core.pareto import SweepPoint, pareto_front


class TestWidthSweep:
    def test_monotone_and_details(self, s1):
        points = width_sweep(s1, 2, [8, 16, 24, 32], timing="serial")
        values = [p.makespan for p in points if p.feasible]
        assert len(values) == 4
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        assert all(p.detail.startswith("TAM[") for p in points if p.feasible)

    def test_width_below_bus_count_infeasible(self, s1):
        points = width_sweep(s1, 3, [2, 6], timing="serial")
        assert not points[0].feasible
        assert points[0].detail == "W < NB"
        assert points[1].feasible

    def test_fixed_timing_narrow_budget_infeasible(self, s1):
        points = width_sweep(s1, 2, [8], timing="fixed")
        assert not points[0].feasible
        assert "infeasible" in points[0].detail


class TestPowerSweep:
    def test_default_budgets_cover_change_points(self, s1, arch2):
        from repro.power import budget_sweep_points

        points = power_budget_sweep(s1, arch2, timing="serial")
        expected = budget_sweep_points(s1)
        assert len(points) == len(expected) + 1  # + loose endpoint
        values = [p.makespan for p in points if p.feasible]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_custom_budgets(self, s1, arch2):
        points = power_budget_sweep(s1, arch2, timing="serial", budgets=[100.0, 500.0])
        assert [p.budget for p in points] == [100.0, 500.0]

    def test_detail_counts_pairs(self, s1, arch2):
        point = power_budget_sweep(s1, arch2, timing="serial", budgets=[110.0])[0]
        assert "forced pairs" in point.detail


class TestDistanceSweep:
    def test_time_tightens_wirelength_shrinks(self, s1, arch3, s1_floorplan):
        points = distance_budget_sweep(s1, arch3, s1_floorplan, timing="serial")
        feasible = [p for p in points if p.feasible]
        times = [p.makespan for p in feasible]
        # budgets descend, so times weakly increase down the sweep
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
        assert any(not p.feasible for p in points)  # tight end goes infeasible

    def test_custom_deltas(self, s1, arch3, s1_floorplan):
        points = distance_budget_sweep(
            s1, arch3, s1_floorplan, timing="serial", deltas=[10.0, 5.0]
        )
        assert [p.budget for p in points] == [10.0, 5.0]
        assert points[0].wirelength is not None


class TestParetoFront:
    def test_extracts_non_dominated(self):
        points = [
            SweepPoint(1, makespan=100, wirelength=50),
            SweepPoint(2, makespan=90, wirelength=60),   # frontier
            SweepPoint(3, makespan=100, wirelength=40),  # frontier
            SweepPoint(4, makespan=110, wirelength=45),  # dominated by 3
            SweepPoint(5, makespan=None, wirelength=None),
        ]
        front = pareto_front(points)
        assert {(p.makespan, p.wirelength) for p in front} == {(90, 60), (100, 40)}

    def test_duplicates_collapsed(self):
        points = [
            SweepPoint(1, makespan=10, wirelength=5),
            SweepPoint(2, makespan=10, wirelength=5),
        ]
        assert len(pareto_front(points)) == 1

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        front = pareto_front([SweepPoint(1, makespan=10, wirelength=5)])
        assert len(front) == 1

    def test_frontier_sorted_by_makespan(self):
        points = [
            SweepPoint(1, makespan=30, wirelength=1),
            SweepPoint(2, makespan=10, wirelength=9),
            SweepPoint(3, makespan=20, wirelength=5),
        ]
        front = pareto_front(points)
        spans = [p.makespan for p in front]
        assert spans == sorted(spans)
