"""Tests for the ASCII table renderer."""

import math

import pytest

from repro.util.tables import Table, format_objective, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "a   | bb"
        assert lines[1] == "----+---"
        assert lines[2] == "  1 |  2"
        assert lines[3] == "333 |  4"

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_none_renders_dash(self):
        assert "-" in format_table(["x"], [[None]]).splitlines()[-1]

    def test_bool_renders_yes_no(self):
        text = format_table(["x", "y"], [[True, False]])
        assert "yes" in text and "no" in text

    def test_integral_float_rendered_as_int(self):
        assert format_table(["x"], [[5363.0]]).splitlines()[-1].strip() == "5363"

    def test_fractional_float_two_decimals(self):
        assert format_table(["x"], [[3.14159]]).splitlines()[-1].strip() == "3.14"

    def test_nan_rendered(self):
        assert "nan" in format_table(["x"], [[float("nan")]])

    def test_wrong_row_width_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTable:
    def test_add_row_and_render(self):
        table = Table(["W", "time"], title="Fig")
        table.add_row([16, 1200])
        table.add_row([32, 800])
        assert len(table) == 2
        rendered = table.render()
        assert "Fig" in rendered and "1200" in rendered

    def test_add_row_validates_width(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_column_extraction(self):
        table = Table(["a", "b"])
        table.add_row([1, "x"])
        table.add_row([2, "y"])
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_column_unknown_raises(self):
        with pytest.raises(KeyError):
            Table(["a"]).column("zz")


class TestFormatObjective:
    def test_none_and_nonfinite_pass_through(self):
        assert format_objective(None) is None
        assert math.isnan(format_objective(float("nan")))
        assert format_objective(float("inf")) == float("inf")

    def test_rounds_away_platform_noise(self):
        assert format_objective(1200.0000004999) == 1200.0
        assert format_objective(1200.0000004999) == format_objective(1200.0)

    def test_negative_zero_is_normalized(self):
        result = format_objective(-1e-12)
        assert result == 0.0 and math.copysign(1.0, result) == 1.0

    def test_decimals_parameter(self):
        assert format_objective(3.14159, decimals=2) == 3.14

    def test_integral_cycle_counts_unchanged(self):
        assert format_objective(12652.0) == 12652.0
