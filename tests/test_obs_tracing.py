"""Span tracing: nesting, JSON export, flame view, phase-total invariants."""

from __future__ import annotations

import json

import pytest

from repro.core import DesignProblem, design
from repro.obs import Tracer, current_tracer, now, span, trace_solve


class TestTracerMechanics:
    def test_span_nesting_records_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.end is not None and inner.end is not None

    def test_event_attaches_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.event("tick", value=1)
        assert tracer.spans[0].events[0]["name"] == "tick"

    def test_node_events_are_sampled(self):
        tracer = Tracer(node_sample_every=10)
        for depth in range(25):
            tracer.node_event(depth=depth, bound=0.0, incumbent=None)
        # Nodes 1, 11, 21 are kept.
        assert [e["node"] for e in tracer.node_events] == [1, 11, 21]

    def test_module_helpers_are_noops_without_tracer(self):
        assert current_tracer() is None
        with span("nothing"):  # must not raise nor allocate a tracer
            pass
        assert current_tracer() is None

    def test_trace_solve_installs_and_restores(self):
        assert current_tracer() is None
        with trace_solve() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestPhaseTotals:
    def test_self_times_partition_root_duration(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                now()
            with tracer.span("b"):
                now()
        totals = tracer.phase_totals()
        assert set(totals) == {"root", "a", "b"}
        assert sum(totals.values()) == pytest.approx(tracer.traced_duration(), rel=1e-9)

    def test_traced_design_phase_totals_cover_wall_time(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with trace_solve() as tracer:
            with tracer.span("design"):
                start = now()
                design(problem, cache=False)
                wall = now() - start
        totals = tracer.phase_totals()
        # The acceptance invariant: per-phase totals sum to within 5% of the
        # measured wall time of the traced region.
        assert sum(totals.values()) == pytest.approx(wall, rel=0.05)
        assert {"formulate", "solve", "bnb_search", "decode"} <= set(totals)

    def test_bnb_emits_node_and_incumbent_events(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with trace_solve(node_sample_every=1) as tracer:
            design(problem, cache=False)
        assert tracer.node_events, "expected sampled B&B node events"
        sample = tracer.node_events[0]
        assert {"node", "depth", "bound", "incumbent", "t"} <= set(sample)
        incumbents = [
            e for s in tracer.spans for e in s.events if e["name"] == "incumbent"
        ]
        assert incumbents, "expected incumbent-improvement events"


class TestExports:
    def test_to_json_is_valid_and_self_contained(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with trace_solve() as tracer:
            design(problem, cache=False)
        payload = json.loads(json.dumps(tracer.to_json()))
        assert payload["version"] == 1
        assert payload["spans"], "expected recorded spans"
        ids = {s["id"] for s in payload["spans"]}
        for entry in payload["spans"]:
            assert entry["parent"] is None or entry["parent"] in ids
            assert entry["end"] is not None and entry["end"] >= entry["start"] >= 0.0
        assert sum(payload["phase_totals"].values()) == pytest.approx(
            payload["traced_duration"], rel=1e-6
        )

    def test_flame_renders_every_phase(self):
        tracer = Tracer()
        with tracer.span("alpha"):
            with tracer.span("beta"):
                pass
        text = tracer.flame()
        assert "alpha" in text and "beta" in text
        assert text.startswith("trace:")
