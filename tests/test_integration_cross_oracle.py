"""Cross-oracle property tests: every path to the optimum must agree.

For randomized instances these tests chain together independent machinery —
our branch & bound, HiGHS, the exhaustive search, the LP-format round-trip,
the schedule builder, and the validators — and require full agreement.
A bug in any one layer breaks a chain somewhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignProblem,
    build_assignment_ilp,
    build_schedule,
    design,
    schedule_with_power_cap,
)
from repro.ilp.lpformat import parse_lp, write_lp
from repro.layout import grid_place
from repro.soc import generate_synthetic_soc
from repro.tam import TamArchitecture, ate_vector_memory, exhaustive_optimal, tam_utilization
from repro.util.errors import InfeasibleError


def _random_problem(seed: int, constrained: bool) -> DesignProblem:
    rng = np.random.default_rng(seed)
    soc = generate_synthetic_soc(int(rng.integers(4, 7)), seed=seed)
    widths = [int(w) for w in rng.choice([8, 16, 32], size=int(rng.integers(2, 4)))]
    kwargs = {}
    if constrained:
        floorplan = grid_place(soc)
        powers = sorted(c.test_power for c in soc)
        kwargs = dict(
            power_budget=powers[-1] + powers[-2] * float(rng.uniform(0.4, 1.1)),
            floorplan=floorplan,
            max_pair_distance=floorplan.spread() * float(rng.uniform(0.55, 1.0)),
        )
    return DesignProblem(soc=soc, arch=TamArchitecture(widths), timing="serial", **kwargs)


class TestFiveWayAgreement:
    @given(st.integers(0, 80))
    @settings(max_examples=10)
    def test_unconstrained_chain(self, seed):
        problem = _random_problem(seed, constrained=False)

        ours = design(problem, backend="bnb")
        highs = design(problem, backend="scipy")
        oracle = exhaustive_optimal(problem.soc, problem.arch, problem.timing)
        assert ours.makespan == pytest.approx(highs.makespan)
        assert ours.makespan == pytest.approx(oracle.makespan)

        # LP round-trip of the same formulation re-solves to the optimum.
        model = build_assignment_ilp(problem).model
        reparsed = parse_lp(write_lp(model))
        assert reparsed.solve(backend="scipy").objective == pytest.approx(ours.makespan)

        # The schedule realizes exactly the ILP's objective.
        schedule = build_schedule(problem, ours.assignment)
        assert schedule.makespan == pytest.approx(ours.makespan)

        # Resource accounting is internally consistent.
        utilization = tam_utilization(problem.soc, ours.assignment, problem.timing)
        memory = ate_vector_memory(ours.assignment, problem.timing)
        assert utilization.active_wire_cycles <= memory + 1e-6
        assert memory <= utilization.total_wire_cycles + 1e-6

    @given(st.integers(0, 80))
    @settings(max_examples=8)
    def test_constrained_chain(self, seed):
        problem = _random_problem(seed, constrained=True)
        try:
            ours = design(problem, backend="bnb")
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                design(problem, backend="scipy")
            return
        highs = design(problem, backend="scipy")
        assert ours.makespan == pytest.approx(highs.makespan)
        assert problem.validate(ours.assignment) == []
        assert problem.validate(highs.assignment) == []

        # Warm-started solve agrees too.
        warm = design(problem, backend="bnb", warm_start_heuristic=True)
        assert warm.makespan == pytest.approx(ours.makespan)

        # Power-capped rescheduling of the design stays cap-compliant.
        if problem.power_budget is not None:
            hungriest = max(c.test_power for c in problem.soc)
            cap = max(problem.power_budget, hungriest + 1.0)
            capped = schedule_with_power_cap(problem, ours.assignment, cap)
            assert capped.schedule.power_profile().respects(cap)

    @given(st.integers(0, 50))
    @settings(max_examples=8)
    def test_adding_any_constraint_never_helps(self, seed):
        rng = np.random.default_rng(seed + 7)
        base = _random_problem(seed, constrained=False)
        base_makespan = design(base, backend="scipy").makespan

        n = len(base.soc)
        a, b = sorted(rng.choice(n, size=2, replace=False).tolist())
        for kind in ("forced", "forbidden"):
            kwargs = {"extra_forced": [(a, b)]} if kind == "forced" else {
                "extra_forbidden": [(a, b)]
            }
            tightened = DesignProblem(
                soc=base.soc, arch=base.arch, timing=base.timing, **kwargs
            )
            try:
                constrained = design(tightened, backend="scipy")
            except InfeasibleError:
                continue
            assert constrained.makespan >= base_makespan - 1e-9
