"""Tests for the LP relaxation front-end and the scipy MILP backend."""

import pytest

from repro.ilp import Model, Status, quicksum, solve_with_scipy
from repro.ilp.lp import solve_matrix_lp


def _lp_model():
    m = Model("lp")
    x = m.add_var("x", ub=4)
    y = m.add_var("y", ub=4)
    m.add_constr(x + 2 * y <= 6)
    m.maximize(3 * x + 2 * y)
    return m, x, y


class TestRelaxation:
    def test_scipy_and_simplex_agree(self):
        m, _, _ = _lp_model()
        fast = m.solve_relaxation(method="scipy")
        slow = m.solve_relaxation(method="simplex")
        assert fast.objective == pytest.approx(14.0)
        assert slow.objective == pytest.approx(14.0)

    def test_relaxation_of_binary_model_is_fractional(self):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(a + b <= 1.5)
        m.maximize(a + b)
        sol = m.solve_relaxation()
        assert sol.objective == pytest.approx(1.5)

    def test_value_of_expression(self):
        m, x, y = _lp_model()
        sol = m.solve_relaxation()
        assert sol.value(x + y) == pytest.approx(sol[x] + sol[y])

    def test_infeasible_relaxation_status(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 2)
        m.minimize(x)
        assert m.solve_relaxation().status is Status.INFEASIBLE

    def test_matrix_lp_bound_override_infeasible(self):
        m, _, _ = _lp_model()
        form = m.to_matrix_form()
        import numpy as np

        res = solve_matrix_lp(form, lb=np.array([5.0, 0.0]), ub=np.array([4.0, 4.0]))
        assert res.status == "infeasible"

    def test_matrix_lp_rejects_unknown_method(self):
        m, _, _ = _lp_model()
        with pytest.raises(ValueError):
            solve_matrix_lp(m.to_matrix_form(), method="barrier")


class TestScipyBackend:
    def test_optimal(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(4)]
        m.add_constr(quicksum(xs) <= 2)
        m.maximize(quicksum((i + 1) * x for i, x in enumerate(xs)))
        sol = solve_with_scipy(m)
        assert sol.status is Status.OPTIMAL
        assert sol.objective == pytest.approx(7.0)
        assert sol.backend == "scipy"

    def test_infeasible(self):
        m = Model()
        a = m.add_binary("a")
        m.add_constr(a >= 2)
        m.minimize(a)
        assert solve_with_scipy(m).status is Status.INFEASIBLE

    def test_unbounded(self):
        from repro.ilp import INTEGER

        m = Model()
        x = m.add_var("x", vartype=INTEGER)
        m.maximize(x)
        assert solve_with_scipy(m).status is Status.UNBOUNDED

    def test_objective_constant_preserved(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(x + 10)
        assert solve_with_scipy(m).objective == pytest.approx(11.0)

    def test_rounded_snaps_near_integers(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(x)
        sol = solve_with_scipy(m)
        values = sol.rounded()
        assert values[x] in (0.0, 1.0)


def test_solution_repr_mentions_status():
    m = Model()
    x = m.add_binary("x")
    m.maximize(x)
    text = repr(m.solve())
    assert "optimal" in text
