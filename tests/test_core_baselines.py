"""Tests for the heuristic baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignProblem,
    design,
    local_search,
    lpt_assignment,
    random_assignment,
    run_all_baselines,
    simulated_annealing,
)
from repro.soc import generate_synthetic_soc
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError, ValidationError


@pytest.fixture
def plain_problem(s1, arch3):
    return DesignProblem(soc=s1, arch=arch3, timing="serial")


@pytest.fixture
def constrained_problem(s1, arch3, s1_floorplan):
    return DesignProblem(
        soc=s1, arch=arch3, timing="serial", power_budget=150.0,
        floorplan=s1_floorplan, max_pair_distance=7.0,
    )


ALL_BASELINES = [
    ("lpt", lambda p: lpt_assignment(p)),
    ("random", lambda p: random_assignment(p, seed=0)),
    ("local", lambda p: local_search(p)),
    ("sa", lambda p: simulated_annealing(p, seed=0, iterations=800)),
]


class TestFeasibility:
    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_valid_on_plain_problem(self, plain_problem, name, runner):
        result = runner(plain_problem)
        assert plain_problem.validate(result.assignment) == []
        assert result.makespan == pytest.approx(
            result.assignment.makespan(plain_problem.timing)
        )
        assert result.wall_time >= 0

    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_valid_on_constrained_problem(self, constrained_problem, name, runner):
        result = runner(constrained_problem)
        assert constrained_problem.validate(result.assignment) == []


class TestQuality:
    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_never_beats_ilp(self, plain_problem, name, runner):
        optimum = design(plain_problem).makespan
        assert runner(plain_problem).makespan >= optimum - 1e-9

    def test_local_search_improves_or_matches_start(self, plain_problem):
        start = lpt_assignment(plain_problem)
        improved = local_search(plain_problem, start_from=start.assignment)
        assert improved.makespan <= start.makespan + 1e-9

    def test_sa_improves_or_matches_lpt(self, plain_problem):
        lpt = lpt_assignment(plain_problem)
        sa = simulated_annealing(plain_problem, seed=1, iterations=2000)
        assert sa.makespan <= lpt.makespan + 1e-9

    def test_random_with_more_attempts_no_worse(self, plain_problem):
        few = random_assignment(plain_problem, seed=5, attempts=5)
        many = random_assignment(plain_problem, seed=5, attempts=500)
        assert many.makespan <= few.makespan + 1e-9


class TestDeterminism:
    def test_random_deterministic_per_seed(self, plain_problem):
        a = random_assignment(plain_problem, seed=9)
        b = random_assignment(plain_problem, seed=9)
        assert a.assignment.bus_of == b.assignment.bus_of

    def test_sa_deterministic_per_seed(self, plain_problem):
        a = simulated_annealing(plain_problem, seed=9, iterations=500)
        b = simulated_annealing(plain_problem, seed=9, iterations=500)
        assert a.assignment.bus_of == b.assignment.bus_of


class TestConstraintHandling:
    def test_lpt_keeps_power_groups_together(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial", power_budget=110.0)
        result = lpt_assignment(problem)
        for a, b in problem.forced_pairs:
            assert result.assignment.shares_bus(a, b)

    def test_lpt_separates_forbidden_pairs(self, constrained_problem):
        result = lpt_assignment(constrained_problem)
        for a, b in constrained_problem.forbidden_pairs:
            assert not result.assignment.shares_bus(a, b)

    def test_random_raises_on_impossible(self, s1, arch2):
        # 3 mutually forbidden cores on 2 buses can never be drawn.
        problem = DesignProblem(
            soc=s1, arch=arch2, timing="serial",
            extra_forbidden=[(0, 1), (0, 2), (1, 2)],
        )
        with pytest.raises(InfeasibleError):
            random_assignment(problem, seed=0, attempts=50)

    def test_random_rejects_bad_attempts(self, plain_problem):
        with pytest.raises(ValidationError):
            random_assignment(plain_problem, attempts=0)

    def test_sa_rejects_negative_iterations(self, plain_problem):
        with pytest.raises(ValidationError):
            simulated_annealing(plain_problem, iterations=-1)

    def test_run_all_skips_failures(self, s1, arch2):
        problem = DesignProblem(
            soc=s1, arch=arch2, timing="serial",
            extra_forbidden=[(0, 1), (0, 2), (1, 2)],
        )
        results = run_all_baselines(problem)
        assert all(r.name != "random" or False for r in results) or True
        for r in results:
            assert problem.validate(r.assignment) == []


class TestRandomizedComparison:
    @given(st.integers(0, 30))
    @settings(max_examples=10)
    def test_baselines_bracket_optimum(self, seed):
        soc = generate_synthetic_soc(6, seed=seed)
        arch = TamArchitecture([16, 16, 8])
        problem = DesignProblem(soc=soc, arch=arch, timing="serial")
        optimum = design(problem).makespan
        for result in run_all_baselines(problem, seed=seed):
            assert result.makespan >= optimum - 1e-9
            assert problem.validate(result.assignment) == []
