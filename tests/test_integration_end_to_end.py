"""End-to-end integration tests: the full user-facing flow.

These mirror what the README tells a user to do: build (or load) an SOC,
place it, state budgets, design the architecture exactly, materialize the
schedule, and verify every promise independently of the solver that made it.
"""

import math

import pytest

from repro import (
    DesignProblem,
    InfeasibleError,
    TamArchitecture,
    build_s1,
    build_schedule,
    design,
    design_best_architecture,
    exhaustive_optimal,
    grid_place,
    load_soc,
    run_all_baselines,
    save_soc,
    tam_wirelength,
)
from repro.power import power_groups


class TestFullFlowS1:
    @pytest.fixture(scope="class")
    def flow(self):
        soc = build_s1()
        floorplan = grid_place(soc)
        problem = DesignProblem(
            soc=soc,
            arch=TamArchitecture([16, 16, 16]),
            timing="serial",
            power_budget=150.0,
            floorplan=floorplan,
            max_pair_distance=7.0,
        )
        result = design(problem)
        schedule = build_schedule(problem, result.assignment)
        return soc, floorplan, problem, result, schedule

    def test_design_is_certified_optimal(self, flow):
        soc, _, problem, result, _ = flow
        oracle = exhaustive_optimal(
            soc, problem.arch, problem.timing,
            forbidden_pairs=problem.forbidden_pairs,
            forced_pairs=problem.forced_pairs,
        )
        assert result.makespan == pytest.approx(oracle.makespan)

    def test_constraints_verified_independently(self, flow):
        _, _, problem, result, _ = flow
        assert problem.validate(result.assignment) == []

    def test_schedule_realizes_makespan(self, flow):
        _, _, _, result, schedule = flow
        assert schedule.makespan == pytest.approx(result.makespan)

    def test_schedule_power_never_pairs_over_budget(self, flow):
        import itertools

        _, _, problem, _, schedule = flow
        for a, b in itertools.combinations(schedule.sessions, 2):
            overlap = a.bus != b.bus and a.start < b.end and b.start < a.end
            if overlap:
                assert a.power + b.power <= problem.power_budget + 1e-9

    def test_wirelength_reported_and_consistent(self, flow):
        _, floorplan, _, result, _ = flow
        assert result.wirelength == pytest.approx(
            tam_wirelength(floorplan, result.assignment)
        )

    def test_heuristics_never_beat_certified_optimum(self, flow):
        _, _, problem, result, _ = flow
        for baseline in run_all_baselines(problem, seed=1):
            assert baseline.makespan >= result.makespan - 1e-9


class TestFileDrivenFlow:
    def test_design_from_soc_file(self, tmp_path):
        soc = build_s1()
        path = tmp_path / "s1.soc"
        save_soc(soc, path)
        loaded = load_soc(path)
        problem = DesignProblem(
            soc=loaded, arch=TamArchitecture([16, 16, 16]), timing="serial"
        )
        from_file = design(problem).makespan
        from_builder = design(
            DesignProblem(soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial")
        ).makespan
        assert from_file == pytest.approx(from_builder)


class TestBudgetInteractions:
    def test_tight_power_serializes_heavy_cores(self):
        soc = build_s1()
        budget = 100.0
        groups = power_groups(soc, budget)
        assert groups  # something must merge at this budget
        problem = DesignProblem(
            soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial",
            power_budget=budget,
        )
        result = design(problem)
        for group in groups:
            buses = {result.assignment.bus_of[i] for i in group}
            assert len(buses) == 1

    def test_width_budget_dominates_constraints(self):
        """A certified chain: optimum(W=48) <= optimum(W=32) under same constraints."""
        soc = build_s1()
        wide = design_best_architecture(soc, 48, 3, timing="serial", power_budget=150.0)
        narrow = design_best_architecture(soc, 32, 3, timing="serial", power_budget=150.0)
        assert wide.best_makespan <= narrow.best_makespan + 1e-9

    def test_infeasible_region_reported_cleanly(self):
        soc = build_s1()
        floorplan = grid_place(soc)
        with pytest.raises(InfeasibleError):
            design(
                DesignProblem(
                    soc=soc, arch=TamArchitecture([16, 16]), timing="serial",
                    floorplan=floorplan, max_pair_distance=floorplan.spread() * 0.2,
                )
            )

    def test_makespan_is_integer_cycles(self):
        soc = build_s1()
        problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial")
        makespan = design(problem).makespan
        assert makespan == pytest.approx(round(makespan))
        assert math.isfinite(makespan)
