"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import hypothesis
import pytest

from repro.layout import grid_place
from repro.soc import build_s1, build_s2, generate_synthetic_soc
from repro.tam import TamArchitecture, make_timing_model

# Property tests solve LPs/ILPs inside examples; a wall-clock deadline would
# flake on slow CI boxes, and a moderate example count keeps the suite fast.
hypothesis.settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[hypothesis.HealthCheck.too_slow],
)
hypothesis.settings.load_profile("repro")


@pytest.fixture(scope="session")
def s1():
    return build_s1()


@pytest.fixture(scope="session")
def s2():
    return build_s2()


@pytest.fixture(scope="session")
def tiny_soc():
    """A 5-core deterministic synthetic SOC for exhaustive cross-checks."""
    return generate_synthetic_soc(5, seed=123)


@pytest.fixture(scope="session")
def arch2():
    return TamArchitecture([16, 16])


@pytest.fixture(scope="session")
def arch3():
    return TamArchitecture([16, 16, 16])


@pytest.fixture(scope="session")
def arch3_hetero():
    return TamArchitecture([32, 16, 8])


@pytest.fixture(scope="session")
def serial_timing():
    return make_timing_model("serial")


@pytest.fixture(scope="session")
def fixed_timing():
    return make_timing_model("fixed")


@pytest.fixture(scope="session")
def flexible_timing():
    return make_timing_model("flexible")


@pytest.fixture(scope="session")
def s1_floorplan(s1):
    return grid_place(s1)
