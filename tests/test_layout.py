"""Tests for floorplans, placers, wirelength estimators, and constraints."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layout import (
    Block,
    Floorplan,
    anneal_place,
    bounding_box_length,
    bus_wirelength,
    chain_tour_length,
    distance_sweep_points,
    forbidden_pairs_by_distance,
    grid_place,
    min_workable_distance,
    rectilinear_mst_length,
    tam_wirelength,
)
from repro.layout.floorplan import block_dimensions
from repro.soc import build_s1, build_s2, generate_synthetic_soc
from repro.tam import Assignment, TamArchitecture
from repro.util.errors import ValidationError


class TestBlock:
    def test_bounds_and_area(self):
        block = Block("b", 2.0, 3.0, 1.0, 2.0)
        assert block.bounds == (1.5, 2.0, 2.5, 4.0)
        assert block.area == pytest.approx(2.0)

    def test_overlap_detection(self):
        a = Block("a", 0, 0, 2, 2)
        assert a.overlaps(Block("b", 1, 1, 2, 2))
        assert not a.overlaps(Block("c", 3, 0, 2, 2))  # abutting edges don't overlap

    def test_block_dimensions_aspect(self):
        w, h = block_dimensions(4.0, aspect=4.0)
        assert w == pytest.approx(4.0) and h == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            block_dimensions(0)
        with pytest.raises(ValidationError):
            block_dimensions(1, aspect=0)


class TestFloorplan:
    def test_block_count_must_match(self, s1):
        with pytest.raises(ValidationError):
            Floorplan(s1, [])

    def test_block_order_must_match(self, s1):
        blocks = [Block(c.name, 1, 1, 0.1, 0.1) for c in s1]
        blocks[0], blocks[1] = blocks[1], blocks[0]
        with pytest.raises(ValidationError):
            Floorplan(s1, blocks)

    def test_distance_matrix_properties(self, s1_floorplan):
        matrix = s1_floorplan.distance_matrix()
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert s1_floorplan.distance(0, 2) == pytest.approx(matrix[0, 2])
        assert s1_floorplan.spread() == pytest.approx(matrix.max())

    def test_out_of_die_detection(self, s1):
        blocks = [Block(c.name, 100.0, 1.0, 0.1, 0.1) for c in s1]
        plan = Floorplan(s1, blocks)
        assert set(plan.out_of_die()) == {c.name for c in s1}
        assert not plan.is_legal()

    def test_describe_mentions_every_core(self, s1_floorplan, s1):
        text = s1_floorplan.describe()
        for core in s1:
            assert core.name in text


class TestPlacers:
    @pytest.mark.parametrize("builder", [build_s1, build_s2])
    def test_grid_place_is_legal(self, builder):
        plan = grid_place(builder())
        assert plan.is_legal()
        assert plan.overlapping_pairs() == []

    def test_grid_place_deterministic(self, s1):
        a, b = grid_place(s1), grid_place(s1)
        assert [blk.x for blk in a.blocks] == [blk.x for blk in b.blocks]

    def test_anneal_place_legal_and_deterministic(self, s1):
        one = anneal_place(s1, seed=2, iterations=150)
        two = anneal_place(s1, seed=2, iterations=150)
        assert one.is_legal()
        assert [b.x for b in one.blocks] == [b.x for b in two.blocks]

    def test_anneal_rejects_negative_iterations(self, s1):
        with pytest.raises(ValidationError):
            anneal_place(s1, iterations=-1)

    def test_anneal_zero_iterations_is_grid_like(self, s1):
        plan = anneal_place(s1, seed=0, iterations=0)
        assert plan.is_legal()

    def test_anneal_improves_or_matches_proxy(self, s1):
        from repro.layout.placers import _wirelength_proxy

        start = _wirelength_proxy(s1, grid_place(s1))
        final = _wirelength_proxy(s1, anneal_place(s1, seed=3, iterations=500))
        assert final <= start + 1e-9

    def test_large_soc_placeable(self):
        soc = generate_synthetic_soc(17, seed=8)
        assert grid_place(soc).is_legal()


class TestWirelength:
    def test_bounding_box(self):
        assert bounding_box_length([(0, 0), (3, 4)]) == pytest.approx(7.0)
        assert bounding_box_length([]) == 0.0
        assert bounding_box_length([(2, 2)]) == 0.0

    def test_chain_tour_simple_line(self):
        # source (0,0) -> (1,0) -> (2,0) -> sink (3,0)
        assert chain_tour_length((0, 0), [(2, 0), (1, 0)], (3, 0)) == pytest.approx(3.0)

    def test_chain_tour_empty_stops(self):
        assert chain_tour_length((0, 0), [], (3, 4)) == pytest.approx(7.0)

    def test_mst_triangle(self):
        points = [(0, 0), (2, 0), (0, 2)]
        assert rectilinear_mst_length(points) == pytest.approx(4.0)
        assert rectilinear_mst_length([(1, 1)]) == 0.0

    def test_mst_never_longer_than_chain(self, s1_floorplan):
        indices = [0, 2, 4]
        chain = bus_wirelength(s1_floorplan, indices, method="chain")
        mst = bus_wirelength(s1_floorplan, indices, method="mst")
        assert mst <= chain + 1e-9

    def test_bbox_never_longer_than_mst(self, s1_floorplan):
        indices = [0, 1, 2, 3]
        assert bus_wirelength(s1_floorplan, indices, "bbox") <= bus_wirelength(
            s1_floorplan, indices, "mst"
        ) + 1e-9

    def test_unknown_method_rejected(self, s1_floorplan):
        with pytest.raises(ValidationError):
            bus_wirelength(s1_floorplan, [0], method="astar")

    def test_tam_wirelength_width_weighting(self, s1, s1_floorplan):
        arch = TamArchitecture([16, 8])
        assignment = Assignment(s1, arch, (0, 0, 0, 1, 1, 1))
        weighted = tam_wirelength(s1_floorplan, assignment)
        raw = tam_wirelength(s1_floorplan, assignment, width_weighted=False)
        assert weighted > raw  # widths 16 and 8 scale both buses up
        lengths = [
            bus_wirelength(s1_floorplan, assignment.cores_on_bus(b)) for b in range(2)
        ]
        assert weighted == pytest.approx(16 * lengths[0] + 8 * lengths[1])

    def test_empty_bus_costs_nothing(self, s1, s1_floorplan):
        arch = TamArchitecture([16, 8])
        all_on_zero = Assignment(s1, arch, (0,) * 6)
        only = tam_wirelength(s1_floorplan, all_on_zero)
        assert only == pytest.approx(
            16 * bus_wirelength(s1_floorplan, list(range(6)))
        )


class TestDistanceConstraints:
    def test_forbidden_pairs_threshold_semantics(self, s1_floorplan):
        spread = s1_floorplan.spread()
        assert forbidden_pairs_by_distance(s1_floorplan, spread) == []
        everything = forbidden_pairs_by_distance(s1_floorplan, 0.0)
        n = len(s1_floorplan.blocks)
        assert len(everything) == n * (n - 1) // 2

    def test_negative_delta_rejected(self, s1_floorplan):
        with pytest.raises(ValidationError):
            forbidden_pairs_by_distance(s1_floorplan, -1.0)

    def test_sweep_points_descending_unique(self, s1_floorplan):
        points = distance_sweep_points(s1_floorplan)
        assert all(a > b for a, b in zip(points, points[1:]))
        assert points[0] == pytest.approx(s1_floorplan.spread())

    def test_sweep_points_change_constraint_set(self, s1_floorplan):
        points = distance_sweep_points(s1_floorplan)
        sizes = [len(forbidden_pairs_by_distance(s1_floorplan, d - 1e-7)) for d in points]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_min_workable_distance(self, s1_floorplan):
        delta = min_workable_distance(s1_floorplan, 3)
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(6))
        graph.add_edges_from(forbidden_pairs_by_distance(s1_floorplan, delta))
        coloring = nx.greedy_color(graph, strategy="largest_first")
        assert max(coloring.values()) + 1 <= 3

    def test_min_workable_rejects_bad_count(self, s1_floorplan):
        with pytest.raises(ValidationError):
            min_workable_distance(s1_floorplan, 0)

    @given(st.integers(0, 40))
    def test_forbidden_pairs_monotone_in_delta(self, seed):
        soc = generate_synthetic_soc(6, seed=seed)
        plan = grid_place(soc)
        spread = plan.spread()
        loose = set(forbidden_pairs_by_distance(plan, spread * 0.7))
        tight = set(forbidden_pairs_by_distance(plan, spread * 0.3))
        assert loose <= tight
