"""Tests for power-capped schedule construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DesignProblem, build_schedule, design, schedule_with_power_cap
from repro.soc import build_s1, generate_synthetic_soc
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError, ValidationError


@pytest.fixture(scope="module")
def s1_designed():
    soc = build_s1()
    problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial")
    return problem, design(problem).assignment


class TestCapCompliance:
    def test_profile_respects_cap(self, s1_designed):
        problem, assignment = s1_designed
        capped = schedule_with_power_cap(problem, assignment, 150.0)
        assert capped.schedule.power_profile().respects(150.0)

    def test_all_cores_scheduled_exactly_once(self, s1_designed):
        problem, assignment = s1_designed
        capped = schedule_with_power_cap(problem, assignment, 150.0)
        assert sorted(s.core_name for s in capped.schedule.sessions) == sorted(
            problem.soc.core_names
        )

    def test_buses_stay_serial(self, s1_designed):
        problem, assignment = s1_designed
        capped = schedule_with_power_cap(problem, assignment, 120.0)
        for bus in {s.bus for s in capped.schedule.sessions}:
            sessions = capped.schedule.sessions_on_bus(bus)
            for earlier, later in zip(sessions, sessions[1:]):
                assert earlier.end <= later.start + 1e-9

    def test_sessions_stay_on_assigned_bus(self, s1_designed):
        problem, assignment = s1_designed
        capped = schedule_with_power_cap(problem, assignment, 130.0)
        for session in capped.schedule.sessions:
            index = problem.soc.index_of(session.core_name)
            assert session.bus == assignment.bus_of[index]


class TestCost:
    def test_loose_cap_is_free(self, s1_designed):
        problem, assignment = s1_designed
        capped = schedule_with_power_cap(
            problem, assignment, problem.soc.total_test_power
        )
        assert capped.slowdown == pytest.approx(0.0)
        assert capped.makespan == pytest.approx(assignment.makespan(problem.timing))

    def test_tight_cap_costs_time(self, s1_designed):
        problem, assignment = s1_designed
        # Just above the hungriest core: near-total serialization.
        cap = max(c.test_power for c in problem.soc) + 1.0
        capped = schedule_with_power_cap(problem, assignment, cap)
        assert capped.makespan > assignment.makespan(problem.timing)
        assert capped.slowdown > 0

    def test_never_faster_than_base(self, s1_designed):
        problem, assignment = s1_designed
        for cap in (100.0, 130.0, 180.0, 260.0):
            capped = schedule_with_power_cap(problem, assignment, cap)
            assert capped.makespan >= assignment.makespan(problem.timing) - 1e-9

    def test_cap_below_single_core_infeasible(self, s1_designed):
        problem, assignment = s1_designed
        with pytest.raises(InfeasibleError):
            schedule_with_power_cap(problem, assignment, 50.0)

    def test_nonpositive_cap_rejected(self, s1_designed):
        problem, assignment = s1_designed
        with pytest.raises(ValidationError):
            schedule_with_power_cap(problem, assignment, 0.0)

    def test_capped_beats_or_matches_full_serialization(self, s1_designed):
        problem, assignment = s1_designed
        cap = max(c.test_power for c in problem.soc) + 1.0
        capped = schedule_with_power_cap(problem, assignment, cap)
        total_serial = sum(
            problem.times[i][assignment.bus_of[i]] for i in range(len(problem.soc))
        )
        assert capped.makespan <= total_serial + 1e-9


class TestRandomized:
    @given(st.integers(0, 40))
    @settings(max_examples=12)
    def test_random_instances_comply(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        soc = generate_synthetic_soc(int(rng.integers(4, 8)), seed=seed)
        problem = DesignProblem(
            soc=soc, arch=TamArchitecture([16, 16, 8]), timing="serial"
        )
        assignment = design(problem).assignment
        hungriest = max(c.test_power for c in soc)
        cap = hungriest * float(rng.uniform(1.05, 2.5))
        capped = schedule_with_power_cap(problem, assignment, cap)
        profile = capped.schedule.power_profile()
        assert profile.respects(cap)
        assert capped.makespan >= assignment.makespan(problem.timing) - 1e-9
        # the uncapped schedule's peak can exceed cap; the capped one's cannot
        plain = build_schedule(problem, assignment)
        assert profile.peak <= plain.peak_power + 1e-9 or plain.peak_power <= cap
