"""Tests for the flow engine (project/callgraph/dataflow) and the D-rules.

The load-bearing tests here are the *seeded mutation* ones: they copy the
real ``src/repro`` tree, re-introduce a specific cache-soundness bug
(deleting the ``cache_token`` canonicalization; forwarding a solver knob
around the fingerprint), and assert rule D001 turns red — proving the rule
checks structure, not a hard-coded pass list. The complementary property
test asserts the real tree is D-clean with zero waivers.
"""

import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.code_lint import lint_paths
from repro.analysis.flow import (
    build_call_graph,
    function_origins,
    load_project,
    run_project_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def project_from(tmp_path, files):
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src))
    return load_project(sorted(tmp_path.rglob("*.py")))


def d_rules(report):
    return sorted(d.rule for d in report.diagnostics)


class TestProjectResolution:
    def test_aliased_from_import(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/impl.py": "def work():\n    return 1\n",
                "pkg/user.py": "from pkg.impl import work as w\n",
            },
        )
        user = project.module("pkg.user")
        resolved = project.resolve_name(user, "w")
        assert resolved.module.name == "pkg.impl"
        assert resolved.name == "work"

    def test_reexport_chain_through_package_init(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.sub import helper\n",
                "pkg/sub/__init__.py": "from pkg.sub.impl import helper\n",
                "pkg/sub/impl.py": "def helper():\n    return 2\n",
                "app.py": "from pkg import helper\n",
            },
        )
        app = project.module("app")
        resolved = project.resolve_name(app, "helper")
        assert resolved.module.name == "pkg.sub.impl"

    def test_relative_import_resolution(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/impl.py": "def work():\n    return 1\n",
                "pkg/user.py": "from .impl import work\n",
            },
        )
        resolved = project.resolve_name(project.module("pkg.user"), "work")
        assert resolved.module.name == "pkg.impl"

    def test_reexport_cycle_does_not_recurse_forever(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "a.py": "from b import thing\n",
                "b.py": "from a import thing\n",
            },
        )
        resolved = project.resolve_name(project.module("a"), "thing")
        assert resolved.is_external

    def test_real_runtime_reexport(self):
        project = load_project(sorted(SRC_REPRO.rglob("*.py")))
        runtime = project.module("repro.runtime")
        assert runtime is not None
        resolved = project.resolve_name(runtime, "run_parallel")
        assert resolved.module.name == "repro.runtime.parallel"


class TestCallGraph:
    FILES = {
        "pkg/__init__.py": "from pkg.work import job\n",
        "pkg/work.py": """\
            import functools

            def leaf():
                return 1

            def job():
                return leaf()

            def via_partial():
                return functools.partial(leaf, 1)
            """,
        "app.py": """\
            from pkg import job as aliased

            def main():
                return aliased()
            """,
    }

    def test_edges_through_alias_and_reexport(self, tmp_path):
        project = project_from(tmp_path, self.FILES)
        graph = build_call_graph(project)
        assert "pkg.work.leaf" in graph.reachable("app.main")

    def test_partial_target_is_an_edge(self, tmp_path):
        project = project_from(tmp_path, self.FILES)
        graph = build_call_graph(project)
        assert "pkg.work.leaf" in graph.callees("pkg.work.via_partial")

    def test_reaches_any(self, tmp_path):
        project = project_from(tmp_path, self.FILES)
        graph = build_call_graph(project)
        assert graph.reaches_any("app.main", {"pkg.work.leaf"})
        assert not graph.reaches_any("pkg.work.leaf", {"app.main"})


class TestDataflow:
    def origins_of(self, src):
        import ast

        tree = ast.parse(textwrap.dedent(src))
        return function_origins(tree.body[0])

    def test_kwargs_flow_through_dict_copy_and_update(self):
        info = self.origins_of(
            """\
            def solve(self, backend, policy=None, **options):
                effective = dict(options)
                effective.update(policy.backend_options(backend))
                key_options = dict(effective)
                return key_options
            """
        )
        assert info.var_keyword == "options"
        roots = info.of_name("key_options")
        assert "param:options" in roots and "param:policy" in roots

    def test_subscript_store_folds_into_container(self):
        info = self.origins_of(
            """\
            def f(knob):
                d = {}
                d["k"] = knob
                return d
            """
        )
        assert "param:knob" in info.of_name("d")

    def test_reassigned_parameter_keeps_param_root(self):
        info = self.origins_of(
            """\
            def f(policy, options):
                policy = shim(policy, options)
                return policy
            """
        )
        assert "param:policy" in info.of_name("policy")


class TestD001SeededMutations:
    """The acceptance-criteria tests: known cache bugs must turn D001 red."""

    @pytest.fixture()
    def mutable_tree(self, tmp_path):
        dst = tmp_path / "repro"
        shutil.copytree(SRC_REPRO, dst)
        return dst

    def run_rules(self, tree):
        return run_project_rules(load_project(sorted(tree.rglob("*.py"))))

    def test_pristine_tree_is_clean(self, mutable_tree):
        assert d_rules(self.run_rules(mutable_tree)) == []

    def test_deleting_cache_token_canonicalization_fires(self, mutable_tree):
        fingerprint = mutable_tree / "runtime" / "fingerprint.py"
        text = fingerprint.read_text()
        needle = 'getattr(value, "cache_token", None)'
        assert needle in text, "expected the protocol probe to delete"
        fingerprint.write_text(text.replace(needle, "None"))
        report = self.run_rules(mutable_tree)
        assert "D001" in d_rules(report)
        assert any("cache_token" in d.message for d in report.diagnostics)

    def test_unhashed_solver_knob_fires(self, mutable_tree):
        model = mutable_tree / "ilp" / "model.py"
        text = model.read_text()
        dispatch = "solution = self._solve_with_retries(solver, backend, effective, policy)"
        signature = "policy: SolvePolicy | None = None,"
        assert dispatch in text and signature in text
        text = text.replace(
            dispatch,
            "solution = self._solve_with_retries("
            "solver, backend, effective, policy, branching_hint)",
        )
        text = text.replace(
            signature, signature + "\n        branching_hint: str | None = None,", 1
        )
        model.write_text(text)
        report = self.run_rules(mutable_tree)
        offenders = [d for d in report.diagnostics if d.rule == "D001"]
        assert offenders, "new result-affecting kwarg skipped the fingerprint"
        assert any("branching_hint" in d.message for d in offenders)

    def test_deleting_solver_block_token_contribution_fires(self, mutable_tree):
        # PR-8 regression guard: SolvePolicy.cache_token must keep reading
        # the nested solver block; dropping it would alias cuts-on and
        # cuts-off solves to one cache entry.
        policy = mutable_tree / "obs" / "policy.py"
        text = policy.read_text()
        needle = 'solver = "-" if self.solver is None else self.solver.cache_token()'
        assert needle in text, "expected the solver-block token read to delete"
        policy.write_text(text.replace(needle, 'solver = "-"'))
        report = self.run_rules(mutable_tree)
        offenders = [d for d in report.diagnostics if d.rule == "D001"]
        assert offenders, "solver block dropped from the policy token undetected"
        assert any("solver" in d.message for d in offenders)

    def test_deleting_cut_policy_token_contribution_fires(self, mutable_tree):
        # Same guard one level down: SolverOptions.cache_token must keep
        # reading the CutPolicy field it forwards to the backend.
        policy = mutable_tree / "obs" / "policy.py"
        text = policy.read_text()
        needle = 'cuts = "-" if self.cuts is None else self.cuts.cache_token()'
        assert needle in text, "expected the cuts token read to delete"
        policy.write_text(text.replace(needle, 'cuts = "-"'))
        report = self.run_rules(mutable_tree)
        offenders = [d for d in report.diagnostics if d.rule == "D001"]
        assert offenders, "cut policy dropped from the solver token undetected"
        assert any("cuts" in d.message for d in offenders)

    def test_deleting_root_presolve_token_contribution_fires(self, mutable_tree):
        # PR-9 regression guard: SolverOptions.cache_token must keep reading
        # the PresolvePolicy field; dropping it would alias presolve-on and
        # presolve-off solves (different vertices, stats) to one cache entry.
        policy = mutable_tree / "obs" / "policy.py"
        text = policy.read_text()
        needle = (
            '"-" if self.root_presolve is None else self.root_presolve.cache_token()'
        )
        assert needle in text, "expected the root_presolve token read to delete"
        policy.write_text(text.replace(needle, '"-"'))
        report = self.run_rules(mutable_tree)
        offenders = [d for d in report.diagnostics if d.rule == "D001"]
        assert offenders, "presolve policy dropped from the solver token undetected"
        assert any("root_presolve" in d.message for d in offenders)

    def test_deleting_warm_start_token_contribution_fires(self, mutable_tree):
        # Same guard for the node-LP warm-start toggle: warm and cold solves
        # may return different optimal vertices and always differ in stats.
        policy = mutable_tree / "obs" / "policy.py"
        text = policy.read_text()
        needle = "warm_start={self.warm_start!r},"
        assert needle in text, "expected the warm_start token read to delete"
        policy.write_text(text.replace(needle, ""))
        report = self.run_rules(mutable_tree)
        offenders = [d for d in report.diagnostics if d.rule == "D001"]
        assert offenders, "warm_start dropped from the solver token undetected"
        assert any("warm_start" in d.message for d in offenders)

    def test_policy_field_outside_token_and_options_fires(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pol.py": """\
                    class Policy:
                        def backend_options(self, backend):
                            options = {}
                            options["time_limit"] = self.deadline
                            if self.lp_method == "dual":
                                pass
                            return options

                        def cache_token(self):
                            return (self.deadline,)
                    """
            },
        )
        report = run_project_rules(project)
        assert d_rules(report) == ["D001"]
        assert "lp_method" in report.diagnostics[0].message

    def test_request_field_outside_token_and_options_fires(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "req.py": """\
                    class Request:
                        def request_options(self):
                            options = {}
                            options["backend"] = self.backend
                            if self.shortcut:
                                pass
                            return options

                        def cache_token(self):
                            return (self.backend,)
                    """
            },
        )
        report = run_project_rules(project)
        assert d_rules(report) == ["D001"]
        assert "shortcut" in report.diagnostics[0].message
        assert "request_options" in report.diagnostics[0].message


class TestD002PoolPurity:
    RUNTIME = """\
        def run_parallel(fn, items, max_workers=1):
            return [fn(item) for item in items]
        """

    def check(self, tmp_path, caller_src):
        project = project_from(
            tmp_path, {"rt.py": self.RUNTIME, "caller.py": caller_src}
        )
        return run_project_rules(project)

    def test_top_level_worker_is_clean(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from rt import run_parallel

            def worker(item):
                return item * 2

            def sweep(items):
                return run_parallel(worker, items)
            """,
        )
        assert d_rules(report) == []

    def test_lambda_is_flagged(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from rt import run_parallel

            def sweep(items):
                return run_parallel(lambda item: item * 2, items)
            """,
        )
        assert d_rules(report) == ["D002"]

    def test_nested_def_is_flagged(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from rt import run_parallel

            def sweep(items):
                def worker(item):
                    return item * 2
                return run_parallel(worker, items)
            """,
        )
        assert d_rules(report) == ["D002"]

    def test_global_writing_worker_is_flagged(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from rt import run_parallel

            TOTALS = {}

            def worker(item):
                TOTALS[item] = item * 2
                return item

            def sweep(items):
                return run_parallel(worker, items)
            """,
        )
        assert d_rules(report) == ["D002"]
        assert "TOTALS" in report.diagnostics[0].message

    def test_global_statement_is_flagged(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from rt import run_parallel

            COUNT = 0

            def worker(item):
                global COUNT
                COUNT += 1
                return item

            def sweep(items):
                return run_parallel(worker, items)
            """,
        )
        assert "D002" in d_rules(report)

    def test_mutator_call_on_module_container_is_flagged(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from rt import run_parallel

            RESULTS = []

            def worker(item):
                RESULTS.append(item)
                return item

            def sweep(items):
                return run_parallel(worker, items)
            """,
        )
        assert d_rules(report) == ["D002"]

    def test_partial_over_top_level_worker_is_clean(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from functools import partial

            from rt import run_parallel

            def worker(scale, item):
                return item * scale

            def sweep(items):
                return run_parallel(partial(worker, 2), items)
            """,
        )
        assert d_rules(report) == []

    def test_real_tree_call_sites_are_clean(self):
        report = run_project_rules(load_project(sorted(SRC_REPRO.rglob("*.py"))))
        assert [d for d in report.diagnostics if d.rule == "D002"] == []


class TestD003Determinism:
    SINKY = """\
        class Solution:
            def __init__(self, values):
                self.values = values
        """

    def check(self, tmp_path, caller_src):
        project = project_from(
            tmp_path, {"sol.py": self.SINKY, "caller.py": caller_src}
        )
        return run_project_rules(project)

    def test_set_iteration_on_result_path_is_flagged(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from sol import Solution

            def build(names):
                chosen = set(names)
                return Solution([n for n in chosen])
            """,
        )
        assert d_rules(report) == ["D003"]

    def test_sorted_set_is_clean(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from sol import Solution

            def build(names):
                chosen = set(names)
                return Solution([n for n in sorted(chosen)])
            """,
        )
        assert d_rules(report) == []

    def test_set_iteration_off_result_path_is_clean(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            def log_membership(names):
                chosen = set(names)
                return [n for n in chosen]
            """,
        )
        assert d_rules(report) == []

    def test_module_level_set_constant_is_tracked(self, tmp_path):
        report = self.check(
            tmp_path,
            """\
            from sol import Solution

            KNOWN = {"a", "b"}

            def build():
                return Solution(list(KNOWN))
            """,
        )
        assert d_rules(report) == ["D003"]

    def test_unseeded_rng_on_result_path_is_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "sol.py": self.SINKY,
                "rng.py": "def make_rng(seed=None):\n    return seed\n",
                "caller.py": """\
                    from rng import make_rng
                    from sol import Solution

                    def build():
                        rng = make_rng()
                        return Solution([rng])
                    """,
            },
        )
        report = run_project_rules(project)
        assert d_rules(report) == ["D003"]

    def test_seeded_rng_is_clean(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "sol.py": self.SINKY,
                "rng.py": "def make_rng(seed=None):\n    return seed\n",
                "caller.py": """\
                    from rng import make_rng
                    from sol import Solution

                    def build():
                        rng = make_rng(1234)
                        return Solution([rng])
                    """,
            },
        )
        assert d_rules(run_project_rules(project)) == []


class TestD004FacadeIntegrity:
    def test_unresolvable_facade_import_is_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mylib/__init__.py": "",
                "mylib/core.py": "def real():\n    return 1\n",
                "mylib/api.py": """\
                    from mylib.core import real, vanished

                    __all__ = ["real", "vanished"]
                    """,
            },
        )
        report = run_project_rules(project)
        assert d_rules(report) == ["D004"]
        assert "vanished" in report.diagnostics[0].message

    def test_ghost_dunder_all_entry_is_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mylib/__init__.py": "",
                "mylib/core.py": "def real():\n    return 1\n",
                "mylib/api.py": """\
                    from mylib.core import real

                    __all__ = ["real", "ghost"]
                    """,
            },
        )
        report = run_project_rules(project)
        assert d_rules(report) == ["D004"]
        assert "ghost" in report.diagnostics[0].message

    def test_consumer_deep_import_of_blessed_symbol_is_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mylib/__init__.py": "",
                "mylib/core.py": "def real():\n    return 1\n",
                "mylib/api.py": 'from mylib.core import real\n\n__all__ = ["real"]\n',
                "bench.py": "from mylib.core import real\n",
            },
        )
        report = run_project_rules(project)
        assert d_rules(report) == ["D004"]
        assert "bench.py" in report.diagnostics[0].location

    def test_consumer_facade_import_is_clean(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mylib/__init__.py": "",
                "mylib/core.py": "def real():\n    return 1\n",
                "mylib/api.py": 'from mylib.core import real\n\n__all__ = ["real"]\n',
                "bench.py": "from mylib.api import real\n",
            },
        )
        assert d_rules(run_project_rules(project)) == []

    def test_package_internals_may_deep_import(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mylib/__init__.py": "",
                "mylib/core.py": "def real():\n    return 1\n",
                "mylib/api.py": 'from mylib.core import real\n\n__all__ = ["real"]\n',
                "mylib/cli.py": "from mylib.core import real\n",
            },
        )
        assert d_rules(run_project_rules(project)) == []

    def test_unblessed_symbols_may_be_deep_imported(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mylib/__init__.py": "",
                "mylib/core.py": "def real():\n    return 1\n\ndef internal():\n    return 2\n",
                "mylib/api.py": 'from mylib.core import real\n\n__all__ = ["real"]\n',
                "bench.py": "from mylib.core import internal\n",
            },
        )
        assert d_rules(run_project_rules(project)) == []


class TestInlineWaiversForFlowRules:
    def test_inline_waiver_moves_finding_to_waived(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "rt.py": TestD002PoolPurity.RUNTIME,
                "caller.py": """\
                    from rt import run_parallel

                    def sweep(items):
                        return run_parallel(lambda item: item, items)  # lint: ignore[D002]
                    """,
            },
        )
        report = run_project_rules(project)
        assert report.diagnostics == []
        assert [d.rule for d in report.waived] == ["D002"]


class TestRealTreeFlowProperties:
    """Post-fix property: the whole repo is D-clean with zero D waivers."""

    def full_report(self):
        return lint_paths(
            [SRC_REPRO, REPO_ROOT / "examples", REPO_ROOT / "benchmarks"]
        )

    def test_no_flow_findings_anywhere(self):
        report = self.full_report()
        offenders = [d.render() for d in report.diagnostics if d.rule.startswith("D")]
        assert not offenders, "\n".join(offenders)

    def test_no_flow_waivers_in_use(self):
        report = self.full_report()
        waived = [d.render() for d in report.waived if d.rule.startswith("D")]
        assert not waived, "\n".join(waived)

    def test_per_file_rules_also_clean(self):
        report = self.full_report()
        offenders = [d.render() for d in report.diagnostics]
        assert not offenders, "\n".join(offenders)
