"""Tests for the Core and Soc data records."""

import pytest

from repro.soc import Core, Soc
from repro.util.errors import ValidationError


def make_core(**overrides):
    fields = dict(
        name="demo",
        num_inputs=10,
        num_outputs=8,
        num_flipflops=100,
        num_gates=2000,
        num_patterns=50,
        test_width=8,
        test_power=60.0,
    )
    fields.update(overrides)
    return Core(**fields)


class TestCoreValidation:
    def test_valid_core(self):
        core = make_core()
        assert core.is_sequential
        assert core.scan_in_bits == 110
        assert core.scan_out_bits == 108

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            make_core(name="")

    @pytest.mark.parametrize("field", ["num_inputs", "num_outputs", "num_flipflops", "num_gates"])
    def test_negative_counts_rejected(self, field):
        with pytest.raises(ValidationError):
            make_core(**{field: -1})

    def test_zero_patterns_rejected(self):
        with pytest.raises(ValidationError):
            make_core(num_patterns=0)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValidationError):
            make_core(test_width=0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValidationError):
            make_core(test_power=-1.0)

    def test_activity_range(self):
        with pytest.raises(ValidationError):
            make_core(activity=0.0)
        with pytest.raises(ValidationError):
            make_core(activity=1.5)

    def test_non_int_count_rejected(self):
        with pytest.raises(ValidationError):
            make_core(num_gates=2.5)


class TestCoreDerived:
    def test_combinational(self):
        core = make_core(num_flipflops=0)
        assert not core.is_sequential
        assert core.scan_in_bits == core.num_inputs

    def test_scan_length_balanced(self):
        core = make_core(num_flipflops=100, num_inputs=0, num_outputs=0)
        assert core.scan_length(4) == 25
        assert core.scan_length(3) == 34

    def test_scan_length_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            make_core().scan_length(0)

    def test_area_grows_with_gates(self):
        assert make_core(num_gates=4000).area_mm2 > make_core(num_gates=1000).area_mm2

    def test_with_patterns_copy(self):
        core = make_core()
        bigger = core.with_patterns(99)
        assert bigger.num_patterns == 99 and core.num_patterns == 50

    def test_renamed_copy(self):
        assert make_core().renamed("other").name == "other"

    def test_str_mentions_kind(self):
        assert "seq" in str(make_core())
        assert "comb" in str(make_core(num_flipflops=0))


class TestSoc:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Soc("bad", [make_core(), make_core()])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Soc("bad", [])

    def test_bad_die_rejected(self):
        with pytest.raises(ValidationError):
            Soc("bad", [make_core()], die_width=0)

    def test_bad_power_budget_rejected(self):
        with pytest.raises(ValidationError):
            Soc("bad", [make_core()], power_budget=-5)

    def test_indexing_by_name_and_position(self):
        soc = Soc("S", [make_core(name="a"), make_core(name="b")])
        assert soc["b"].name == "b"
        assert soc[0].name == "a"
        assert soc.index_of("b") == 1
        with pytest.raises(KeyError):
            soc.index_of("zz")

    def test_aggregates(self):
        soc = Soc("S", [make_core(name="a"), make_core(name="b", num_gates=3000)])
        assert soc.total_gates == 5000
        assert soc.total_flipflops == 200
        assert soc.total_test_power == pytest.approx(120.0)
        assert soc.max_test_width == 8
        assert len(soc) == 2

    def test_describe_lists_cores(self):
        soc = Soc("S", [make_core(name="a")])
        assert "a" in soc.describe()
        assert "Soc" in repr(soc)

    def test_iteration_order_stable(self):
        soc = Soc("S", [make_core(name=f"c{i}") for i in range(4)])
        assert [c.name for c in soc] == ["c0", "c1", "c2", "c3"]
