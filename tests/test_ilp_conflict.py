"""Conflict graph, clique separation, and branch-and-cut exactness.

Units build graphs by hand (adjacency dicts and tiny models with known
pairwise-exclusion rows) and pin the greedy clique enumeration; the
property tests brute-force every integer point of small random models to
show that no generated cut ever removes an integer-feasible solution, and
the design-level tests assert cuts-on / cuts-off / scipy all agree on the
layout- and power-constrained formulations the cuts actually target.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CutPolicy, SolvePolicy, SolverOptions, design
from repro.core import DesignProblem
from repro.ilp import INTEGER, Model, quicksum
from repro.ilp.conflict import ConflictGraph
from repro.ilp.cuts import generate_cuts
from repro.obs.policy import DEFAULT_CUT_POLICY


def packing_model(num_items: int = 4, num_slots: int = 2) -> Model:
    """Items x slots assignment with per-slot pairwise exclusions."""
    m = Model("packing")
    x = {
        (i, s): m.add_binary(f"x_{i}_{s}")
        for i in range(num_items)
        for s in range(num_slots)
    }
    for i in range(num_items):
        m.add_constr(quicksum(x[i, s] for s in range(num_slots)) <= 1)
    # slot 0 admits at most one of items {0, 1, 2} — pairwise exclusions
    for i, j in itertools.combinations(range(3), 2):
        m.add_constr(x[i, 0] + x[j, 0] <= 1)
    m.maximize(quicksum((i + 1) * v for (i, _), v in x.items()))
    return m


class TestConflictGraphConstruction:
    def test_pairwise_rows_become_edges(self):
        m = Model("pair")
        a, b, c = (m.add_binary(n) for n in "abc")
        m.add_constr(a + b <= 1)
        m.add_constr(b + c <= 1)
        m.maximize(a + b + c)
        graph = ConflictGraph.from_matrix_form(m.to_matrix_form())
        assert graph.num_edges == 2
        assert graph.are_adjacent(0, 1) and graph.are_adjacent(1, 2)
        assert not graph.are_adjacent(0, 2)

    def test_knapsack_row_yields_heavy_pair_conflicts(self):
        m = Model("ks")
        a, b, c = (m.add_binary(n) for n in "abc")
        m.add_constr(6 * a + 5 * b + 2 * c <= 8)  # a+b conflict; c fits with either
        m.maximize(a + b + c)
        graph = ConflictGraph.from_matrix_form(m.to_matrix_form())
        assert graph.are_adjacent(0, 1)
        assert graph.num_edges == 1

    def test_non_binary_and_negative_rows_skipped(self):
        m = Model("mixed")
        a = m.add_var("a", ub=3, vartype=INTEGER)
        b, c = m.add_binary("b"), m.add_binary("c")
        m.add_constr(a + b <= 1)  # integer (non-binary) support
        m.add_constr(2 * b - c <= 0)  # negative coefficient
        m.maximize(a + b + c)
        graph = ConflictGraph.from_matrix_form(m.to_matrix_form())
        assert graph.num_edges == 0

    def test_equality_rows_participate(self):
        m = Model("eq")
        a, b, c = (m.add_binary(n) for n in "abc")
        m.add_constr(2 * a + 2 * b + c == 2)  # a and b cannot both be 1
        m.maximize(a + b + c)
        graph = ConflictGraph.from_matrix_form(m.to_matrix_form())
        assert graph.are_adjacent(0, 1)


class TestMaximalCliques:
    def triangle_plus_pendant(self) -> ConflictGraph:
        # 0-1-2 triangle, 3 attached to 2 only.
        return ConflictGraph(
            4, {0: {1, 2}, 1: {0, 2}, 2: {0, 1, 3}, 3: {2}}
        )

    def test_enumeration_finds_both_maximal_cliques(self):
        assert self.triangle_plus_pendant().maximal_cliques() == [(0, 1, 2), (2, 3)]

    def test_max_cliques_cap(self):
        assert len(self.triangle_plus_pendant().maximal_cliques(max_cliques=1)) == 1

    def test_every_reported_clique_is_maximal(self):
        graph = self.triangle_plus_pendant()
        for clique in graph.maximal_cliques():
            members = set(clique)
            for p, q in itertools.combinations(clique, 2):
                assert graph.are_adjacent(p, q)
            outside = set(graph.adjacency) - members
            for u in outside:
                assert not all(graph.are_adjacent(u, w) for w in members)

    def test_separation_on_fractional_point(self):
        graph = self.triangle_plus_pendant()
        x = np.array([0.5, 0.5, 0.5, 0.0])
        [(cols, violation)] = graph.separate(x)
        assert cols == (0, 1, 2)
        assert violation == pytest.approx(0.5)

    def test_no_separation_at_integral_point(self):
        graph = self.triangle_plus_pendant()
        assert graph.separate(np.array([1.0, 0.0, 0.0, 1.0])) == []


def _integer_feasible_points(m: Model):
    form = m.to_matrix_form()
    n = form.num_vars
    for bits in range(2**n):
        x = np.array([(bits >> i) & 1 for i in range(n)], dtype=float)
        ok = True
        if form.a_ub is not None and form.a_ub.size:
            ok = ok and bool(np.all(form.a_ub @ x <= form.b_ub + 1e-9))
        if form.a_eq is not None and form.a_eq.size:
            ok = ok and bool(np.all(np.abs(form.a_eq @ x - form.b_eq) <= 1e-9))
        if ok:
            yield x


class TestCutsNeverCutFeasiblePoints:
    @given(st.integers(0, 150))
    @settings(max_examples=25, deadline=None)
    def test_random_binary_models(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 8))
        m = Model("rand")
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        weights = rng.integers(2, 9, size=n)
        cap = int(weights.sum() * float(rng.uniform(0.3, 0.7)))
        m.add_constr(quicksum(int(w) * x for w, x in zip(weights, xs)) <= max(cap, 2))
        for _ in range(int(rng.integers(1, 4))):  # a few exclusion pairs
            i, j = rng.choice(n, size=2, replace=False)
            m.add_constr(xs[int(i)] + xs[int(j)] <= 1)
        m.maximize(quicksum(int(p) * x for p, x in zip(rng.integers(1, 20, n), xs)))

        form = m.to_matrix_form()
        graph = ConflictGraph.from_matrix_form(form)
        x_frac = rng.uniform(0.0, 1.0, size=form.num_vars)
        cuts = generate_cuts(form, x_frac, DEFAULT_CUT_POLICY, graph=graph)
        feasible = list(_integer_feasible_points(m))
        assert feasible, "capacity floor keeps at least the origin feasible"
        for cut in cuts:
            for point in feasible:
                assert cut.activity(point) <= cut.rhs + 1e-9, (
                    f"{cut.kind} cut removed integer-feasible point {point}"
                )

    def test_packing_model_cliques_are_valid(self):
        m = packing_model()
        graph = ConflictGraph.from_matrix_form(m.to_matrix_form())
        cliques = graph.maximal_cliques()
        assert any(len(c) >= 3 for c in cliques)  # the slot-0 triangle merges
        for point in _integer_feasible_points(m):
            for clique in cliques:
                assert sum(point[j] for j in clique) <= 1 + 1e-9


def _design_makespan(problem, cuts=None, backend="bnb"):
    policy = None if cuts is None else SolvePolicy(solver=SolverOptions(cuts=cuts))
    return design(problem, backend=backend, policy=policy).makespan


class TestDesignExactnessWithCuts:
    """Cuts-on, cuts-off, and the scipy oracle agree on constrained designs."""

    def test_layout_constrained_design(self, s1, arch3, s1_floorplan):
        problem = DesignProblem(
            soc=s1,
            arch=arch3,
            timing="serial",
            floorplan=s1_floorplan,
            max_pair_distance=4.0,
        )
        on = _design_makespan(problem, cuts=CutPolicy())
        off = _design_makespan(problem, cuts=CutPolicy.disabled())
        oracle = _design_makespan(problem, backend="scipy")
        assert on == pytest.approx(off)
        assert on == pytest.approx(oracle)

    def test_infeasible_layout_budget_detected_with_cuts(self, s1, arch2, s1_floorplan):
        # Cut-strengthened root LPs can go empty on integer-infeasible
        # instances; that must surface as InfeasibleError, not a solver bug.
        from repro.util.errors import InfeasibleError

        problem = DesignProblem(
            soc=s1,
            arch=arch2,
            timing="serial",
            floorplan=s1_floorplan,
            max_pair_distance=3.0,
        )
        for cuts in (CutPolicy(), CutPolicy.disabled()):
            with pytest.raises(InfeasibleError):
                _design_makespan(problem, cuts=cuts)

    def test_power_constrained_design(self, s1, arch3):
        budget = max(core.test_power for core in s1.cores) * 1.5
        problem = DesignProblem(
            soc=s1, arch=arch3, timing="serial", power_budget=budget
        )
        on = _design_makespan(problem, cuts=CutPolicy())
        off = _design_makespan(problem, cuts=CutPolicy.disabled())
        oracle = _design_makespan(problem, backend="scipy")
        assert on == pytest.approx(off)
        assert on == pytest.approx(oracle)

    def test_unconstrained_design_unaffected(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        on = design(
            problem, policy=SolvePolicy(solver=SolverOptions(cuts=CutPolicy()))
        )
        off = design(
            problem,
            policy=SolvePolicy(solver=SolverOptions(cuts=CutPolicy.disabled())),
        )
        assert on.makespan == pytest.approx(off.makespan)
        # no conflict structure: the no-candidates guard keeps cuts at zero
        assert on.stats.cuts == 0
