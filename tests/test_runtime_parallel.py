"""Parallel runtime: ordering, serial fallback, and experiment equivalence."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.runtime import run_parallel
from repro.runtime.parallel import resolve_workers

# Module-level so ProcessPoolExecutor can pickle it.
def _square(x):
    return x * x


def _tables_of(result):
    return [table.render() for table in result.tables]


class TestRunParallel:
    def test_serial_path_preserves_order(self):
        assert run_parallel(_square, range(8), max_workers=1) == [x * x for x in range(8)]

    def test_parallel_matches_serial(self):
        items = list(range(12))
        serial = run_parallel(_square, items, max_workers=1)
        parallel = run_parallel(_square, items, max_workers=4)
        assert parallel == serial

    def test_empty_and_single_item(self):
        assert run_parallel(_square, [], max_workers=4) == []
        assert run_parallel(_square, [3], max_workers=4) == [9]

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        assert resolve_workers(-2) >= 1


class TestParallelExperimentEquivalence:
    """ISSUE acceptance: parallel runs render byte-identical tables."""

    def test_t2_parallel_matches_serial(self, s1):
        grid = dict(socs=(s1,), budgets=((24, 2), (24, 3)))
        serial = run_experiment("T2", config=ExperimentConfig(jobs=1), **grid)
        parallel = run_experiment("T2", config=ExperimentConfig(jobs=4), **grid)
        assert _tables_of(parallel) == _tables_of(serial)
        assert parallel.telemetry.solves == serial.telemetry.solves
        assert parallel.telemetry.nodes == serial.telemetry.nodes

    def test_f1_parallel_matches_serial(self, s1, tmp_path):
        grid = dict(soc=s1, bus_counts=(2,), total_widths=[8, 16, 24])
        serial = run_experiment("F1", config=ExperimentConfig(jobs=1), **grid)
        parallel = run_experiment(
            "F1",
            config=ExperimentConfig(jobs=4, cache_dir=str(tmp_path / "f1")),
            **grid,
        )
        assert _tables_of(parallel) == _tables_of(serial)


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        from repro.runtime import parallel as par

        par.shutdown_pool()
        run_parallel(_square, range(6), max_workers=2)
        first = par._pool
        assert first is not None
        run_parallel(_square, range(6), max_workers=2)
        assert par._pool is first  # same configuration: no respawn
        run_parallel(_square, range(6), max_workers=3)
        assert par._pool is not first  # new worker count retires the old pool
        par.shutdown_pool()
        assert par._pool is None

    def test_shutdown_pool_is_idempotent(self):
        from repro.runtime.parallel import shutdown_pool

        shutdown_pool()
        shutdown_pool()

    def test_chunked_results_keep_order(self):
        # More items than workers*4 exercises chunksize > 1.
        items = list(range(57))
        assert run_parallel(_square, items, max_workers=2) == [x * x for x in items]

    def test_chunksize_heuristic(self):
        from repro.runtime.parallel import _chunksize

        assert _chunksize(4, 4) == 1
        assert _chunksize(57, 2) == 8  # ceil(57 / 8)
        assert _chunksize(1000, 8) == 32
