"""Tests for the root presolve engine and its postsolve mapping.

The load-bearing property is *exactness in the original space*: every
reduction must preserve the set of optimal solutions of the integer
program, and ``Postsolve.restore`` must map any reduced-space point to an
original-space point with the same objective. The randomized classes pin
``presolve_root`` against brute-force enumeration on small pure-integer
programs and against the scipy/HiGHS oracle on layout- and
power-constrained TAM designs.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import INTEGER, Model, Status, quicksum
from repro.ilp.presolve_root import Postsolve, presolve_root
from repro.obs import PresolvePolicy, SolvePolicy, SolverOptions

_TOL = 1e-6


def _enumerate_integer_points(form):
    """All integer points of a (small!) pure-integer MatrixForm."""
    ranges = [
        range(int(np.ceil(form.lb[j] - _TOL)), int(np.floor(form.ub[j] + _TOL)) + 1)
        for j in range(form.num_vars)
    ]
    for point in itertools.product(*ranges):
        yield np.asarray(point, dtype=float)


def _feasible(form, x):
    # Row-count guards, not .size: a fully-reduced model can keep an
    # all-zero row over zero columns whose rhs still decides feasibility.
    if form.a_ub.shape[0] and np.any(form.a_ub @ x > form.b_ub + _TOL):
        return False
    if form.a_eq.shape[0] and np.any(np.abs(form.a_eq @ x - form.b_eq) > _TOL):
        return False
    return True


def _brute_force(form):
    """(best objective, best point) by enumeration; (None, None) if infeasible."""
    best, best_x = None, None
    for x in _enumerate_integer_points(form):
        if not _feasible(form, x):
            continue
        obj = float(form.c @ x) + form.c0
        if best is None or obj < best - 1e-12:
            best, best_x = obj, x
    return best, best_x


class TestPostsolveUnits:
    def test_identity(self):
        ps = Postsolve(num_vars=3, kept=np.arange(3))
        assert ps.identity
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(ps.restore(x), x)
        np.testing.assert_allclose(ps.reduce(x), x)

    def test_fix_record_restores_constant(self):
        ps = Postsolve(
            num_vars=3, kept=np.array([0, 2]), records=[("fix", 1, 5.0)]
        )
        assert not ps.identity
        restored = ps.restore(np.array([1.0, 2.0]))
        np.testing.assert_allclose(restored, [1.0, 5.0, 2.0])

    def test_subst_record_recomputes_from_row(self):
        # x1 = (7 - 2*x0) / 1 in an equality row 2*x0 + x1 == 7.
        ps = Postsolve(
            num_vars=2,
            kept=np.array([0]),
            records=[("subst", 1, np.array([0]), np.array([2.0]), 7.0, 1.0)],
        )
        restored = ps.restore(np.array([3.0]))
        np.testing.assert_allclose(restored, [3.0, 1.0])

    def test_unfilled_column_raises(self):
        ps = Postsolve(num_vars=2, kept=np.array([0]), records=[])
        with pytest.raises(RuntimeError, match="postsolve"):
            ps.restore(np.array([1.0]))


class TestReductionsOnHandBuiltModels:
    def test_dual_fixing_removes_free_profit_column(self):
        # Maximizing a column with no constraints fixes it at its ub.
        m = Model()
        x = m.add_var("x", ub=4, vartype=INTEGER)
        m.maximize(x)
        result = presolve_root(m.to_matrix_form(), PresolvePolicy())
        assert result.status == "reduced"
        assert result.form.num_vars == 0
        assert result.stats["cols_removed"] == 1
        restored = result.postsolve.restore(np.zeros(0))
        np.testing.assert_allclose(restored, [4.0])

    def test_bound_tightening_to_fixed_point_keeps_infeasibility(self):
        # 3x + 3y == 4 over integer [0,2]^2: propagation forces x = y = 1
        # (1/3 <= x <= 4/3 rounds to [1,1]), which violates the row. Once
        # both columns are fixed the row is empty over zero columns — the
        # residual 0 == -2 must still be declared infeasible, not dropped.
        m = Model()
        x = m.add_var("x", ub=2, vartype=INTEGER)
        y = m.add_var("y", ub=2, vartype=INTEGER)
        m.add_constr(3 * x + 3 * y == 4)
        result = presolve_root(m.to_matrix_form(), PresolvePolicy())
        assert result.status == "infeasible"

    def test_infeasible_row_detected(self):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(a + b >= 3)
        m.minimize(a + b)
        result = presolve_root(m.to_matrix_form(), PresolvePolicy())
        assert result.status == "infeasible"

    def test_disabled_policy_is_identity(self):
        m = Model()
        x = m.add_var("x", ub=4, vartype=INTEGER)
        m.maximize(x)
        form = m.to_matrix_form()
        result = presolve_root(form, PresolvePolicy.disabled())
        assert result.form is form
        assert result.postsolve.identity
        assert result.stats["rounds"] == 0

    def test_coefficient_tightening_keeps_integer_optimum(self):
        # 3a + 3b <= 5 tightens to a + b <= 1 over binaries; optima agree.
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(3 * a + 3 * b <= 5)
        m.maximize(2 * a + b)
        form = m.to_matrix_form()
        result = presolve_root(form, PresolvePolicy())
        assert result.stats["coeffs_tightened"] >= 1
        best, _ = _brute_force(form)
        best_reduced, x_reduced = _brute_force(result.form)
        assert best_reduced == pytest.approx(best)
        restored = result.postsolve.restore(x_reduced)
        assert _feasible(form, restored)


@st.composite
def random_integer_program(draw):
    """Small bounded pure-integer programs exercising every reduction."""
    n = draw(st.integers(2, 5))
    coef = st.integers(-4, 6)
    c = [draw(st.integers(-5, 5)) for _ in range(n)]
    ub_rows = draw(st.integers(0, 3))
    a_ub = [[draw(coef) for _ in range(n)] for _ in range(ub_rows)]
    b_ub = [draw(st.integers(-2, 12)) for _ in range(ub_rows)]
    eq_rows = draw(st.integers(0, 1))
    a_eq = [[draw(st.integers(0, 3)) for _ in range(n)] for _ in range(eq_rows)]
    b_eq = [draw(st.integers(0, 6)) for _ in range(eq_rows)]
    ubs = [draw(st.integers(1, 2)) for _ in range(n)]
    return c, a_ub, b_ub, a_eq, b_eq, ubs


def _build(instance):
    c, a_ub, b_ub, a_eq, b_eq, ubs = instance
    m = Model("rand")
    xs = [m.add_var(f"x{j}", ub=ubs[j], vartype=INTEGER) for j in range(len(c))]
    for row, rhs in zip(a_ub, b_ub):
        m.add_constr(quicksum(a * x for a, x in zip(row, xs)) <= rhs)
    for row, rhs in zip(a_eq, b_eq):
        m.add_constr(quicksum(a * x for a, x in zip(row, xs)) == rhs)
    m.minimize(quicksum(p * x for p, x in zip(c, xs)))
    return m


class TestExactnessAgainstBruteForce:
    @given(random_integer_program())
    @settings(max_examples=60, deadline=None)
    def test_presolve_preserves_optimum_and_postsolve_restores(self, instance):
        form = _build(instance).to_matrix_form()
        result = presolve_root(form, PresolvePolicy())
        best, _ = _brute_force(form)
        if result.status == "infeasible":
            assert best is None, "presolve declared a feasible model infeasible"
            return
        best_reduced, x_reduced = _brute_force(result.form)
        if best is None:
            assert best_reduced is None
            return
        assert best_reduced is not None, "presolve lost all feasible points"
        assert best_reduced == pytest.approx(best, abs=1e-6)
        restored = result.postsolve.restore(x_reduced)
        assert _feasible(form, restored)
        assert float(form.c @ restored) + form.c0 == pytest.approx(best, abs=1e-6)

    @given(random_integer_program(), st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_single_reduction_policies_are_each_exact(self, instance, which):
        gates = ["bound_tighten", "dual_fix", "singleton_cols", "coeff_tighten",
                 "row_cleanup"]
        overrides = {gate: gate == gates[which] for gate in gates}
        form = _build(instance).to_matrix_form()
        result = presolve_root(form, PresolvePolicy(**overrides))
        best, _ = _brute_force(form)
        if result.status == "infeasible":
            assert best is None
            return
        best_reduced, x_reduced = _brute_force(result.form)
        if best is None:
            assert best_reduced is None
            return
        assert best_reduced == pytest.approx(best, abs=1e-6)
        assert _feasible(form, result.postsolve.restore(x_reduced))


class TestEndToEndOnDesigns:
    """Presolved solves agree with no-presolve solves and the scipy oracle
    on layout- and power-constrained TAM designs (the paper's instances)."""

    def _makespans(self, problem):
        from repro.core import design

        presolved = design(problem, cache=False)
        plain = design(
            problem,
            policy=SolvePolicy(
                solver=SolverOptions(
                    root_presolve=PresolvePolicy.disabled(), warm_start=False
                )
            ),
            cache=False,
        )
        oracle = design(problem, backend="scipy", cache=False)
        return presolved, plain, oracle

    def test_power_constrained_design(self, s1, arch3):
        from repro.core import DesignProblem

        problem = DesignProblem(
            soc=s1, arch=arch3, timing="serial", power_budget=3500.0
        )
        presolved, plain, oracle = self._makespans(problem)
        assert presolved.makespan == pytest.approx(plain.makespan)
        assert presolved.makespan == pytest.approx(oracle.makespan)
        assert not problem.validate(presolved.assignment)

    def test_layout_constrained_design(self, s1, arch3, s1_floorplan):
        from repro.core import DesignProblem

        problem = DesignProblem(
            soc=s1,
            arch=arch3,
            timing="serial",
            floorplan=s1_floorplan,
            max_pair_distance=28.0,
        )
        presolved, plain, oracle = self._makespans(problem)
        assert presolved.makespan == pytest.approx(plain.makespan)
        assert presolved.makespan == pytest.approx(oracle.makespan)
        assert not problem.validate(presolved.assignment)

    def test_stats_surface_the_reduction_counters(self):
        m = Model()
        x = m.add_var("x", ub=4, vartype=INTEGER)  # in no row: dual-fixed at ub
        y = m.add_var("y", ub=4, vartype=INTEGER)
        m.add_constr(y <= 3)
        m.maximize(x + 2 * y)
        sol = m.solve(cache=False)
        assert sol.status is Status.OPTIMAL
        assert sol.objective == pytest.approx(10.0)
        summary = sol.stats.presolve_summary()
        assert summary["root_presolve_rounds"] >= 1
        assert summary["root_cols_removed"] >= 1
