"""Tests for the dual problems: width minimization and bus-count exploration."""

import pytest

from repro.core import (
    DesignProblem,
    design,
    design_best_architecture,
    explore_bus_counts,
    minimize_width,
)
from repro.tam import TamArchitecture, make_timing_model
from repro.util.errors import InfeasibleError, ValidationError


class TestMaxUsefulWidth:
    def test_fixed_and_serial_use_interface_width(self, s1):
        assert make_timing_model("fixed").max_useful_bus_width(s1) == 16
        assert make_timing_model("serial").max_useful_bus_width(s1) == 16

    def test_flexible_uses_pareto_knee(self, s1):
        knee = make_timing_model("flexible").max_useful_bus_width(s1)
        assert 1 <= knee <= 64

    def test_clamped_sweep_matches_unclamped(self, s1):
        plain = design_best_architecture(s1, 24, 2, timing="serial")
        clamped = design_best_architecture(
            s1, 24, 2, timing="serial", clamp_useless_width=True
        )
        assert clamped.best_makespan == pytest.approx(plain.best_makespan)
        assert clamped.evaluated <= plain.evaluated

    def test_clamp_shrinks_oversized_budget(self, s1):
        # 2 buses x cap 16 = 32 useful wires; a 100-wire budget collapses.
        clamped = design_best_architecture(
            s1, 100, 2, timing="serial", clamp_useless_width=True
        )
        assert clamped.evaluated == 1  # only (16, 16)
        reference = design(
            DesignProblem(soc=s1, arch=TamArchitecture([16, 16]), timing="serial")
        )
        assert clamped.best_makespan == pytest.approx(reference.makespan)


class TestMinimizeWidth:
    def test_finds_knee_exactly(self, s1):
        # Establish T* at a few widths, then ask for the budget between them.
        at_24 = design_best_architecture(s1, 24, 2, timing="serial").best_makespan
        at_23 = design_best_architecture(s1, 23, 2, timing="serial").best_makespan
        assert at_23 >= at_24
        result = minimize_width(s1, 2, time_budget=at_24, timing="serial", max_width=40)
        if at_23 > at_24:
            assert result.min_width == 24
        else:
            assert result.min_width <= 24
        assert result.design.makespan <= at_24 + 1e-9

    def test_budget_of_unconstrained_optimum(self, s1):
        # The loosest meaningful budget: time at full useful width.
        full = design_best_architecture(
            s1, 32, 2, timing="serial", clamp_useless_width=True
        ).best_makespan
        result = minimize_width(s1, 2, time_budget=full, timing="serial")
        assert result.design.makespan <= full + 1e-9
        # And the width just below must miss the budget.
        if result.min_width > 2:
            below = design_best_architecture(
                s1, result.min_width - 1, 2, timing="serial", clamp_useless_width=True
            )
            assert below.best is None or below.best.makespan > full

    def test_unreachable_budget_raises(self, s1):
        with pytest.raises(InfeasibleError):
            minimize_width(s1, 2, time_budget=1.0, timing="serial", max_width=48)

    def test_bad_inputs_rejected(self, s1):
        with pytest.raises(ValidationError):
            minimize_width(s1, 2, time_budget=0)
        with pytest.raises(ValidationError):
            minimize_width(s1, 4, time_budget=100, max_width=3)

    def test_respects_power_constraints(self, s1):
        # Budget chosen as the best time achievable *under* the power
        # constraint, so both searches succeed and can be compared.
        achievable = design_best_architecture(
            s1, 48, 3, timing="serial", power_budget=120.0, clamp_useless_width=True
        ).best_makespan
        loose = minimize_width(s1, 3, time_budget=achievable, timing="serial")
        tight = minimize_width(
            s1, 3, time_budget=achievable, timing="serial", power_budget=120.0
        )
        # Constraints can only demand more wires for the same time budget.
        assert tight.min_width >= loose.min_width
        assert tight.design.makespan <= achievable + 1e-9

    def test_trace_is_recorded(self, s1):
        result = minimize_width(s1, 2, time_budget=9000.0, timing="serial")
        assert result.evaluated_widths == sorted(result.evaluated_widths)
        assert any(w == result.min_width for w, _ in result.evaluated_widths)
        assert "min TAM width" in result.describe()


class TestExploreBusCounts:
    def test_covers_all_counts(self, s1):
        points = explore_bus_counts(s1, 32, 4, timing="serial")
        assert [p.num_buses for p in points] == [1, 2, 3, 4]
        assert all(p.makespan is not None for p in points)

    def test_single_bus_is_total_serialization(self, s1, serial_timing):
        point = explore_bus_counts(s1, 32, 1, timing=serial_timing)[0]
        expected = sum(serial_timing.time_on_bus(c, 32) for c in s1)
        assert point.makespan == pytest.approx(expected)

    def test_width_smaller_than_count_marked_infeasible(self, s1):
        points = explore_bus_counts(s1, 3, 4, timing="serial")
        assert points[3].makespan is None

    def test_bad_count_rejected(self, s1):
        with pytest.raises(ValidationError):
            explore_bus_counts(s1, 16, 0)

    def test_some_intermediate_count_is_best(self, s1):
        # The NB knee: neither 1 bus (no concurrency) nor max buses
        # (starved widths) wins on S1 at W=32.
        points = explore_bus_counts(s1, 32, 4, timing="serial")
        spans = [p.makespan for p in points]
        best = min(spans)
        assert spans.index(best) not in (0,)
