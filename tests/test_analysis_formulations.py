"""Regression: every experiment's shipped ILP formulations are lint-clean.

For each experiment family (T1-T5, E1-E4, F1-F4) this builds the
representative :class:`DesignProblem` instances that harness solves — same
SOCs, same architectures, same budget sweep helpers — and runs both static
passes over them: the problem-level checks (P0xx) and the model linter
(M0xx) on the built ILP. A formulation change that introduces an unused
variable, a duplicate row family, or a constraint-encoding collision fails
here without a single solve.

Instances the experiments *intentionally* drive infeasible (tight budget
sweep endpoints) are exercised separately: the linter must either stay
quiet (infeasibility that only the solver can see) or report it as the
forced/forbidden contradiction it is — never crash.
"""

import pytest

from repro.analysis import check_problem, lint_model
from repro.core.formulation import build_assignment_ilp
from repro.core.problem import DesignProblem
from repro.layout import grid_place
from repro.layout.constraints import distance_sweep_points
from repro.power import budget_sweep_points
from repro.soc import build_d695, build_s1, build_s2, generate_synthetic_soc
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError


def _experiment_instances():
    """(experiment id, DesignProblem) pairs mirroring each harness's setup."""
    s1, s2, d695 = build_s1(), build_s2(), build_d695()
    s1_plan, s2_plan = grid_place(s1), grid_place(s2)
    arch3 = TamArchitecture([16, 16, 16])
    s2_arch = TamArchitecture([32, 16, 16])
    instances = []

    # T1 composition / E4 architecture comparison: unconstrained assignment.
    for soc in (s1, s2):
        instances.append(("t1", DesignProblem(soc=soc, arch=arch3, timing="serial")))
    # T2 / E3 / F1: width sweeps at several distributions.
    for widths in ((16, 16), (24, 24), (32, 16), (16, 16, 16)):
        instances.append(
            ("t2", DesignProblem(soc=s1, arch=TamArchitecture(list(widths)), timing="serial"))
        )
    # T3 / E1 / F2: power budget sweep (feasible region).
    for soc, plan_arch in ((s1, arch3), (s2, s2_arch)):
        for budget in budget_sweep_points(soc)[1:]:
            instances.append(
                ("t3", DesignProblem(soc=soc, arch=plan_arch, timing="serial",
                                     power_budget=budget))
            )
    # T4 / F3: layout budget sweep over the grid floorplan.
    for soc, plan, plan_arch in ((s1, s1_plan, arch3), (s2, s2_plan, s2_arch)):
        deltas = [plan.spread() * 1.01] + distance_sweep_points(plan)[:2]
        for delta in deltas:
            instances.append(
                ("t4", DesignProblem(soc=soc, arch=plan_arch, timing="serial",
                                     floorplan=plan, max_pair_distance=delta))
            )
    # T5: combined power + layout grid (loose corner, guaranteed feasible).
    for soc, plan, plan_arch in ((s1, s1_plan, arch3), (s2, s2_plan, s2_arch)):
        budgets = budget_sweep_points(soc)
        instances.append(
            ("t5", DesignProblem(soc=soc, arch=plan_arch, timing="serial",
                                 power_budget=budgets[-1] * 1.1,
                                 floorplan=plan,
                                 max_pair_distance=plan.spread() * 1.01))
        )
    # E1/E2 extension: d695 at the harness architecture.
    instances.append(("e1", DesignProblem(soc=d695, arch=arch3, timing="serial")))
    instances.append(
        ("e2", DesignProblem(soc=d695, arch=TamArchitecture([48]), timing="serial"))
    )
    # F4 scaling: synthetic SOCs at the harness architecture and seed.
    for size in (6, 10):
        soc = generate_synthetic_soc(size, seed=5)
        instances.append(
            ("f4", DesignProblem(soc=soc, arch=TamArchitecture([32, 16, 16]),
                                 timing="serial"))
        )
    return instances


INSTANCES = _experiment_instances()


@pytest.mark.parametrize(
    "experiment_id,problem",
    INSTANCES,
    ids=[f"{eid}-{p.constraint_summary()[:60]}" for eid, p in INSTANCES],
)
def test_shipped_formulation_is_lint_clean(experiment_id, problem):
    problem_report = check_problem(problem)
    assert not problem_report.errors, "\n".join(d.render() for d in problem_report.errors)

    formulation = build_assignment_ilp(problem)
    model_report = lint_model(formulation.model)
    offenders = model_report.errors + model_report.warnings
    assert not offenders, "\n".join(d.render() for d in offenders)


def test_formulation_count_covers_all_families():
    families = {eid for eid, _ in INSTANCES}
    assert families == {"t1", "t2", "t3", "t4", "t5", "e1", "e2", "f4"}
    assert len(INSTANCES) >= 20


def test_tight_budget_endpoints_do_not_crash_linter():
    """The sweeps' deliberately-infeasible corners must lint gracefully."""
    s1 = build_s1()
    plan = grid_place(s1)
    problem = DesignProblem(
        soc=s1,
        arch=TamArchitecture([16, 16, 16]),
        timing="serial",
        power_budget=budget_sweep_points(s1)[0] * 1.02,
        floorplan=plan,
        max_pair_distance=distance_sweep_points(plan)[-1],
    )
    report = check_problem(problem)
    try:
        formulation = build_assignment_ilp(problem)
    except InfeasibleError:
        # Unbuildable is acceptable; the problem pass must have said why.
        assert report.has_errors
    else:
        report.extend(lint_model(formulation.model))
        # Either genuinely feasible (clean) or contradiction diagnosed —
        # the linter itself never blows up on pathological instances.
        assert isinstance(report.has_errors, bool)
