"""Tests for ASCII charts and the floorplan renderer."""

import pytest

from repro.layout import grid_place, render_floorplan
from repro.soc import generate_synthetic_soc
from repro.util.errors import ValidationError
from repro.util.plots import ascii_chart, staircase


class TestAsciiChart:
    def test_single_series_renders(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1), (2, 4)]})
        lines = chart.splitlines()
        assert lines[0].startswith("y:")
        assert lines[-1].startswith("x:")
        assert any("o" in line for line in lines)

    def test_multi_series_legend_distinct_marks(self):
        chart = ascii_chart({"TAM[16+16]": [(0, 1)], "TAM[16+16+16]": [(1, 2)]})
        assert "o = TAM[16+16]" in chart
        assert "x = TAM[16+16+16]" in chart

    def test_overlap_marked_star(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 0), (1, 0)]})
        assert "*" in chart

    def test_constant_series_padded(self):
        chart = ascii_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "o" in chart  # does not crash on zero y-range

    def test_empty_series(self):
        assert ascii_chart({"a": []}) == "(no data)"

    def test_labels_used(self):
        chart = ascii_chart({"a": [(0, 1)]}, x_label="width", y_label="cycles")
        assert "width:" in chart and "cycles:" in chart

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            ascii_chart({"a": [(0, 1)]}, width=5)
        with pytest.raises(ValidationError):
            ascii_chart({"a": [(0, 1)]}, height=2)

    def test_dimensions_respected(self):
        chart = ascii_chart({"a": [(0, 0), (9, 9)]}, width=20, height=6)
        rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert len(rows) == 6
        assert all(len(row) == 21 for row in rows)


class TestStaircase:
    def test_inserts_corner_points(self):
        steps = staircase([(0, 10), (2, 5), (4, 1)])
        assert (2, 10) in steps  # value 10 holds until x=2
        assert (4, 5) in steps
        assert steps[-1] == (4, 1)

    def test_single_point_passthrough(self):
        assert staircase([(1, 2)]) == [(1, 2)]

    def test_empty(self):
        assert staircase([]) == []

    def test_sorts_input(self):
        steps = staircase([(4, 1), (0, 10)])
        assert steps[0] == (0, 10)


class TestRenderFloorplan:
    def test_renders_all_blocks_and_pads(self, s1, s1_floorplan):
        art = render_floorplan(s1_floorplan, width=48)
        for mark in "abcdef":
            assert mark in art
        assert ">" in art and "<" in art
        for core in s1:
            assert core.name in art  # legend

    def test_width_respected(self, s1_floorplan):
        art = render_floorplan(s1_floorplan, width=32)
        body = [l for l in art.splitlines() if not l.startswith(("S1", "legend"))]
        assert all(len(line) == 32 for line in body)

    def test_too_narrow_rejected(self, s1_floorplan):
        with pytest.raises(ValidationError):
            render_floorplan(s1_floorplan, width=8)

    def test_too_many_blocks_rejected(self):
        soc = generate_synthetic_soc(53, seed=0)
        with pytest.raises(ValidationError):
            render_floorplan(grid_place(soc))

    def test_large_soc_renders(self):
        soc = generate_synthetic_soc(20, seed=1)
        art = render_floorplan(grid_place(soc), width=60)
        assert "legend:" in art
