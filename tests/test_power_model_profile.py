"""Tests for power compatibility analysis and power profiles."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.power import (
    budget_sweep_points,
    conflict_graph,
    conflict_pairs,
    max_clique_power,
    max_meaningful_budget,
    min_meaningful_budget,
    power_groups,
    profile_from_intervals,
)
from repro.soc import Core, Soc
from repro.util.errors import ValidationError


def soc_with_powers(powers):
    cores = [
        Core(
            name=f"p{i}",
            num_inputs=4,
            num_outputs=4,
            num_flipflops=10,
            num_gates=100,
            num_patterns=5,
            test_width=4,
            test_power=float(p),
        )
        for i, p in enumerate(powers)
    ]
    return Soc("P", cores)


class TestConflictAnalysis:
    def test_pairs_by_threshold(self):
        soc = soc_with_powers([10, 20, 30])
        assert conflict_pairs(soc, 100) == []
        assert conflict_pairs(soc, 45) == [(1, 2)]
        assert conflict_pairs(soc, 25) == [(0, 1), (0, 2), (1, 2)]

    def test_budget_must_be_positive(self):
        with pytest.raises(ValidationError):
            conflict_pairs(soc_with_powers([1]), 0)

    def test_graph_nodes_cover_all_cores(self):
        soc = soc_with_powers([10, 20, 30])
        graph = conflict_graph(soc, 45)
        assert set(graph.nodes) == {0, 1, 2}
        assert set(graph.edges) == {(1, 2)}

    def test_groups_merge_transitively(self):
        soc = soc_with_powers([30, 30, 30, 1])
        groups = power_groups(soc, 55)
        assert groups == [{0, 1, 2}]

    def test_groups_empty_when_budget_loose(self):
        assert power_groups(soc_with_powers([1, 2, 3]), 100) == []

    def test_meaningful_budget_bounds(self):
        soc = soc_with_powers([10, 40, 25])
        assert min_meaningful_budget(soc) == 40
        assert max_meaningful_budget(soc) == 65

    def test_single_core_budgets(self):
        soc = soc_with_powers([17])
        assert min_meaningful_budget(soc) == max_meaningful_budget(soc) == 17

    def test_sweep_points_are_change_points(self):
        soc = soc_with_powers([10, 20, 30])
        points = budget_sweep_points(soc)
        assert points == [30, 40, 50]
        # At each point the pair with that exact sum has just become allowed.
        for point in points:
            allowed_now = set(conflict_pairs(soc, point))
            just_below = set(conflict_pairs(soc, point - 1e-9))
            assert allowed_now <= just_below

    def test_sweep_points_without_endpoint_filter(self):
        soc = soc_with_powers([10, 20, 30])
        raw = budget_sweep_points(soc, include_endpoints=False)
        assert raw == [30, 40, 50]

    def test_clique_power_exceeds_pairwise(self):
        # Three cores of 30 each: all pairs fit a 65 budget, the triple doesn't.
        soc = soc_with_powers([30, 30, 30])
        assert conflict_pairs(soc, 65) == []
        assert max_clique_power(soc, 65) == pytest.approx(90)

    def test_clique_power_respects_conflicts(self):
        soc = soc_with_powers([30, 30, 30])
        # At budget 55 every pair conflicts -> cliques are singletons.
        assert max_clique_power(soc, 55) == pytest.approx(30)

    @given(st.lists(st.floats(1, 100), min_size=2, max_size=7), st.floats(5, 250))
    def test_forced_pairs_exactly_exceed_budget(self, powers, budget):
        soc = soc_with_powers([round(p, 2) for p in powers])
        pairs = set(conflict_pairs(soc, budget))
        for i, j in itertools.combinations(range(len(soc)), 2):
            joint = soc.cores[i].test_power + soc.cores[j].test_power
            assert ((i, j) in pairs) == (joint > budget)


class TestPowerProfile:
    def test_two_overlapping_intervals(self):
        profile = profile_from_intervals([("a", 0, 10, 5.0), ("b", 5, 15, 7.0)])
        assert profile.peak == pytest.approx(12.0)
        assert profile.power_at(2) == pytest.approx(5.0)
        assert profile.power_at(7) == pytest.approx(12.0)
        assert profile.power_at(12) == pytest.approx(7.0)
        assert profile.power_at(20) == pytest.approx(0.0)

    def test_energy_is_integral(self):
        profile = profile_from_intervals([("a", 0, 10, 5.0), ("b", 5, 15, 7.0)])
        assert profile.energy() == pytest.approx(5 * 10 + 7 * 10)

    def test_violations_and_respects(self):
        profile = profile_from_intervals([("a", 0, 4, 3.0), ("b", 2, 6, 3.0)])
        assert profile.respects(6.0)
        assert not profile.respects(5.9)
        assert profile.violations(5.0) == [(2, 6.0)]

    def test_zero_length_ignored(self):
        assert profile_from_intervals([("a", 3, 3, 9.0)]).steps == ()

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            profile_from_intervals([("a", 5, 3, 1.0)])

    def test_negative_power_rejected(self):
        with pytest.raises(ValidationError):
            profile_from_intervals([("a", 0, 1, -1.0)])

    def test_empty_profile(self):
        profile = profile_from_intervals([])
        assert profile.peak == 0.0 and profile.end_time == 0.0

    def test_profile_ends_at_zero(self):
        profile = profile_from_intervals([("a", 0, 5, 2.5), ("b", 1, 4, 1.3)])
        assert profile.steps[-1][1] == pytest.approx(0.0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(1, 20), st.floats(0.5, 20)),
            min_size=1,
            max_size=8,
        )
    )
    def test_peak_bounds(self, raw):
        intervals = [(f"i{k}", s, s + d, round(p, 3)) for k, (s, d, p) in enumerate(raw)]
        profile = profile_from_intervals(intervals)
        max_single = max(p for _, _, _, p in intervals)
        total = sum(p for _, _, _, p in intervals)
        assert max_single - 1e-9 <= profile.peak <= total + 1e-9
        assert profile.energy() == pytest.approx(
            sum((e - s) * p for _, s, e, p in intervals), rel=1e-9
        )
