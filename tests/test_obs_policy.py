"""SolvePolicy semantics: budgets, retries, degradation, cache keying.

Covers the resilient anytime-solve path end to end: policy validation and
backend-option mapping, rejection of the removed legacy kwargs,
transient-error retry via a fault-injection backend, heuristic fallback
with provenance, the capped-solve cache-key regression, incumbent
checkpointing, and the parallel metrics-equivalence invariant.
"""

from __future__ import annotations

import pytest

from repro.core import DesignProblem, design, lpt_assignment, width_sweep
from repro.ilp import Model, quicksum
from repro.ilp.model import register_backend, unregister_backend
from repro.ilp.solution import Status
from repro.obs import (
    DEFAULT_CUT_POLICY,
    DEFAULT_PRESOLVE_POLICY,
    CheckpointStore,
    CutPolicy,
    FallbackReport,
    PresolvePolicy,
    SolvePolicy,
    SolverOptions,
    trace_solve,
    use_metrics,
)
from repro.runtime import RunTelemetry, SolutionCache
from repro.util.errors import SolverError, TransientSolverError


def knapsack_model() -> Model:
    weights = [12, 7, 11, 8, 9]
    profits = [24, 13, 23, 15, 16]
    model = Model("knapsack")
    take = [model.add_binary(f"take_{i}") for i in range(len(weights))]
    model.add_constr(quicksum(w * t for w, t in zip(weights, take)) <= 26)
    model.maximize(quicksum(p * t for p, t in zip(profits, take)))
    return model


class TestPolicyObject:
    def test_validation_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            SolvePolicy(deadline=0)
        with pytest.raises(ValueError):
            SolvePolicy(node_budget=-1)
        with pytest.raises(ValueError):
            SolvePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SolvePolicy(fallback=("greedy",))

    def test_fallback_coerced_to_tuple(self):
        policy = SolvePolicy(fallback=["lpt"])
        assert policy.fallback == ("lpt",)
        assert policy.degrades

    def test_capped_and_degrades_flags(self):
        assert not SolvePolicy().is_capped
        assert SolvePolicy(node_budget=5).is_capped
        assert SolvePolicy(deadline=1.0).is_capped
        assert not SolvePolicy(fallback=()).degrades

    def test_backend_options_mapping(self):
        policy = SolvePolicy(deadline=2.0, node_budget=7, gap_tol=0.5)
        assert policy.backend_options("bnb") == {
            "node_limit": 7,
            "time_limit": 2.0,
            "gap_tol": 0.5,
        }
        # scipy understands only a time limit.
        assert policy.backend_options("scipy") == {"time_limit": 2.0}

    def test_cache_token_covers_only_effort_fields(self):
        a = SolvePolicy(node_budget=5, max_retries=3, fallback=())
        b = SolvePolicy(node_budget=5)
        c = SolvePolicy(node_budget=6)
        assert a.cache_token() == b.cache_token()
        assert a.cache_token() != c.cache_token()

    def test_dict_round_trip(self):
        policy = SolvePolicy(deadline=1.5, node_budget=3, fallback=("lpt",))
        assert SolvePolicy.from_dict(policy.as_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="node_limit"):
            SolvePolicy.from_dict({"node_limit": 3})

    def test_policy_is_picklable(self):
        import pickle

        policy = SolvePolicy(deadline=1.0, fallback=("lpt",))
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestCutPolicyObject:
    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            CutPolicy(rounds=-1)
        with pytest.raises(ValueError):
            CutPolicy(max_cuts_per_round=0)
        with pytest.raises(ValueError):
            CutPolicy(min_violation=-1.0)
        with pytest.raises(ValueError):
            CutPolicy(max_pool=0)

    def test_enabled_flag(self):
        assert DEFAULT_CUT_POLICY.enabled
        assert not CutPolicy.disabled().enabled
        assert not CutPolicy(clique=False, cover=False).enabled
        assert CutPolicy(rounds=0, max_depth=2).enabled  # in-tree only

    def test_legacy_root_cuts_mapping(self):
        legacy = CutPolicy.legacy_root_cuts(4)
        assert legacy.rounds == 4
        assert legacy.cover and not legacy.clique
        assert legacy.max_depth == 0  # old root_cuts never cut in-tree
        assert not CutPolicy.legacy_root_cuts(0).enabled

    def test_dict_round_trip_and_unknown_keys(self):
        policy = CutPolicy(rounds=5, clique=False, max_depth=1)
        assert CutPolicy.from_dict(policy.as_dict()) == policy
        with pytest.raises(ValueError, match="gomory"):
            CutPolicy.from_dict({"gomory": True})

    def test_cache_token_distinguishes_every_field(self):
        base = CutPolicy()
        tokens = {base.cache_token()}
        for change in (
            {"rounds": 9},
            {"max_cuts_per_round": 9},
            {"clique": False},
            {"cover": False},
            {"max_depth": 9},
            {"min_violation": 0.5},
            {"max_pool": 9},
            {"max_age": 9},
        ):
            tokens.add(base.with_overrides(**change).cache_token())
        assert len(tokens) == 9


class TestPresolvePolicyObject:
    def test_validation_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            PresolvePolicy(rounds=-1)

    def test_enabled_flag(self):
        assert DEFAULT_PRESOLVE_POLICY.enabled
        assert not PresolvePolicy.disabled().enabled
        assert not PresolvePolicy(
            bound_tighten=False,
            dual_fix=False,
            singleton_cols=False,
            coeff_tighten=False,
            row_cleanup=False,
        ).enabled
        assert PresolvePolicy(rounds=1, bound_tighten=False).enabled

    def test_dict_round_trip_and_unknown_keys(self):
        policy = PresolvePolicy(rounds=2, singleton_cols=False)
        assert PresolvePolicy.from_dict(policy.as_dict()) == policy
        with pytest.raises(ValueError, match="probing"):
            PresolvePolicy.from_dict({"probing": True})

    def test_cache_token_distinguishes_every_field(self):
        base = PresolvePolicy()
        tokens = {base.cache_token()}
        for change in (
            {"rounds": 9},
            {"bound_tighten": False},
            {"dual_fix": False},
            {"singleton_cols": False},
            {"coeff_tighten": False},
            {"row_cleanup": False},
        ):
            tokens.add(base.with_overrides(**change).cache_token())
        assert len(tokens) == 7

    def test_policy_is_picklable(self):
        import pickle

        policy = PresolvePolicy(rounds=1, dual_fix=False)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestSolverOptionsBlock:
    def test_validation(self):
        with pytest.raises(ValueError):
            SolverOptions(branching="steepest")
        with pytest.raises(TypeError):
            SolverOptions(cuts={"rounds": 3})
        with pytest.raises(TypeError):
            SolverOptions(root_presolve={"rounds": 2})
        with pytest.raises(TypeError):
            SolverOptions(warm_start="yes")
        with pytest.raises(ValueError):
            SolverOptions(checkpoint_interval=0)

    def test_presolve_and_warm_start_forwarding(self):
        block = SolverOptions(
            root_presolve=PresolvePolicy.disabled(), warm_start=False
        )
        options = block.backend_options("bnb")
        assert options["root_presolve"] == PresolvePolicy.disabled()
        # The solver's own `warm_start` kwarg is an incumbent-values hint;
        # the LP-basis toggle travels under a distinct name.
        assert options["lp_warm_start"] is False
        assert "warm_start" not in options
        assert block.backend_options("scipy") == {}

    def test_presolve_and_warm_start_shape_cache_token(self):
        bare = SolverOptions()
        presolve_off = SolverOptions(root_presolve=PresolvePolicy.disabled())
        warm_off = SolverOptions(warm_start=False)
        tokens = {b.cache_token() for b in (bare, presolve_off, warm_off)}
        assert len(tokens) == 3

    def test_nested_presolve_dict_round_trip(self):
        block = SolverOptions(
            root_presolve=PresolvePolicy(rounds=2, coeff_tighten=False),
            warm_start=True,
        )
        assert SolverOptions.from_dict(block.as_dict()) == block

    def test_backend_options_forwarding(self):
        block = SolverOptions(presolve=False, cuts=CutPolicy(rounds=2))
        options = block.backend_options("bnb")
        assert options["presolve"] is False
        assert options["cut_policy"] == CutPolicy(rounds=2)
        assert "branching" not in options
        # non-bnb backends understand none of these knobs
        assert block.backend_options("scipy") == {}

    def test_policy_carries_solver_block_to_backend(self):
        policy = SolvePolicy(
            node_budget=7, solver=SolverOptions(branching="first", cuts=CutPolicy())
        )
        options = policy.backend_options("bnb")
        assert options["node_limit"] == 7
        assert options["branching"] == "first"
        assert options["cut_policy"] == CutPolicy()
        assert policy.backend_options("scipy") == {}

    def test_cache_token_covers_the_block(self):
        bare = SolvePolicy(node_budget=5)
        cuts_on = SolvePolicy(node_budget=5, solver=SolverOptions(cuts=CutPolicy()))
        cuts_off = SolvePolicy(
            node_budget=5, solver=SolverOptions(cuts=CutPolicy.disabled())
        )
        tokens = {p.cache_token() for p in (bare, cuts_on, cuts_off)}
        assert len(tokens) == 3

    def test_nested_dict_round_trip(self):
        policy = SolvePolicy(
            deadline=1.5,
            solver=SolverOptions(
                presolve=True, branching="pseudocost", cuts=CutPolicy(max_depth=1)
            ),
        )
        assert SolvePolicy.from_dict(policy.as_dict()) == policy

    def test_flat_keys_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="presolve"):
            policy = SolvePolicy.from_dict({"node_budget": 3, "presolve": False})
        assert policy.node_budget == 3
        assert policy.solver == SolverOptions(presolve=False)
        with pytest.warns(DeprecationWarning, match="root_cuts"):
            policy = SolvePolicy.from_dict({"root_cuts": 2})
        assert policy.solver.cuts == CutPolicy.legacy_root_cuts(2)

    def test_flat_and_nested_conflict_rejected(self):
        payload = {"presolve": False, "solver": {"presolve": True}}
        with pytest.raises(ValueError, match="both"):
            with pytest.warns(DeprecationWarning):
                SolvePolicy.from_dict(payload)

    def test_block_is_picklable(self):
        import pickle

        policy = SolvePolicy(solver=SolverOptions(cuts=CutPolicy(rounds=1)))
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestLegacyKwargRemoval:
    def test_model_solve_rejects_node_limit(self):
        model = knapsack_model()
        with pytest.raises(TypeError, match="SolvePolicy"):
            model.solve(node_limit=1000, cache=False)

    def test_design_rejects_time_limit(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with pytest.raises(TypeError, match="SolvePolicy"):
            design(problem, time_limit=60.0, cache=False)

    def test_rejection_happens_even_with_a_policy(self):
        model = knapsack_model()
        with pytest.raises(TypeError, match="SolvePolicy"):
            model.solve(policy=SolvePolicy(node_budget=5), node_limit=3, cache=False)


class FlakyBackend:
    """Fault-injection backend: transient failures for the first N calls."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self, model, **options):
        from repro.ilp.model import _solve_bnb

        self.calls += 1
        if self.calls <= self.failures:
            raise TransientSolverError(f"injected fault #{self.calls}")
        return _solve_bnb(model, **options)


class TestRetries:
    def test_retry_recovers_from_transient_errors(self):
        flaky = FlakyBackend(failures=2)
        register_backend("flaky", flaky)
        try:
            solution = knapsack_model().solve(
                backend="flaky",
                cache=False,
                policy=SolvePolicy(max_retries=2, retry_backoff=0.0),
            )
        finally:
            unregister_backend("flaky")
        assert solution.status is Status.OPTIMAL
        assert flaky.calls == 3
        assert solution.stats.retries == 2

    def test_exhausted_retries_reraise(self):
        flaky = FlakyBackend(failures=3)
        register_backend("flaky", flaky)
        try:
            with pytest.raises(TransientSolverError):
                knapsack_model().solve(
                    backend="flaky",
                    cache=False,
                    policy=SolvePolicy(max_retries=1, retry_backoff=0.0),
                )
        finally:
            unregister_backend("flaky")
        assert flaky.calls == 2

    def test_no_policy_means_no_retry(self):
        flaky = FlakyBackend(failures=1)
        register_backend("flaky", flaky)
        try:
            with pytest.raises(TransientSolverError):
                knapsack_model().solve(backend="flaky", cache=False)
        finally:
            unregister_backend("flaky")
        assert flaky.calls == 1

    def test_retry_metrics_are_counted(self):
        flaky = FlakyBackend(failures=1)
        register_backend("flaky", flaky)
        try:
            with use_metrics() as metrics:
                knapsack_model().solve(
                    backend="flaky",
                    cache=False,
                    policy=SolvePolicy(max_retries=1, retry_backoff=0.0),
                )
        finally:
            unregister_backend("flaky")
        assert metrics.counter("solve.transient_errors").value == 1
        assert metrics.counter("solve.retries").value == 1


class TestDegradation:
    def test_budget_exhaustion_returns_incumbent(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        result = design(problem, policy=SolvePolicy(node_budget=1), cache=False)
        assert result.status is Status.FEASIBLE
        assert result.provenance == "incumbent"
        assert result.fallback is not None and result.fallback.degraded
        # The incumbent is a real, validated assignment.
        assert not problem.validate(result.assignment)

    def test_no_incumbent_falls_back_to_lpt(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with use_metrics() as metrics:
            result = design(
                problem, policy=SolvePolicy(node_budget=1), dive=False, cache=False
            )
        assert result.status is Status.FEASIBLE
        assert result.provenance == "lpt"
        assert result.makespan == pytest.approx(lpt_assignment(problem).makespan)
        steps = [s["step"] for s in result.fallback.ladder]
        assert steps[0] == "exact" and "lpt" in steps
        assert metrics.counter("design.fallbacks").value == 1

    def test_empty_ladder_raises_like_legacy(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with pytest.raises(SolverError):
            design(
                problem,
                policy=SolvePolicy(node_budget=1, fallback=()),
                dive=False,
                cache=False,
            )

    def test_exact_solve_reports_exact_provenance(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        result = design(problem, policy=SolvePolicy(deadline=600.0), cache=False)
        assert result.status is Status.OPTIMAL
        assert result.provenance == "exact"
        assert not result.fallback.degraded

    def test_fallback_recorded_in_run_telemetry(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        result = design(
            problem, policy=SolvePolicy(node_budget=1), dive=False, cache=False
        )
        telemetry = RunTelemetry()
        telemetry.record(result.stats)
        telemetry.record_fallback(result.fallback)
        assert telemetry.fallbacks == 1
        assert "1 fallbacks" in telemetry.render()

    def test_fallback_report_renders_provenance(self):
        report = FallbackReport(source="sa", reason="budget", retries=1)
        report.record_step("exact", "no_incumbent")
        report.record_step("sa", "ok")
        text = report.render()
        assert "source=sa" in text and "retries=1" in text and "exact:no_incumbent" in text


class TestCacheKeying:
    def test_truncated_solve_is_not_replayed_for_uncapped_request(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        cache = SolutionCache()
        capped = design(problem, policy=SolvePolicy(node_budget=1), cache=cache)
        assert capped.status is Status.FEASIBLE
        exact = design(problem, cache=cache)
        assert exact.status is Status.OPTIMAL
        assert exact.makespan <= capped.makespan + 1e-9

    def test_same_capped_policy_hits_the_cache(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        cache = SolutionCache()
        policy = SolvePolicy(node_budget=1)
        design(problem, policy=policy, cache=cache)
        misses = cache.misses
        replay = design(problem, policy=policy, cache=cache)
        assert cache.hits >= 1
        assert cache.misses == misses
        assert replay.stats.cache_hit

    def test_uncapped_policy_shares_key_with_no_policy(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        cache = SolutionCache()
        design(problem, cache=cache)
        replay = design(
            problem, policy=SolvePolicy(max_retries=2), cache=cache
        )
        assert replay.stats.cache_hit


class TestCheckpointing:
    def test_store_keeps_best_objective(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("fp", [1.0, 0.0], objective=10.0)
        store.save("fp", [0.0, 1.0], objective=20.0)  # worse: ignored
        payload = store.load("fp")
        assert payload["objective"] == 10.0
        assert payload["values"] == [1.0, 0.0]
        assert store.load("missing") is None

    def test_bnb_resumes_from_checkpoint(self, tmp_path, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        seed_policy = SolvePolicy(node_budget=1, checkpoint_dir=str(tmp_path))
        first = design(problem, policy=seed_policy, cache=False)
        assert first.status is Status.FEASIBLE  # incumbent was checkpointed

        resume_policy = SolvePolicy(checkpoint_dir=str(tmp_path))
        with trace_solve() as tracer:
            second = design(problem, policy=resume_policy, cache=False)
        assert second.status is Status.OPTIMAL
        resumed = [
            e for s in tracer.spans for e in s.events if e["name"] == "checkpoint_resume"
        ]
        assert resumed, "expected the warm incumbent to be resumed"


class TestCheckpointDebounce:
    def _solver(self, tmp_path, interval):
        from repro.ilp.branch_and_bound import BranchAndBoundSolver

        model = knapsack_model()
        return BranchAndBoundSolver(
            model,
            dive=False,
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=interval,
        )

    def _count_saves(self, monkeypatch):
        calls = []
        original = CheckpointStore.save

        def counting_save(self, fingerprint, values, objective):
            calls.append(objective)
            return original(self, fingerprint, values, objective)

        monkeypatch.setattr(CheckpointStore, "save", counting_save)
        return calls

    def test_interval_throttles_saves_but_final_incumbent_persists(
        self, tmp_path, monkeypatch
    ):
        calls = self._count_saves(monkeypatch)
        solver = self._solver(tmp_path, interval=3600.0)
        solution = solver.solve()
        assert solution.status is Status.OPTIMAL
        assert solution.stats.incumbent_updates >= 2
        # First incumbent writes immediately; later improvements fall inside
        # the (huge) interval, and only the final flush writes again.
        assert len(calls) <= 2
        payload = solver._checkpoints.load(solver._fingerprint)
        assert payload is not None
        assert payload["objective"] == pytest.approx(-solution.objective)

    def test_zero_interval_saves_every_improvement(self, tmp_path, monkeypatch):
        calls = self._count_saves(monkeypatch)
        solver = self._solver(tmp_path, interval=0.0)
        solution = solver.solve()
        assert solution.status is Status.OPTIMAL
        assert len(calls) == solution.stats.incumbent_updates


class TestParallelEquivalence:
    def test_jobs_do_not_change_aggregate_metrics(self, s1):
        aggregates = []
        for jobs in (1, 2):
            points = width_sweep(
                s1, 2, [8, 10, 12], timing="serial", jobs=jobs
            )
            total = RunTelemetry(jobs=jobs)
            for point in points:
                total.merge(point.telemetry)
            aggregates.append(total.counts())
        assert aggregates[0] == aggregates[1]
