"""Tests for the synthetic SOC generator and the .soc file format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc import dump_soc, generate_synthetic_soc, load_soc, parse_soc, save_soc
from repro.util.errors import ValidationError


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate_synthetic_soc(8, seed=4)
        b = generate_synthetic_soc(8, seed=4)
        assert dump_soc(a) == dump_soc(b)

    def test_seeds_differ(self):
        a = generate_synthetic_soc(8, seed=4)
        b = generate_synthetic_soc(8, seed=5)
        assert dump_soc(a) != dump_soc(b)

    @pytest.mark.parametrize("mode", ["catalog", "parametric"])
    def test_sizes_respected(self, mode):
        for n in (1, 3, 12):
            soc = generate_synthetic_soc(n, seed=0, mode=mode)
            assert len(soc) == n

    def test_catalog_mode_renames_duplicates(self):
        soc = generate_synthetic_soc(30, seed=1, mode="catalog")
        assert len(set(soc.core_names)) == 30

    def test_parametric_cores_structurally_sane(self):
        soc = generate_synthetic_soc(15, seed=2, mode="parametric")
        for core in soc:
            assert core.num_gates >= 100
            assert core.test_width % 4 == 0
            assert core.test_power > 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            generate_synthetic_soc(0)
        with pytest.raises(ValidationError):
            generate_synthetic_soc(3, mode="quantum")

    def test_die_holds_cores(self):
        soc = generate_synthetic_soc(10, seed=3)
        assert soc.total_core_area < soc.die_width * soc.die_height

    def test_custom_name(self):
        assert generate_synthetic_soc(2, seed=0, name="Z").name == "Z"


class TestSocFormat:
    def test_roundtrip_s1(self):
        from repro.soc import build_s1

        text = dump_soc(build_s1())
        assert dump_soc(parse_soc(text)) == text

    def test_file_roundtrip(self, tmp_path):
        soc = generate_synthetic_soc(4, seed=9)
        path = tmp_path / "sys.soc"
        save_soc(soc, path)
        loaded = load_soc(path)
        assert dump_soc(loaded) == dump_soc(soc)

    def test_comments_and_blanks_ignored(self):
        text = (
            "# heading\n\nsoc T\n  \ndie 5 5\n"
            "core a inputs=1 outputs=1 flipflops=0 gates=10 patterns=2 width=4 power=1\n"
        )
        soc = parse_soc(text)
        assert soc.name == "T" and len(soc) == 1

    def test_line_continuation(self):
        text = (
            "soc T\ndie 5 5\n"
            "core a inputs=1 outputs=1 \\\n"
            "     flipflops=0 gates=10 patterns=2 width=4 power=1\n"
        )
        assert parse_soc(text)["a"].num_gates == 10

    def test_power_budget_field(self):
        text = ("soc T\ndie 5 5\npowerbudget 123.5\n"
                "core a inputs=1 outputs=1 flipflops=0 gates=10 patterns=2 width=4 power=1\n")
        assert parse_soc(text).power_budget == pytest.approx(123.5)

    def test_activity_optional(self):
        text = "soc T\ndie 5 5\ncore a inputs=1 outputs=1 flipflops=0 gates=10 patterns=2 width=4 power=1\n"
        assert parse_soc(text)["a"].activity == pytest.approx(0.6)

    @pytest.mark.parametrize(
        "bad",
        [
            "die 5 5\ncore a inputs=1 outputs=1 flipflops=0 gates=10 patterns=2 width=4 power=1\n",  # no soc
            "soc T\nfrobnicate 7\n",  # unknown keyword
            "soc T\ncore a inputs=1\n",  # missing required attrs
            "soc T\ncore a inputs=1 outputs=1 flipflops=0 gates=10 patterns=2 width=4 power=1 zz=3\n",  # unknown attr
            "soc T\ncore a inputsX1\n",  # malformed attribute
            "soc T\ndie 5\n",  # die arity
            "soc T\ncore a inputs=abc outputs=1 flipflops=0 gates=10 patterns=2 width=4 power=1\n",  # bad int
        ],
    )
    def test_malformed_inputs_raise_with_line_info(self, bad):
        with pytest.raises(ValidationError):
            parse_soc(bad)

    def test_error_mentions_line_number(self):
        try:
            parse_soc("soc T\nfrobnicate\n")
        except ValidationError as exc:
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ValidationError")

    @given(st.integers(1, 10), st.integers(0, 10_000))
    def test_generated_socs_always_roundtrip(self, size, seed):
        soc = generate_synthetic_soc(size, seed=seed, mode="parametric")
        assert dump_soc(parse_soc(dump_soc(soc))) == dump_soc(soc)
