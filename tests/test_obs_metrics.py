"""Metrics registry semantics: instruments, scoping, merging, determinism."""

from __future__ import annotations

import pytest

from repro.core import DesignProblem, design
from repro.obs import MetricsRegistry, get_metrics, use_metrics


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert gauge.value is None
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summary_is_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        summary = hist.as_value()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_same_name_is_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_counts_view_holds_only_counters(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(0.5)
        assert registry.counts() == {"a": 2}


class TestMerge:
    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("t").observe(1.0)
        b.histogram("t").observe(3.0)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.histogram("t").count == 2
        assert a.histogram("t").max == 3.0

    def test_merge_gauge_last_writer_wins(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge(b)
        assert a.gauge("g").value == 9.0


class TestScoping:
    def test_use_metrics_installs_and_restores(self):
        outer = get_metrics()
        with use_metrics() as scoped:
            assert get_metrics() is scoped
            assert scoped is not outer
        assert get_metrics() is outer

    def test_solves_feed_the_active_registry(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        with use_metrics() as metrics:
            design(problem, cache=False)
        assert metrics.counter("solve.nodes").value > 0
        assert metrics.counter("solve.lp_solves").value > 0
        assert metrics.histogram("solve.wall_time").count == 1

    def test_repeated_runs_have_identical_counts(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        snapshots = []
        for _ in range(2):
            with use_metrics() as metrics:
                design(problem, cache=False)
            snapshots.append(metrics.counts())
        assert snapshots[0] == snapshots[1]
