"""Tests for schedule construction and its power verification."""

import itertools

import pytest

from repro.core import DesignProblem, build_schedule, design
from repro.util.errors import ValidationError


@pytest.fixture
def s1_problem(s1, arch3):
    return DesignProblem(soc=s1, arch=arch3, timing="serial")


@pytest.fixture
def s1_schedule(s1_problem):
    assignment = design(s1_problem).assignment
    return s1_problem, assignment, build_schedule(s1_problem, assignment)


class TestScheduleStructure:
    def test_every_core_scheduled_once(self, s1, s1_schedule):
        _, _, schedule = s1_schedule
        names = sorted(s.core_name for s in schedule.sessions)
        assert names == sorted(s1.core_names)

    def test_serial_within_bus(self, s1_schedule):
        _, _, schedule = s1_schedule
        for bus in {s.bus for s in schedule.sessions}:
            sessions = schedule.sessions_on_bus(bus)
            for earlier, later in zip(sessions, sessions[1:]):
                assert earlier.end <= later.start + 1e-9

    def test_bus_packed_from_zero_without_gaps(self, s1_schedule):
        _, _, schedule = s1_schedule
        for bus in {s.bus for s in schedule.sessions}:
            sessions = schedule.sessions_on_bus(bus)
            assert sessions[0].start == 0.0
            for earlier, later in zip(sessions, sessions[1:]):
                assert later.start == pytest.approx(earlier.end)

    def test_makespan_matches_assignment(self, s1_schedule):
        problem, assignment, schedule = s1_schedule
        assert schedule.makespan == pytest.approx(assignment.makespan(problem.timing))

    def test_durations_match_timing_matrix(self, s1_schedule):
        problem, assignment, schedule = s1_schedule
        for session in schedule.sessions:
            index = problem.soc.index_of(session.core_name)
            assert session.duration == pytest.approx(
                problem.times[index][assignment.bus_of[index]]
            )

    def test_unknown_policy_rejected(self, s1_problem):
        assignment = design(s1_problem).assignment
        with pytest.raises(ValidationError):
            build_schedule(s1_problem, assignment, policy="fifo")


class TestSchedulePolicies:
    def test_policies_same_makespan(self, s1_problem):
        assignment = design(s1_problem).assignment
        lpt = build_schedule(s1_problem, assignment, policy="lpt")
        stagger = build_schedule(s1_problem, assignment, policy="power_stagger")
        assert lpt.makespan == pytest.approx(stagger.makespan)

    def test_lpt_orders_descending_within_bus(self, s1_problem):
        assignment = design(s1_problem).assignment
        schedule = build_schedule(s1_problem, assignment, policy="lpt")
        for bus in {s.bus for s in schedule.sessions}:
            durations = [s.duration for s in schedule.sessions_on_bus(bus)]
            assert durations == sorted(durations, reverse=True)


class TestSchedulePower:
    def test_profile_consistent_with_concurrency(self, s1_schedule):
        _, _, schedule = s1_schedule
        profile = schedule.power_profile()
        probe = schedule.makespan * 0.3
        concurrent = schedule.concurrent_at(probe)
        by_name = {s.core_name: s.power for s in schedule.sessions}
        assert profile.power_at(probe) == pytest.approx(
            sum(by_name[name] for name in concurrent)
        )

    def test_peak_bounded_by_total(self, s1, s1_schedule):
        _, _, schedule = s1_schedule
        assert schedule.peak_power <= s1.total_test_power + 1e-9

    def test_designed_budget_respected_pairwise(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial", power_budget=120.0)
        result = design(problem)
        schedule = build_schedule(problem, result.assignment)
        for a, b in itertools.combinations(schedule.sessions, 2):
            if a.bus != b.bus and a.start < b.end and b.start < a.end:
                assert a.power + b.power <= 120.0 + 1e-9


class TestGantt:
    def test_gantt_renders_every_bus(self, s1_schedule):
        _, _, schedule = s1_schedule
        chart = schedule.gantt(width=40)
        for bus in {s.bus for s in schedule.sessions}:
            assert f"bus {bus}:" in chart

    def test_gantt_rejects_bad_width(self, s1_schedule):
        _, _, schedule = s1_schedule
        with pytest.raises(ValidationError):
            schedule.gantt(width=0)

    def test_empty_schedule_safe(self):
        from repro.core.scheduler import TestSchedule

        schedule = TestSchedule("empty", [])
        assert schedule.makespan == 0.0
        assert schedule.peak_power == 0.0
