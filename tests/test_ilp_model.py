"""Tests for the Model container and matrix export."""

import math

import numpy as np
import pytest

from repro.ilp import INTEGER, Model, quicksum
from repro.util.errors import ValidationError


class TestVariables:
    def test_auto_names_are_sequential(self):
        m = Model()
        names = [m.add_var().name for _ in range(3)]
        assert names == ["x0", "x1", "x2"]

    def test_duplicate_names_rejected(self):
        m = Model()
        m.add_var("v")
        with pytest.raises(ValidationError):
            m.add_var("v")

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValidationError):
            Model().add_var("v", lb=2, ub=1)

    def test_add_vars_prefix(self):
        m = Model()
        xs = m.add_vars(3, prefix="y")
        assert [v.name for v in xs] == ["y0", "y1", "y2"]

    def test_counting_properties(self):
        m = Model()
        m.add_var("a")
        m.add_binary("b")
        m.add_var("c", vartype=INTEGER)
        m.add_constr(quicksum(m.variables) <= 3)
        assert m.num_vars == 3
        assert m.num_integer_vars == 2
        assert m.num_constraints == 1
        assert "3 vars" in m.summary()


class TestConstraints:
    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ValidationError):
            m2.add_constr(x <= 1)

    def test_non_constraint_rejected(self):
        with pytest.raises(TypeError):
            Model().add_constr(42)

    def test_named_constraints(self):
        m = Model()
        x = m.add_var("x")
        constr = m.add_constr(x <= 1, name="cap")
        assert constr.name == "cap"

    def test_add_constrs_prefix(self):
        m = Model()
        x = m.add_var("x")
        added = m.add_constrs([x <= 1, x >= 0], prefix="c")
        assert [c.name for c in added] == ["c0", "c1"]


class TestMatrixForm:
    def test_le_ge_eq_routing(self):
        m = Model()
        x, y = m.add_var("x"), m.add_var("y")
        m.add_constr(x + y <= 4)
        m.add_constr(x - y >= 1)
        m.add_constr(x + 2 * y == 3)
        m.minimize(x + y)
        form = m.to_matrix_form()
        assert form.a_ub.shape == (2, 2)  # GE flipped into UB
        assert form.a_eq.shape == (1, 2)
        np.testing.assert_allclose(form.a_ub[1], [-1.0, 1.0])
        assert form.b_ub[1] == -1.0

    def test_max_sense_negates_objective(self):
        m = Model()
        x = m.add_var("x", ub=5)
        m.maximize(2 * x + 7)
        form = m.to_matrix_form()
        assert form.c[0] == -2.0
        assert form.c0 == -7.0

    def test_integer_mask(self):
        m = Model()
        m.add_var("a")
        m.add_binary("b")
        mask = m.to_matrix_form().integer_mask
        assert list(mask) == [False, True]

    def test_default_bounds(self):
        m = Model()
        m.add_var("free", lb=-math.inf)
        m.add_var("std")
        form = m.to_matrix_form()
        assert form.lb[0] == -math.inf and form.lb[1] == 0.0
        assert form.ub[0] == math.inf


class TestCheckSolution:
    def test_reports_all_violation_kinds(self):
        m = Model()
        b = m.add_binary("b")
        x = m.add_var("x", ub=2)
        m.add_constr(b + x <= 1, name="cap")
        problems = m.check_solution({b: 0.5, x: 3.0})
        text = " ".join(problems)
        assert "not integral" in text
        assert "outside" in text
        assert "cap" in text

    def test_clean_solution_passes(self):
        m = Model()
        b = m.add_binary("b")
        m.add_constr(b <= 1)
        assert m.check_solution({b: 1.0}) == []

    def test_missing_value_reported(self):
        m = Model()
        b = m.add_binary("b")
        assert "no value" in m.check_solution({})[0]

    def test_objective_value_in_original_sense(self):
        m = Model()
        x = m.add_var("x")
        m.maximize(3 * x)
        assert m.objective_value({x: 2.0}) == pytest.approx(6.0)


class TestSolveDispatch:
    def test_unknown_backend_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.solve(backend="gurobi")

    def test_unknown_lp_method_rejected(self):
        m = Model()
        m.add_var("x", ub=1)
        m.minimize(quicksum([]))
        with pytest.raises(ValueError):
            m.solve_relaxation(method="interior")
