"""The repro.api facade: completeness, aliases, CLI/runtime integration."""

from __future__ import annotations

import json
from pathlib import Path

import repro.api as api
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestFacadeSurface:
    def test_all_names_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_all_is_sorted_free_of_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_blessed_aliases_are_the_real_functions(self):
        assert api.sweep_widths is api.width_sweep
        assert api.min_width is api.minimize_width
        assert api.bus_count_curve is api.explore_bus_counts

    def test_blessed_alias_map_matches_the_bindings(self):
        # BLESSED_ALIASES is the single source of truth: every entry must
        # be bound to the canonical object, and both ends must be exported.
        for alias, target in api.BLESSED_ALIASES.items():
            assert getattr(api, alias) is getattr(api, target)
            assert alias in api.__all__ and target in api.__all__

    def test_core_surface_spans_the_paper_flow(self):
        # One name from each documented group must be present.
        for name in (
            "load_soc",
            "DesignProblem",
            "design",
            "sweep_widths",
            "run_experiment",
            "ExperimentConfig",
            "solve_cached",
            "SolutionCache",
            "run_parallel",
            "RunTelemetry",
            "format_objective",
            "lint_paths",
            "ReproError",
        ):
            assert name in api.__all__

    def test_examples_pass_facade_lint(self):
        report = api.lint_paths(["examples"])
        c005 = [d for d in report if d.rule == "C005"]
        assert c005 == []


class TestFacadeManifest:
    def test_table_covers_all_exactly(self):
        rows = api.facade_table()
        assert [row["name"] for row in rows] == sorted(api.__all__)

    def test_rows_report_real_homes(self):
        for row in api.facade_table():
            assert str(row["module"]).startswith("repro"), row
            # The module must be importable and actually hold the object —
            # by name, or (for facade renames like EXPERIMENTS ->
            # experiments.REGISTRY) by identity under any name.
            module = __import__(str(row["module"]), fromlist=["_"])
            name = str(row["alias_of"] or row["name"])
            obj = getattr(api, str(row["name"]))
            assert hasattr(module, name) or any(
                getattr(module, attr) is obj for attr in dir(module)
            ), row

    def test_alias_rows_point_at_exported_targets(self):
        rows = {row["name"]: row for row in api.facade_table()}
        aliased = {
            name: row["alias_of"] for name, row in rows.items() if row["alias_of"]
        }
        assert aliased == api.BLESSED_ALIASES
        for alias, target in aliased.items():
            assert target in rows
            assert rows[alias]["module"] == rows[target]["module"]

    def test_since_values_are_sane(self):
        for row in api.facade_table():
            assert 1 <= int(str(row["since"])) <= 10, row

    def test_pr8_solver_options_surface(self):
        rows = {row["name"]: row for row in api.facade_table()}
        for name in ("CutPolicy", "SolverOptions", "DEFAULT_CUT_POLICY"):
            assert name in api.__all__
            assert rows[name]["since"] == 8
            assert rows[name]["module"] == "repro.obs.policy"
        assert isinstance(api.DEFAULT_CUT_POLICY, api.CutPolicy)
        assert api.DEFAULT_CUT_POLICY.enabled

    def test_pr9_presolve_surface(self):
        rows = {row["name"]: row for row in api.facade_table()}
        for name in ("PresolvePolicy", "DEFAULT_PRESOLVE_POLICY"):
            assert name in api.__all__
            assert rows[name]["since"] == 9
            assert rows[name]["module"] == "repro.obs.policy"
        assert isinstance(api.DEFAULT_PRESOLVE_POLICY, api.PresolvePolicy)
        assert api.DEFAULT_PRESOLVE_POLICY.enabled

    def test_pr10_scale_surface(self):
        rows = {row["name"]: row for row in api.facade_table()}
        for name in (
            "PortfolioPolicy",
            "DEFAULT_PORTFOLIO_POLICY",
            "PortfolioReport",
            "EntrantRecord",
            "run_portfolio",
            "build_p93791",
            "build_t512505",
            "corpus_names",
            "corpus_soc",
        ):
            assert name in api.__all__
            assert rows[name]["since"] == 10
        assert isinstance(api.DEFAULT_PORTFOLIO_POLICY, api.PortfolioPolicy)
        assert api.DEFAULT_PORTFOLIO_POLICY.enabled
        assert api.DEFAULT_PORTFOLIO_POLICY.exact

    def test_checked_in_manifest_matches_live_facade(self):
        manifest = REPO_ROOT / "API.md"
        assert manifest.exists(), "run: PYTHONPATH=src python -m repro.api > API.md"
        assert manifest.read_text(encoding="utf-8") == api.render_facade_manifest()


class TestCliJsonTelemetry:
    def test_design_json_carries_solve_stats(self, capsys):
        assert main(["design", "S1", "--widths", "16,16", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        for key in (
            "wall_time",
            "nodes",
            "lp_solves",
            "lp_iterations",
            "incumbent_updates",
            "cache_hit",
        ):
            assert key in stats
        assert stats["cache_hit"] is False
        assert stats["nodes"] >= 1
        assert payload["status"] == "optimal"

    def test_design_json_cache_flag_roundtrip(self, capsys, tmp_path):
        args = ["design", "S1", "--widths", "16,16", "--json", "--cache", str(tmp_path)]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["stats"]["cache_hit"] is False
        assert warm["stats"]["cache_hit"] is True
        assert warm["makespan"] == cold["makespan"]
        assert warm["assignment"] == cold["assignment"]

    def test_sweep_prints_telemetry_footer(self, capsys):
        assert main(["sweep", "S1", "--total-width", "24", "--buses", "2"]) == 0
        out = capsys.readouterr().out
        assert "B&B nodes" in out and "solves" in out

    def test_experiments_jobs_flag(self, capsys):
        assert main(["experiments", "T1", "--jobs", "2"]) == 0
        assert "T1" in capsys.readouterr().out
