"""Tests for DesignProblem resolution and the ILP formulation."""

import numpy as np
import pytest

from repro.core import DesignProblem, build_assignment_ilp
from repro.ilp import Status
from repro.tam import Assignment, TamArchitecture
from repro.util.errors import InfeasibleError, ValidationError


class TestProblemResolution:
    def test_pairs_normalized_and_deduped(self, s1, arch3):
        problem = DesignProblem(
            soc=s1, arch=arch3, extra_forbidden=[(3, 1), (1, 3)], extra_forced=[(5, 0)]
        )
        assert problem.forbidden_pairs == ((1, 3),)
        assert problem.forced_pairs == ((0, 5),)

    def test_self_pair_rejected(self, s1, arch3):
        with pytest.raises(ValidationError):
            DesignProblem(soc=s1, arch=arch3, extra_forced=[(2, 2)])

    def test_out_of_range_pair_rejected(self, s1, arch3):
        with pytest.raises(ValidationError):
            DesignProblem(soc=s1, arch=arch3, extra_forbidden=[(0, 9)])

    def test_distance_requires_floorplan(self, s1, arch3):
        with pytest.raises(ValidationError):
            DesignProblem(soc=s1, arch=arch3, max_pair_distance=3.0)

    def test_bad_budgets_rejected(self, s1, arch3):
        with pytest.raises(ValidationError):
            DesignProblem(soc=s1, arch=arch3, power_budget=0)

    def test_power_budget_resolves_pairs(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, power_budget=150.0)
        assert problem.forced_pairs == ((2, 4),)  # c7552 + s5378 > 150

    def test_layout_budget_resolves_pairs(self, s1, arch3, s1_floorplan):
        problem = DesignProblem(
            soc=s1, arch=arch3, floorplan=s1_floorplan, max_pair_distance=5.0
        )
        assert len(problem.forbidden_pairs) == 8

    def test_contradictions_found_transitively(self, s1, arch3):
        problem = DesignProblem(
            soc=s1,
            arch=arch3,
            extra_forced=[(0, 1), (1, 2)],
            extra_forbidden=[(0, 2)],
        )
        assert problem.contradictions() == [(0, 2)]

    def test_timing_accepts_name_or_instance(self, s1, arch3, serial_timing):
        by_name = DesignProblem(soc=s1, arch=arch3, timing="serial")
        by_instance = DesignProblem(soc=s1, arch=arch3, timing=serial_timing)
        assert np.allclose(by_name.times, by_instance.times)

    def test_lower_bound_is_sound(self, s1, arch3, serial_timing):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        from repro.tam import exhaustive_optimal

        optimum = exhaustive_optimal(s1, arch3, serial_timing).makespan
        assert problem.makespan_lower_bound() <= optimum + 1e-9

    def test_constraint_summary_mentions_budgets(self, s1, arch3, s1_floorplan):
        problem = DesignProblem(
            soc=s1, arch=arch3, power_budget=100.0,
            floorplan=s1_floorplan, max_pair_distance=4.0,
        )
        text = problem.constraint_summary()
        assert "P_max" in text and "delta" in text


class TestValidate:
    def test_clean_assignment(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        assignment = Assignment(s1, arch3, (0, 1, 2, 0, 1, 2))
        assert problem.validate(assignment) == []

    def test_width_violation_reported(self, s1):
        narrow = TamArchitecture([4, 4])
        problem = DesignProblem(soc=s1, arch=narrow, timing="fixed")
        assignment = Assignment(s1, narrow, (0, 0, 0, 1, 1, 1))
        violations = problem.validate(assignment)
        assert any("width-infeasible" in v for v in violations)

    def test_forbidden_violation_reported(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, extra_forbidden=[(0, 1)])
        assignment = Assignment(s1, arch3, (0, 0, 1, 1, 2, 2))
        assert any("forbidden pair" in v for v in problem.validate(assignment))

    def test_forced_violation_reported(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, extra_forced=[(0, 1)])
        assignment = Assignment(s1, arch3, (0, 1, 1, 1, 2, 2))
        assert any("forced pair" in v for v in problem.validate(assignment))

    def test_arch_mismatch_reported(self, s1, arch3, arch2):
        problem = DesignProblem(soc=s1, arch=arch3)
        assignment = Assignment(s1, arch2, (0, 1, 0, 1, 0, 1))
        assert problem.validate(assignment) != []


class TestFormulation:
    def test_model_dimensions_unconstrained(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        formulation = build_assignment_ilp(problem)
        # 6 cores x 3 buses binaries + makespan
        assert formulation.model.num_vars == 19
        assert formulation.model.num_integer_vars == 18
        # 6 assignment rows + 3 bus rows
        assert formulation.model.num_constraints == 9

    def test_fixed_model_skips_narrow_buses(self, s1):
        arch = TamArchitecture([16, 4])
        problem = DesignProblem(soc=s1, arch=arch, timing="fixed")
        formulation = build_assignment_ilp(problem)
        # width-16 cores (c2670, c7552, s5378) only get the wide bus
        wide_only = [i for i, c in enumerate(s1) if c.test_width == 16]
        for i in wide_only:
            assert (i, 0) in formulation.x and (i, 1) not in formulation.x

    def test_core_fitting_no_bus_raises(self, s1):
        arch = TamArchitecture([4, 4])
        problem = DesignProblem(soc=s1, arch=arch, timing="fixed")
        with pytest.raises(InfeasibleError):
            build_assignment_ilp(problem)

    def test_constraint_counts_with_pairs(self, s1, arch3):
        problem = DesignProblem(
            soc=s1, arch=arch3, timing="serial",
            extra_forbidden=[(0, 1)], extra_forced=[(2, 3)],
        )
        formulation = build_assignment_ilp(problem)
        # + 3 forbidden rows + 3 forced rows
        assert formulation.model.num_constraints == 9 + 3 + 3

    def test_decode_roundtrip(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        formulation = build_assignment_ilp(problem)
        solution = formulation.model.solve()
        assert solution.status is Status.OPTIMAL
        assignment = formulation.decode(solution)
        assert problem.validate(assignment) == []
        assert assignment.makespan(problem.timing) == pytest.approx(solution.objective)

    def test_decode_rejects_infeasible_solution(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        formulation = build_assignment_ilp(problem)
        from repro.ilp.solution import Solution

        with pytest.raises(InfeasibleError):
            formulation.decode(Solution(Status.INFEASIBLE))
