"""Unit tests for the model-lint rules (M001-M008) and their plumbing."""

import math

import pytest

from repro.analysis import Severity, lint_model
from repro.analysis.model_lint import (
    DEFAULT_COEFF_SPREAD,
    ModelView,
    CoefficientSpread,
)
from repro.core.formulation import build_assignment_ilp
from repro.core.problem import DesignProblem
from repro.ilp import BINARY, INTEGER, Model
from repro.soc import build_s1
from repro.tam import TamArchitecture
from repro.util.errors import LintError


def rules_of(report):
    return sorted({d.rule for d in report})


def findings(report, rule):
    return [d for d in report if d.rule == rule]


class TestM001UnboundedInteger:
    def test_flags_infinite_upper_bound(self):
        m = Model()
        v = m.add_var("n", vartype=INTEGER)  # default ub = inf
        m.add_constr(v >= 1)
        m.minimize(v)
        found = findings(lint_model(m), "M001")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "upper" in found[0].message

    def test_bounded_integer_clean(self):
        m = Model()
        v = m.add_var("n", lb=0, ub=7, vartype=INTEGER)
        m.add_constr(v >= 1)
        m.minimize(v)
        assert not findings(lint_model(m), "M001")

    def test_unbounded_continuous_not_flagged(self):
        m = Model()
        v = m.add_var("t")  # continuous with ub = inf is routine (makespan)
        m.add_constr(v >= 1)
        m.minimize(v)
        assert not findings(lint_model(m), "M001")


class TestM002UnusedVariable:
    def test_flags_orphan(self):
        m = Model()
        x = m.add_binary("x")
        m.add_binary("ghost")
        m.add_constr(x <= 1)
        m.minimize(x)
        found = findings(lint_model(m), "M002")
        assert [d.location for d in found] == ["variable ghost"]

    def test_objective_only_variable_is_used(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        assert not findings(lint_model(m), "M002")


class TestM003ConstantConstraint:
    def test_trivially_true_is_warning(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x - x <= 1, name="cancelled")
        m.minimize(x)
        found = findings(lint_model(m), "M003")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_trivially_false_is_error(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x - x >= 2, name="impossible")
        m.minimize(x)
        found = findings(lint_model(m), "M003")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR


class TestM004DuplicateConstraint:
    def test_flags_identical_rows(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + y <= 1, name="first")
        m.add_constr(x + y <= 1, name="second")
        m.minimize(x)
        found = findings(lint_model(m), "M004")
        assert len(found) == 1
        assert "first" in found[0].message
        assert found[0].location == "constraint second"

    def test_different_rhs_not_duplicate(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + y <= 1)
        m.add_constr(x + y <= 2)  # redundant but not duplicate
        m.minimize(x)
        assert not findings(lint_model(m), "M004")


class TestM005InfeasibleByPropagation:
    def test_sum_of_binaries_cannot_reach_rhs(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + y >= 3, name="dead")
        m.minimize(x)
        found = findings(lint_model(m), "M005")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_equality_outside_interval(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=4)
        m.add_constr(x == 9, name="off")
        m.minimize(x)
        assert findings(lint_model(m), "M005")

    def test_satisfiable_row_clean(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + y >= 1)
        m.minimize(x)
        assert not findings(lint_model(m), "M005")


class TestM006RedundantByPropagation:
    def test_never_binding_row(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + y <= 5, name="loose")
        m.add_constr(x + y >= 1)
        m.minimize(x)
        found = findings(lint_model(m), "M006")
        assert [d.location for d in found] == ["constraint loose"]
        assert found[0].severity is Severity.INFO

    def test_unbounded_variable_row_not_redundant(self):
        m = Model()
        t = m.add_var("t")
        x = m.add_binary("x")
        m.add_constr(3 * x <= t)
        m.minimize(t)
        assert not findings(lint_model(m), "M006")


class TestM007PairContradiction:
    def build_contradictory_model(self):
        """Two cores, two buses: forced equal on every bus, forbidden on
        every bus — the paper's power and place-and-route encodings
        colliding head-on."""
        m = Model("collision")
        a = [m.add_var(f"x_a_b{j}", vartype=BINARY) for j in range(2)]
        b = [m.add_var(f"x_b_b{j}", vartype=BINARY) for j in range(2)]
        m.add_constr(a[0] + a[1] == 1, name="assign_a")
        m.add_constr(b[0] + b[1] == 1, name="assign_b")
        for j in range(2):
            m.add_constr(a[j] == b[j], name=f"pow_b{j}")
            m.add_constr(a[j] + b[j] <= 1, name=f"far_b{j}")
        m.minimize(a[0])
        return m

    def test_collision_and_dead_partition_reported(self):
        report = lint_model(self.build_contradictory_model())
        found = findings(report, "M007")
        assert all(d.severity is Severity.ERROR for d in found)
        locations = {d.location for d in found}
        # Both at-most-one rows collide, and both assignment rows die.
        assert {"constraint far_b0", "constraint far_b1"} <= locations
        assert {"constraint assign_a", "constraint assign_b"} <= locations

    def test_seeded_buggy_model_acceptance(self):
        """The acceptance scenario: unused variable + contradictory pair
        constraints, each with the right rule id."""
        m = self.build_contradictory_model()
        m.add_binary("ghost")
        report = lint_model(m)
        assert "M002" in rules_of(report)
        assert "M007" in rules_of(report)
        assert report.has_errors

    def test_forced_without_forbidden_clean(self):
        m = Model()
        a = [m.add_var(f"x_a_b{j}", vartype=BINARY) for j in range(2)]
        b = [m.add_var(f"x_b_b{j}", vartype=BINARY) for j in range(2)]
        m.add_constr(a[0] + a[1] == 1, name="assign_a")
        m.add_constr(b[0] + b[1] == 1, name="assign_b")
        for j in range(2):
            m.add_constr(a[j] == b[j], name=f"pow_b{j}")
        m.minimize(a[0])
        assert not findings(lint_model(m), "M007")

    def test_real_contradictory_problem_is_flagged(self, s1):
        problem = DesignProblem(
            soc=s1,
            arch=TamArchitecture([16, 16, 16]),
            timing="serial",
            extra_forced=((0, 1),),
            extra_forbidden=((0, 1),),
        )
        formulation = build_assignment_ilp(problem)
        assert "M007" in rules_of(lint_model(formulation.model))


class TestM008CoefficientSpread:
    def test_flags_wide_spread(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(1e-6 * x + 1e6 * y <= 1e6)
        m.minimize(x)
        found = findings(lint_model(m), "M008")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_threshold_is_configurable(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + 100 * y <= 100)
        m.minimize(x)
        assert not findings(lint_model(m), "M008")
        strict = lint_model(m, rules=[CoefficientSpread(threshold=10)])
        assert findings(strict, "M008")
        assert DEFAULT_COEFF_SPREAD > 10


class TestViews:
    def test_matrix_form_matches_model_verdict(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_binary("ghost")
        m.add_constr(x + y >= 3, name="dead")
        m.minimize(x)
        from_model = lint_model(m)
        from_matrix = lint_model(m.to_matrix_form())
        assert "M005" in rules_of(from_model)
        assert "M005" in rules_of(from_matrix)
        assert "M002" in rules_of(from_matrix)

    def test_ge_rows_survive_matrix_negation(self):
        # to_matrix_form stores GE rows as negated LE rows; propagation must
        # reach the same infeasibility verdict on both representations.
        m = Model()
        x = m.add_var("x", lb=0, ub=1)
        m.add_constr(x >= 2, name="dead")
        m.minimize(x)
        assert findings(lint_model(m.to_matrix_form()), "M005")

    def test_view_accepts_prebuilt(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        view = ModelView.from_model(m)
        assert not lint_model(view).has_errors


class TestSolveGate:
    def test_error_gate_raises_with_report(self):
        m = Model("gated")
        x = m.add_binary("x")
        m.add_constr(x >= 2, name="dead")
        m.minimize(x)
        with pytest.raises(LintError) as excinfo:
            m.solve(lint="error")
        assert excinfo.value.report.has_errors
        assert "M005" in rules_of(excinfo.value.report)

    def test_warn_gate_prints_and_solves(self, capsys):
        m = Model("warned")
        x = m.add_binary("x")
        m.add_binary("ghost")
        m.add_constr(x <= 1)
        m.minimize(x)
        solution = m.solve(lint="warn")
        assert solution.is_optimal
        assert "M002" in capsys.readouterr().err

    def test_clean_model_passes_error_gate(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constr(x + y >= 1)
        m.minimize(x + 2 * y)
        solution = m.solve(lint="error")
        assert solution.is_optimal
        assert solution.objective == pytest.approx(1.0)

    def test_bad_lint_mode_rejected(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        with pytest.raises(ValueError):
            m.solve(lint="loud")


class TestProblemLint:
    def test_clean_instance(self, s1):
        problem = DesignProblem(
            soc=s1, arch=TamArchitecture([16, 16, 16]), timing="serial",
            power_budget=150.0,
        )
        report = problem.lint()
        assert not report.has_errors
        assert not report.warnings

    def test_p001_contradiction(self, s1):
        problem = DesignProblem(
            soc=s1, arch=TamArchitecture([16, 16, 16]), timing="serial",
            extra_forced=((2, 3),), extra_forbidden=((2, 3),),
        )
        report = problem.lint()
        assert [d.rule for d in report.errors] == ["P001"]

    def test_p002_width_infeasible_core(self, s1):
        widest = max(core.test_width for core in s1)
        problem = DesignProblem(
            soc=s1, arch=TamArchitecture([widest - 1, widest - 1]), timing="fixed",
        )
        rules = {d.rule for d in problem.lint().errors}
        assert "P002" in rules

    def test_p003_single_hot_core(self, s1):
        hottest = max(core.test_power for core in s1)
        problem = DesignProblem(
            soc=s1, arch=TamArchitecture([16, 16, 16]), timing="serial",
            power_budget=hottest - 1.0,
        )
        report = problem.lint()
        assert any(d.rule == "P003" for d in report.warnings)

    def test_p004_forced_pair_without_common_bus(self, s1):
        # The only bus fits the narrow core but not the wide one; the forced
        # pair therefore has no common width-feasible home. (Under the
        # built-in timing models feasibility is upward-closed in bus width,
        # so P004 always co-occurs with the wide core's P002 — but it names
        # the *pair*, which is the actionable finding.)
        widths = sorted({core.test_width for core in s1})
        assert len(widths) > 1
        narrow = next(i for i, c in enumerate(s1) if c.test_width == widths[0])
        wide = next(i for i, c in enumerate(s1) if c.test_width == widths[-1])
        problem = DesignProblem(
            soc=s1,
            arch=TamArchitecture([widths[0]]),
            timing="fixed",
            extra_forced=((narrow, wide),),
        )
        rules = {d.rule for d in problem.lint().errors}
        assert "P004" in rules
        assert "P002" in rules


class TestShippedFormulationIsClean:
    def test_s1_power_instance(self, s1):
        problem = DesignProblem(
            soc=s1, arch=TamArchitecture([16, 16, 16]), timing="serial",
            power_budget=150.0,
        )
        formulation = build_assignment_ilp(problem)
        report = lint_model(formulation.model)
        assert not report.has_errors and not report.warnings

    def test_shared_core_zero_fixes_deduplicated(self, s1):
        # Two forced pairs sharing a core once emitted duplicate x == 0 rows
        # (caught by M004); the formulation now dedupes them.
        problem = DesignProblem(
            soc=s1,
            arch=TamArchitecture([max(c.test_width for c in s1), 4]),
            timing="fixed",
            extra_forced=((0, 1), (0, 2)),
        )
        formulation = build_assignment_ilp(problem)
        assert not [d for d in lint_model(formulation.model) if d.rule == "M004"]


def test_report_rendering_and_json():
    m = Model("demo")
    x = m.add_binary("x")
    m.add_binary("ghost")
    m.add_constr(x >= 2, name="dead")
    m.minimize(x)
    report = lint_model(m)
    text = report.render("demo title")
    assert text.startswith("demo title")
    assert "M005" in text and "M002" in text
    import json

    payload = json.loads(report.to_json(target="model"))
    assert payload["target"] == "model"
    assert payload["clean"] is False
    assert payload["counts"]["error"] == 1
    assert {d["rule"] for d in payload["diagnostics"]} == {"M002", "M005"}
    assert math.isfinite(len(report))
