"""Tests for the two-phase simplex, including randomized cross-checks vs HiGHS."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.ilp.simplex import solve_lp_simplex

INF = math.inf


def _solve(c, a_ub=(), b_ub=(), a_eq=(), b_eq=(), lb=None, ub=None):
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, INF) if ub is None else np.asarray(ub, dtype=float)
    return solve_lp_simplex(
        c,
        np.asarray(a_ub, dtype=float).reshape(-1, n) if len(a_ub) else np.zeros((0, n)),
        np.asarray(b_ub, dtype=float),
        np.asarray(a_eq, dtype=float).reshape(-1, n) if len(a_eq) else np.zeros((0, n)),
        np.asarray(b_eq, dtype=float),
        lb,
        ub,
    )


class TestHandCases:
    def test_textbook_maximization(self):
        # max 3x + 2y s.t. x + 2y <= 6, x <= 4, y <= 4  ->  x=4, y=1, obj 14
        res = _solve([-3, -2], a_ub=[[1, 2]], b_ub=[6], ub=[4, 4])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-14.0)
        np.testing.assert_allclose(res.x, [4.0, 1.0], atol=1e-8)

    def test_equality_constraint(self):
        res = _solve([1, 1], a_eq=[[1, 1]], b_eq=[3], ub=[2, 2])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(3.0)

    def test_infeasible(self):
        res = _solve([1], a_ub=[[1]], b_ub=[1], a_eq=[[1]], b_eq=[5], ub=[2])
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = _solve([-1])  # min -x, x >= 0, no ceiling
        assert res.status == "unbounded"

    def test_crossed_bounds_infeasible(self):
        res = _solve([1], lb=[2], ub=[1])
        assert res.status == "infeasible"

    def test_free_variable_split(self):
        # min x with x free and x >= -5 via a_ub: -x <= 5
        res = _solve([1], a_ub=[[-1]], b_ub=[5], lb=[-INF])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-5.0)

    def test_shifted_lower_bound(self):
        res = _solve([1], lb=[3], ub=[10])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(3.0)

    def test_degenerate_assignment_lp(self):
        # Fractional assignment polytope: min over doubly-stochastic 2x2.
        c = [1, 2, 2, 1]
        a_eq = [
            [1, 1, 0, 0],
            [0, 0, 1, 1],
            [1, 0, 1, 0],
            [0, 1, 0, 1],
        ]
        res = _solve(c, a_eq=a_eq, b_eq=[1, 1, 1, 1], ub=[1] * 4)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(2.0)

    def test_redundant_rows_handled(self):
        # Duplicate equality row exercises the artificial-stays-basic path.
        res = _solve([1, 1], a_eq=[[1, 1], [1, 1]], b_eq=[2, 2], ub=[2, 2])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(2.0)

    def test_negative_rhs_normalized(self):
        # -x <= -1  (i.e. x >= 1)
        res = _solve([1], a_ub=[[-1]], b_ub=[-1], ub=[5])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1.0)


@st.composite
def random_lp(draw):
    """Small random bounded LPs; bounded boxes keep them never unbounded."""
    n = draw(st.integers(1, 5))
    m = draw(st.integers(0, 4))
    coef = st.integers(-5, 5)
    c = [draw(coef) for _ in range(n)]
    a_ub = [[draw(coef) for _ in range(n)] for _ in range(m)]
    b_ub = [draw(st.integers(-3, 10)) for _ in range(m)]
    ub = [draw(st.integers(1, 6)) for _ in range(n)]
    return c, a_ub, b_ub, ub


class TestAgainstScipy:
    @given(random_lp())
    @settings(max_examples=60)
    def test_matches_highs_on_random_boxes(self, lp):
        c, a_ub, b_ub, ub = lp
        n = len(c)
        ours = _solve(c, a_ub=a_ub, b_ub=b_ub, ub=ub)
        ref = linprog(
            c,
            A_ub=np.array(a_ub).reshape(-1, n) if a_ub else None,
            b_ub=b_ub if a_ub else None,
            bounds=[(0, u) for u in ub],
            method="highs",
        )
        if ref.status == 0:
            assert ours.status == "optimal"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-7)
            # our x must be feasible too
            x = ours.x
            assert np.all(x >= -1e-9) and np.all(x <= np.array(ub) + 1e-9)
            if a_ub:
                assert np.all(np.array(a_ub) @ x <= np.array(b_ub) + 1e-7)
        elif ref.status == 2:
            assert ours.status == "infeasible"

    @given(st.integers(2, 6), st.integers(0, 100))
    @settings(max_examples=20)
    def test_random_equality_systems(self, n, seed):
        rng = np.random.default_rng(seed)
        a_eq = rng.integers(-3, 4, size=(2, n)).astype(float)
        x_feas = rng.uniform(0, 2, size=n)
        b_eq = a_eq @ x_feas  # feasible by construction
        c = rng.integers(-4, 5, size=n).astype(float)
        ub = np.full(n, 3.0)
        ours = _solve(c, a_eq=a_eq, b_eq=b_eq, ub=ub)
        ref = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=[(0, 3)] * n, method="highs")
        assert ours.status == "optimal"
        assert ref.status == 0
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
