"""Tests for the CLI front-end and the design report."""

import pytest

from repro.cli import main, resolve_soc
from repro.core import DesignProblem, design
from repro.core.report import design_report
from repro.layout import grid_place
from repro.soc import build_s1, dump_soc, save_soc
from repro.tam import TamArchitecture


class TestResolveSoc:
    def test_builtin_names(self):
        assert resolve_soc("S1").name == "S1"
        assert resolve_soc("s2").name == "S2"

    def test_synthetic_spec(self):
        soc = resolve_soc("SYN5:42")
        assert len(soc) == 5
        assert dump_soc(soc) == dump_soc(resolve_soc("syn5:42"))

    def test_synthetic_default_seed(self):
        assert len(resolve_soc("SYN3")) == 3

    def test_file_path(self, tmp_path):
        path = tmp_path / "x.soc"
        save_soc(build_s1(), path)
        assert resolve_soc(str(path)).name == "S1"


class TestCliCommands:
    def test_describe(self, capsys):
        assert main(["describe", "S1"]) == 0
        out = capsys.readouterr().out
        assert "SOC S1" in out and "c7552" in out

    def test_design_plain(self, capsys):
        assert main(["design", "S1", "--widths", "16,16,16"]) == 0
        out = capsys.readouterr().out
        assert "TAM design report" in out
        assert "makespan:  5363" in out

    def test_design_constrained(self, capsys):
        code = main([
            "design", "S1", "--widths", "16,16,16",
            "--power-budget", "150", "--max-distance", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "constraints honored" in out
        assert "clean" in out

    def test_design_infeasible_returns_error(self, capsys):
        code = main(["design", "S1", "--widths", "4,4", "--timing", "fixed"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "S1", "--total-width", "12", "--buses", "2"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out and "distributions" in out

    def test_buscount(self, capsys):
        assert main(["buscount", "S1", "--total-width", "16", "--max-buses", "2"]) == 0
        out = capsys.readouterr().out
        assert "bus-count exploration" in out

    def test_minwidth(self, capsys):
        assert main(["minwidth", "S1", "--buses", "2", "--time-budget", "20000"]) == 0
        out = capsys.readouterr().out
        assert "min TAM width" in out and "binary search trace" in out

    def test_experiments_command(self, capsys):
        assert main(["experiments", "T1"]) == 0
        assert "T1" in capsys.readouterr().out

    def test_scipy_backend_flag(self, capsys):
        assert main(["design", "S1", "--widths", "16,16", "--backend", "scipy"]) == 0
        assert "scipy" in capsys.readouterr().out


class TestDesignReport:
    @pytest.fixture(scope="class")
    def constrained_result(self):
        soc = build_s1()
        problem = DesignProblem(
            soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial",
            power_budget=150.0, floorplan=grid_place(soc), max_pair_distance=7.0,
        )
        return design(problem)

    def test_report_sections(self, constrained_result):
        text = design_report(constrained_result)
        for fragment in (
            "TAM design report",
            "instance:",
            "solver:",
            "makespan:",
            "assignment:",
            "Schedule for S1",
            "power:",
            "worst concurrent pair",
            "routing:",
            "constraints honored",
        ):
            assert fragment in text, fragment

    def test_report_validates_clean(self, constrained_result):
        assert "clean" in design_report(constrained_result)

    def test_report_without_constraints_smaller(self):
        soc = build_s1()
        problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 16]), timing="serial")
        text = design_report(design(problem))
        assert "worst concurrent pair" not in text
        assert "routing:" not in text
