"""Tests for assignments, makespan evaluation, and the exhaustive oracle."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc import Soc, generate_synthetic_soc
from repro.soc.core import Core
from repro.tam import (
    Assignment,
    TamArchitecture,
    evaluate_makespan,
    exhaustive_optimal,
    make_timing_model,
)
from repro.util.errors import InfeasibleError, ValidationError


def small_soc(n=4):
    cores = [
        Core(
            name=f"c{i}",
            num_inputs=5 + i,
            num_outputs=4,
            num_flipflops=20 * (i + 1),
            num_gates=500,
            num_patterns=10 + 5 * i,
            test_width=4,
            test_power=10.0 * (i + 1),
        )
        for i in range(n)
    ]
    return Soc("small", cores)


class TestAssignment:
    def test_wrong_length_rejected(self, s1, arch3):
        with pytest.raises(ValidationError):
            Assignment(s1, arch3, (0, 1))

    def test_out_of_range_bus_rejected(self, s1, arch3):
        with pytest.raises(ValidationError):
            Assignment(s1, arch3, (0, 1, 2, 0, 1, 3))

    def test_structure_queries(self, s1, arch3):
        assignment = Assignment(s1, arch3, (0, 0, 1, 1, 2, 2))
        assert assignment.cores_on_bus(0) == [0, 1]
        assert assignment.buses_used() == [0, 1, 2]
        assert assignment.shares_bus(0, 1)
        assert not assignment.shares_bus(0, 2)
        groups = assignment.groups()
        assert groups[2] == ["s5378", "s1196"]

    def test_bus_times_and_makespan(self, s1, arch3, serial_timing):
        assignment = Assignment(s1, arch3, (0, 0, 1, 1, 2, 2))
        times = assignment.bus_times(serial_timing)
        assert assignment.makespan(serial_timing) == max(times)
        total = sum(
            serial_timing.time_on_bus(core, 16) for core in s1
        )
        assert sum(times) == pytest.approx(total)

    def test_timing_feasibility(self, s1, fixed_timing):
        narrow = TamArchitecture([4, 4])
        assignment = Assignment(s1, narrow, (0,) * 6)
        assert not assignment.is_timing_feasible(fixed_timing)
        assert "INFEASIBLE" in assignment.describe(fixed_timing)

    @given(st.integers(0, 300))
    def test_evaluate_makespan_matches_assignment(self, seed):
        rng = np.random.default_rng(seed)
        soc = small_soc(5)
        arch = TamArchitecture([8, 8, 4])
        timing = make_timing_model("serial")
        bus_of = tuple(int(b) for b in rng.integers(0, 3, size=5))
        assignment = Assignment(soc, arch, bus_of)
        matrix = timing.matrix(soc, arch)
        assert evaluate_makespan(matrix, bus_of, 3) == pytest.approx(
            assignment.makespan(timing)
        )


class TestExhaustive:
    def _brute_force(self, soc, arch, timing, forbidden=(), forced=()):
        matrix = timing.matrix(soc, arch)
        best = math.inf
        for combo in itertools.product(range(arch.num_buses), repeat=len(soc)):
            if any(combo[a] == combo[b] for a, b in forbidden):
                continue
            if any(combo[a] != combo[b] for a, b in forced):
                continue
            span = evaluate_makespan(matrix, combo, arch.num_buses)
            best = min(best, span)
        return best

    def test_matches_plain_product_enumeration(self):
        soc = small_soc(5)
        arch = TamArchitecture([8, 6, 4])
        timing = make_timing_model("serial")
        expected = self._brute_force(soc, arch, timing)
        result = exhaustive_optimal(soc, arch, timing)
        assert result.makespan == pytest.approx(expected)

    def test_with_forbidden_pairs(self):
        soc = small_soc(5)
        arch = TamArchitecture([8, 8])
        timing = make_timing_model("serial")
        forbidden = [(0, 1), (2, 3)]
        expected = self._brute_force(soc, arch, timing, forbidden=forbidden)
        result = exhaustive_optimal(soc, arch, timing, forbidden_pairs=forbidden)
        assert result.makespan == pytest.approx(expected)
        for a, b in forbidden:
            assert not result.assignment.shares_bus(a, b)

    def test_with_forced_pairs(self):
        soc = small_soc(5)
        arch = TamArchitecture([8, 8, 8])
        timing = make_timing_model("serial")
        forced = [(0, 4), (1, 2)]
        expected = self._brute_force(soc, arch, timing, forced=forced)
        result = exhaustive_optimal(soc, arch, timing, forced_pairs=forced)
        assert result.makespan == pytest.approx(expected)
        for a, b in forced:
            assert result.assignment.shares_bus(a, b)

    def test_forced_chain_transitive(self):
        soc = small_soc(4)
        arch = TamArchitecture([8, 8])
        timing = make_timing_model("serial")
        result = exhaustive_optimal(soc, arch, timing, forced_pairs=[(0, 1), (1, 2)])
        assert result.assignment.shares_bus(0, 2)

    def test_contradictory_constraints_infeasible(self):
        soc = small_soc(3)
        arch = TamArchitecture([8, 8])
        timing = make_timing_model("serial")
        with pytest.raises(InfeasibleError):
            exhaustive_optimal(
                soc, arch, timing, forbidden_pairs=[(0, 1)], forced_pairs=[(0, 1)]
            )

    def test_too_many_forbidden_for_bus_count(self):
        soc = small_soc(3)
        arch = TamArchitecture([8, 8])
        timing = make_timing_model("serial")
        all_pairs = [(0, 1), (0, 2), (1, 2)]  # needs 3 buses
        with pytest.raises(InfeasibleError):
            exhaustive_optimal(soc, arch, timing, forbidden_pairs=all_pairs)

    def test_size_guard(self):
        soc = generate_synthetic_soc(20, seed=0)
        with pytest.raises(InfeasibleError):
            exhaustive_optimal(
                soc, TamArchitecture([16, 16]), make_timing_model("serial")
            )

    def test_s1_known_optimum(self, s1, arch3, serial_timing):
        result = exhaustive_optimal(s1, arch3, serial_timing)
        assert result.makespan == pytest.approx(5363.0)
        assert result.nodes_explored > 0

    @given(st.integers(0, 50))
    def test_random_instances_match_product_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        soc = generate_synthetic_soc(n, seed=seed, mode="parametric")
        widths = [int(w) for w in rng.choice([4, 8, 16], size=2)]
        arch = TamArchitecture(widths)
        timing = make_timing_model("serial")
        expected = self._brute_force(soc, arch, timing)
        result = exhaustive_optimal(soc, arch, timing)
        assert result.makespan == pytest.approx(expected)
