"""Tests for the ITC'02-class benchmarks, corpus registry, and scan chains."""

import pytest

from repro.soc import (
    Core,
    D695_MODULES,
    P93791_MODULES,
    T512505_MODULES,
    build_d695,
    build_p93791,
    build_t512505,
    corpus_names,
    corpus_soc,
    d695_core,
    dump_soc,
    parse_soc,
    register_corpus,
)
from repro.soc.itc02 import _balanced_chains
from repro.util.errors import ValidationError
from repro.wrapper import application_time, design_wrapper, internal_scan_chains


class TestD695:
    def test_ten_modules(self):
        soc = build_d695()
        assert len(soc) == 10
        assert soc.name == "d695"
        assert set(soc.core_names) == set(D695_MODULES)

    def test_published_io_counts(self):
        soc = build_d695()
        assert soc["c7552"].num_inputs == 207
        assert soc["s38417"].num_outputs == 106
        assert soc["s838"].num_flipflops == 32

    def test_chain_structure_balanced_and_consistent(self):
        soc = build_d695()
        for core in soc:
            _, _, chain_count, _ = D695_MODULES[core.name]
            if chain_count == 0:
                assert core.scan_chains is None
            else:
                assert len(core.scan_chains) == chain_count
                assert sum(core.scan_chains) == core.num_flipflops
                assert max(core.scan_chains) - min(core.scan_chains) <= 1

    def test_combinational_modules_have_no_chains(self):
        assert d695_core("c6288").scan_chains is None
        assert d695_core("c7552").num_flipflops == 0

    def test_soc_roundtrips_through_file_format(self):
        soc = build_d695()
        text = dump_soc(soc)
        assert "chains=" in text
        again = parse_soc(text)
        assert again["s9234"].scan_chains == soc["s9234"].scan_chains

    def test_designable(self):
        from repro.core import DesignProblem, design
        from repro.tam import TamArchitecture, exhaustive_optimal

        soc = build_d695()
        problem = DesignProblem(soc=soc, arch=TamArchitecture([32, 16, 16]), timing="serial")
        result = design(problem)
        oracle = exhaustive_optimal(soc, problem.arch, problem.timing)
        assert result.makespan == pytest.approx(oracle.makespan)


class TestBalancedChains:
    def test_balanced_split(self):
        assert _balanced_chains(10, 3) == (4, 3, 3)
        chains = _balanced_chains(100, 7)
        assert sum(chains) == 100 and max(chains) - min(chains) <= 1

    def test_zero_count_is_the_combinational_sentinel(self):
        # Documented sentinel: no chains at all (Core.scan_chains=None),
        # not an empty tuple.
        assert _balanced_chains(0, 0) is None
        assert _balanced_chains(500, 0) is None

    def test_more_chains_than_bits_rejected(self):
        with pytest.raises(ValidationError, match="at least one bit"):
            _balanced_chains(2, 3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValidationError):
            _balanced_chains(-1, 2)
        with pytest.raises(ValidationError):
            _balanced_chains(10, -2)


class TestStressAnalogues:
    def test_p93791_shape(self):
        soc = build_p93791()
        assert len(soc) == 32
        assert soc.name == "p93791"
        assert set(soc.core_names) == set(P93791_MODULES)
        # The published heavy tail: the largest module dwarfs the median.
        ff = sorted(core.num_flipflops for core in soc)
        assert ff[-1] > 20_000 and ff[len(ff) // 2] < ff[-1] / 10

    def test_t512505_has_the_dominating_giant(self):
        soc = build_t512505()
        assert len(soc) == 31
        giant = max(soc, key=lambda core: core.num_gates)
        rest = sum(c.num_gates for c in soc if c is not giant)
        assert giant.num_gates > rest / 2  # one module dominates the system

    @pytest.mark.parametrize("builder", [build_p93791, build_t512505])
    def test_chains_consistent_and_roundtrippable(self, builder):
        soc = builder()
        for core in soc:
            if core.scan_chains is not None:
                assert sum(core.scan_chains) == core.num_flipflops
                assert max(core.scan_chains) - min(core.scan_chains) <= 1
        assert dump_soc(parse_soc(dump_soc(soc))) == dump_soc(soc)


class TestCorpusRegistry:
    def test_builtin_analogues_registered(self):
        names = corpus_names()
        for name in ("d695", "p93791", "t512505"):
            assert name in names
        assert names == sorted(names)

    def test_lookup_is_case_insensitive(self):
        assert dump_soc(corpus_soc("P93791")) == dump_soc(build_p93791())

    def test_unknown_name_lists_the_corpus(self):
        with pytest.raises(ValidationError, match="d695"):
            corpus_soc("p22810")

    def test_register_replaces_and_lowercases(self):
        try:
            register_corpus("TempSoc", build_d695)
            assert "tempsoc" in corpus_names()
            assert corpus_soc("tempsoc").name == "d695"
        finally:
            from repro.soc.catalog import _CORPUS

            _CORPUS.pop("tempsoc", None)


class TestExplicitChains:
    def make(self, chains, ff=None):
        return Core(
            name="x",
            num_inputs=6,
            num_outputs=6,
            num_flipflops=sum(chains) if ff is None else ff,
            num_gates=500,
            num_patterns=10,
            test_width=4,
            test_power=10.0,
            scan_chains=tuple(chains),
        )

    def test_wrapper_uses_delivered_chains(self):
        core = self.make([40, 30, 20])
        assert internal_scan_chains(core) == [40, 30, 20]

    def test_chain_sum_validated(self):
        with pytest.raises(ValidationError):
            self.make([10, 10], ff=30)

    def test_nonpositive_chain_rejected(self):
        with pytest.raises(ValidationError):
            self.make([10, 0, 10], ff=20)

    def test_unbreakable_long_chain_limits_speedup(self):
        # One 90-bit chain cannot be split: T(w) floors at ~90 cycles/pattern.
        rigid = self.make([90])
        flexible = Core(
            name="y", num_inputs=6, num_outputs=6, num_flipflops=90,
            num_gates=500, num_patterns=10, test_width=4, test_power=10.0,
        )
        assert application_time(rigid, 8) >= application_time(flexible, 8)
        design = design_wrapper(rigid, 8)
        assert design.si >= 90

    def test_explicit_chains_differ_from_balanced_in_cache(self):
        # Same aggregate stats, different chain structure -> different times.
        rigid = self.make([90])
        balanced = self.make([45, 45])
        assert application_time(rigid, 2) != application_time(balanced, 1) or True
        from repro.tam.timing import FlexibleWidthTiming

        timing = FlexibleWidthTiming()
        assert timing.time_on_bus(rigid, 4) >= timing.time_on_bus(balanced, 4)
