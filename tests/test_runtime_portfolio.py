"""The racing portfolio: policy, dispatch, cross-feed pruning, provenance."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    DEFAULT_PORTFOLIO_POLICY,
    DesignProblem,
    PortfolioPolicy,
    SolvePolicy,
    SolverOptions,
    TamArchitecture,
    build_d695,
    design,
    run_portfolio,
)
from repro.cli import main
from repro.ilp.solution import Status
from repro.runtime.portfolio import EntrantRecord, PortfolioReport
from repro.runtime.telemetry import RunTelemetry
from repro.util.errors import InfeasibleError


def _top2_power(soc) -> float:
    powers = sorted(core.test_power for core in soc.cores)
    return round(powers[-1] + powers[-2], 1)


@pytest.fixture(scope="module")
def d695_pw():
    """The power-constrained d695 instance where cross-feeding prunes."""
    soc = build_d695()
    return DesignProblem(
        soc,
        TamArchitecture((32, 16, 16, 8)),
        timing="serial",
        power_budget=_top2_power(soc),
    )


def race_policy(**portfolio_kwargs) -> SolvePolicy:
    return SolvePolicy(solver=SolverOptions(portfolio=PortfolioPolicy(**portfolio_kwargs)))


class TestPortfolioPolicy:
    def test_default_races_everything(self):
        assert DEFAULT_PORTFOLIO_POLICY.enabled
        assert DEFAULT_PORTFOLIO_POLICY.exact
        assert DEFAULT_PORTFOLIO_POLICY.heuristics == ("lpt", "sa")

    def test_disabled_is_distinct_from_unset(self):
        off = PortfolioPolicy.disabled()
        assert not off.enabled and not off.exact and off.heuristics == ()
        assert SolverOptions().portfolio is None

    def test_unknown_duplicate_and_negative_rejected(self):
        with pytest.raises(ValueError, match="unknown portfolio entrant"):
            PortfolioPolicy(entrants=("bnb", "tabu"))
        with pytest.raises(ValueError, match="duplicate"):
            PortfolioPolicy(entrants=("lpt", "lpt"))
        with pytest.raises(ValueError, match="sa_iterations"):
            PortfolioPolicy(sa_iterations=-1)

    def test_cache_token_excludes_jobs(self):
        assert (
            PortfolioPolicy(jobs=1).cache_token()
            == PortfolioPolicy(jobs=8).cache_token()
        )
        assert (
            PortfolioPolicy(seed=0).cache_token()
            != PortfolioPolicy(seed=1).cache_token()
        )

    def test_solver_options_token_carries_portfolio(self):
        plain = SolverOptions().cache_token()
        racing = SolverOptions(portfolio=PortfolioPolicy()).cache_token()
        assert plain != racing
        assert PortfolioPolicy().cache_token() in racing

    def test_round_trip_through_solve_policy_dicts(self):
        policy = SolvePolicy(
            deadline=2.0,
            solver=SolverOptions(
                portfolio=PortfolioPolicy(entrants=("lpt", "bnb"), seed=7, jobs=3)
            ),
        )
        again = SolvePolicy.from_dict(policy.as_dict())
        assert again == policy
        assert again.solver.portfolio.entrants == ("lpt", "bnb")
        assert again.solver.portfolio.jobs == 3


class TestDispatch:
    def test_design_dispatches_to_portfolio(self, d695_pw):
        result = design(d695_pw, policy=race_policy(), cache=False)
        assert result.portfolio is not None
        assert result.status is Status.OPTIMAL
        assert {record.name for record in result.portfolio.entrants} == {
            "lpt",
            "sa",
            "bnb",
        }
        assert "portfolio[" in result.describe()

    def test_non_bnb_backend_rejected(self, d695_pw):
        with pytest.raises(ValueError, match="portfolio"):
            design(d695_pw, backend="greedy", policy=race_policy(), cache=False)

    def test_incumbent_and_portfolio_are_exclusive(self, d695_pw):
        from repro.tam.assignment import Assignment

        incumbent = Assignment(
            d695_pw.soc, d695_pw.arch, tuple([0] * len(d695_pw.soc))
        )
        with pytest.raises(ValueError, match="incumbent"):
            design(d695_pw, policy=race_policy(), incumbent=incumbent, cache=False)

    def test_run_portfolio_requires_enabled_policy(self, d695_pw):
        with pytest.raises(ValueError, match="enabled portfolio"):
            run_portfolio(d695_pw, SolvePolicy())
        with pytest.raises(ValueError, match="enabled portfolio"):
            run_portfolio(
                d695_pw,
                SolvePolicy(solver=SolverOptions(portfolio=PortfolioPolicy.disabled())),
            )


class TestCrossFeed:
    def test_incumbent_prunes_the_exact_tree(self, d695_pw):
        cold = design(d695_pw, policy=SolvePolicy(), cache=False)
        raced = design(d695_pw, policy=race_policy(), cache=False)
        assert raced.status is Status.OPTIMAL
        assert raced.makespan == pytest.approx(cold.makespan)
        assert raced.portfolio.cross_fed
        bnb = raced.portfolio.entrant("bnb")
        assert bnb is not None
        assert bnb.nodes < cold.stats.nodes  # the cross-fed cutoff prunes

    def test_explicit_incumbent_matches_warm_start_channel(self, d695_pw):
        from repro.core.baselines import lpt_assignment

        incumbent = lpt_assignment(d695_pw).assignment
        warm = design(d695_pw, incumbent=incumbent, cache=False)
        cold = design(d695_pw, cache=False)
        assert warm.status is Status.OPTIMAL
        assert warm.makespan == pytest.approx(cold.makespan)
        assert warm.stats.nodes <= cold.stats.nodes

    def test_tie_attribution_goes_to_the_heuristic(self, d695_pw):
        # On this instance the SA incumbent is optimal: B&B only proves it,
        # so the heuristic keeps the win.
        raced = design(d695_pw, policy=race_policy(), cache=False)
        heur_best = min(
            record.makespan
            for record in raced.portfolio.entrants
            if record.name != "bnb" and record.makespan is not None
        )
        if heur_best == pytest.approx(raced.makespan):
            assert raced.portfolio.winner != "bnb"

    def test_budget_sharing_floors_the_exact_leg(self, d695_pw):
        # A deadline smaller than any heuristic's wall still leaves B&B its
        # MIN_EXACT_BUDGET floor: the race completes and reports the shared
        # deadline it ran under.
        raced = design(
            d695_pw,
            policy=SolvePolicy(
                deadline=0.001,
                solver=SolverOptions(portfolio=PortfolioPolicy()),
            ),
            cache=False,
        )
        assert raced.portfolio.shared_deadline == pytest.approx(0.001)
        assert raced.portfolio.entrant("bnb") is not None
        assert raced.makespan > 0


class TestHeuristicOnly:
    def test_certified_gap_and_provenance(self, d695_pw):
        result = design(
            d695_pw, policy=race_policy(entrants=("lpt", "sa")), cache=False
        )
        assert result.status is Status.FEASIBLE
        assert result.backend == "portfolio"
        assert result.portfolio.winner in ("lpt", "sa")
        assert not result.portfolio.cross_fed
        assert result.stats.best_bound is not None
        assert result.portfolio.gap is not None and result.portfolio.gap >= 0.0
        # The certified bound really is a lower bound on the exact optimum.
        exact = design(d695_pw, cache=False)
        assert result.stats.best_bound <= exact.makespan + 1e-9
        assert result.makespan >= exact.makespan - 1e-9
        assert result.fallback is not None
        assert result.fallback.source == result.portfolio.winner

    def test_infeasible_when_no_entrant_succeeds(self):
        soc = build_d695()
        # Under fixed-width timing the 32-wide s38584 fits no 16/8 bus, so
        # every heuristic fails and the heuristic-only race must say so.
        problem = DesignProblem(soc, TamArchitecture((16, 8)), timing="fixed")
        with pytest.raises(InfeasibleError):
            design(problem, policy=race_policy(entrants=("lpt", "sa")), cache=False)


class TestReportSurface:
    def test_entrant_record_and_report_dicts(self):
        record = EntrantRecord(
            name="lpt", status="feasible", makespan=10.0, wall_time=0.1
        )
        report = PortfolioReport(
            winner="lpt",
            gap=0.0,
            best_bound=10.0,
            cross_fed=True,
            shared_deadline=None,
            wall_time=0.2,
            entrants=[record],
        )
        payload = report.as_dict()
        assert payload["winner"] == "lpt"
        assert payload["entrants"][0] == record.as_dict()
        assert report.entrant("lpt") is record
        assert report.entrant("bnb") is None
        text = report.render()
        assert "lpt=feasible@10" in text and "cross-fed" in text

    def test_telemetry_counts_races(self):
        telemetry = RunTelemetry()
        telemetry.record_portfolio(None)  # no-op
        telemetry.record_portfolio(
            PortfolioReport(
                winner="sa", gap=0.0, best_bound=1.0, cross_fed=True,
                shared_deadline=None, wall_time=0.1,
            )
        )
        telemetry.record_portfolio(
            PortfolioReport(
                winner="bnb", gap=0.0, best_bound=1.0, cross_fed=False,
                shared_deadline=None, wall_time=0.1,
            )
        )
        assert telemetry.portfolio_runs == 2
        assert telemetry.portfolio_heuristic_wins == 1
        assert telemetry.portfolio_cross_fed == 1
        other = RunTelemetry()
        other.merge(telemetry)
        assert other.portfolio_runs == 2
        assert "portfolio races" in telemetry.render()


class TestCliAndWire:
    def test_design_portfolio_json_carries_provenance(self, capsys):
        assert (
            main(["design", "S1", "--widths", "16,16", "--portfolio", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        race = payload["portfolio"]
        assert race["winner"] in ("lpt", "sa", "bnb")
        assert {entry["name"] for entry in race["entrants"]} == {"lpt", "sa", "bnb"}
        assert race["gap"] is not None

    def test_entrants_flag_narrows_the_race(self, capsys):
        args = [
            "design", "S1", "--widths", "16,16",
            "--portfolio-entrants", "lpt,sa", "--json",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "feasible"
        assert {e["name"] for e in payload["portfolio"]["entrants"]} == {"lpt", "sa"}

    def test_no_portfolio_contradiction_rejected(self, capsys):
        args = [
            "design", "S1", "--widths", "16,16",
            "--no-portfolio", "--portfolio-seed", "3",
        ]
        assert main(args) != 0
