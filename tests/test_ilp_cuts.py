"""Tests for knapsack cover cuts and the branch-and-cut CutPolicy surface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CutPolicy
from repro.ilp import Model, Status, quicksum
from repro.ilp.cuts import Cut, CutPool, append_cuts, generate_cover_cuts
from repro.ilp.lp import solve_matrix_lp


def fractional_knapsack_model():
    """A knapsack whose LP relaxation is fractional and cover-cuttable."""
    m = Model("frac-ks")
    weights = [5, 5, 5, 5]
    xs = [m.add_binary(f"x{i}") for i in range(4)]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 12)
    m.maximize(quicksum((10 + i) * x for i, x in enumerate(xs)))
    return m, xs


class TestSeparation:
    def test_generates_violated_cut(self):
        m, _ = fractional_knapsack_model()
        form = m.to_matrix_form()
        relaxed = solve_matrix_lp(form)
        cuts = generate_cover_cuts(form, relaxed.x)
        assert cuts, "the fractional point must be separable"
        for row, rhs in cuts:
            assert row @ relaxed.x > rhs + 1e-6  # violated by x*
            # valid for every integer feasible point: any 3 items weigh 15 > 12
            assert rhs == pytest.approx(np.count_nonzero(row) - 1)

    def test_no_cut_at_integral_point(self):
        m, _ = fractional_knapsack_model()
        form = m.to_matrix_form()
        integral = np.array([1.0, 1.0, 0.0, 0.0, ])
        assert generate_cover_cuts(form, integral) == []

    def test_rows_with_negative_coeffs_skipped(self):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(2 * a - b <= 1)
        m.maximize(a + b)
        form = m.to_matrix_form()
        assert generate_cover_cuts(form, np.array([0.9, 0.9])) == []

    def test_non_binary_rows_skipped(self):
        from repro.ilp import INTEGER

        m = Model()
        a = m.add_var("a", ub=3, vartype=INTEGER)
        b = m.add_binary("b")
        m.add_constr(2 * a + 2 * b <= 3)
        m.maximize(a + b)
        form = m.to_matrix_form()
        assert generate_cover_cuts(form, np.array([0.9, 0.6])) == []

    def test_append_cuts_grows_system(self):
        m, _ = fractional_knapsack_model()
        form = m.to_matrix_form()
        relaxed = solve_matrix_lp(form)
        cuts = generate_cover_cuts(form, relaxed.x)
        bigger = append_cuts(form, cuts)
        assert bigger.a_ub.shape[0] == form.a_ub.shape[0] + len(cuts)
        # Cut bound is tighter (cuts remove the fractional vertex).
        recut = solve_matrix_lp(bigger)
        assert recut.objective >= relaxed.objective - 1e-9  # min-sense bound improves

    def test_append_empty_is_identity(self):
        m, _ = fractional_knapsack_model()
        form = m.to_matrix_form()
        assert append_cuts(form, []) is form


class TestLiftedCovers:
    def test_lifting_extends_equal_weight_cover(self):
        # Equal weights: every item qualifies for the extension E(C), so the
        # lifted cut covers all four supports while the rhs stays |C| - 1.
        m, _ = fractional_knapsack_model()
        form = m.to_matrix_form()
        relaxed = solve_matrix_lp(form)
        [(row, rhs)] = generate_cover_cuts(form, relaxed.x, max_cuts=1, lift=True)
        assert np.count_nonzero(row) == 4
        assert rhs == pytest.approx(2.0)

    def test_lifted_cut_valid_for_all_integer_points(self):
        m, xs = fractional_knapsack_model()
        form = m.to_matrix_form()
        relaxed = solve_matrix_lp(form)
        cuts = generate_cover_cuts(form, relaxed.x, lift=True)
        assert cuts
        weights = np.array([5.0, 5.0, 5.0, 5.0])
        for bits in range(2 ** len(xs)):
            x = np.array([(bits >> i) & 1 for i in range(len(xs))], dtype=float)
            if weights @ x <= 12:  # integer feasible
                for row, rhs in cuts:
                    assert row @ x <= rhs + 1e-9


class TestCutsInBnb:
    def test_same_optimum_with_cuts(self):
        m, _ = fractional_knapsack_model()
        plain = m.solve()
        with_cuts = m.solve(cut_policy=CutPolicy())
        assert with_cuts.status is Status.OPTIMAL
        assert with_cuts.objective == pytest.approx(plain.objective)
        assert with_cuts.stats.cuts > 0
        assert with_cuts.stats.cut_summary()["cuts"] == with_cuts.stats.cuts

    def test_cuts_close_this_instance_at_root(self):
        # The 4-item equal-weight knapsack is closed by one cover cut round.
        m, _ = fractional_knapsack_model()
        sol = m.solve(cut_policy=CutPolicy(rounds=3, max_depth=0), dive=False)
        assert sol.stats.nodes <= m.solve(dive=False).stats.nodes

    def test_root_cuts_kwarg_warns_and_still_works(self):
        m, _ = fractional_knapsack_model()
        plain = m.solve()
        with pytest.warns(DeprecationWarning, match="root_cuts"):
            shimmed = m.solve(root_cuts=3)
        assert shimmed.objective == pytest.approx(plain.objective)
        assert shimmed.stats.cuts > 0

    @given(st.integers(0, 200))
    @settings(max_examples=25)
    def test_random_knapsacks_match_scipy_with_cuts(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        weights = rng.integers(3, 20, size=n)
        profits = rng.integers(1, 25, size=n)
        cap = int(weights.sum() * 0.55)
        m = Model("rks")
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        m.add_constr(quicksum(int(w) * x for w, x in zip(weights, xs)) <= cap)
        m.maximize(quicksum(int(p) * x for p, x in zip(profits, xs)))
        ours = m.solve(cut_policy=CutPolicy(rounds=5))
        ref = m.solve(backend="scipy")
        assert ours.objective == pytest.approx(ref.objective)
        assert m.check_solution(ours.rounded()) == []

    def test_tam_instances_unaffected(self, s1, arch3):
        # TAM ILPs have equality + mixed-sign rows; cover cuts must be a
        # no-op there and the optimum must not change.
        from repro.core import DesignProblem, build_assignment_ilp

        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        model = build_assignment_ilp(problem).model
        plain = model.solve()
        cut = model.solve(cut_policy=CutPolicy())
        assert cut.objective == pytest.approx(plain.objective)


class TestCutPool:
    def _cut(self, cols, rhs=1.0, coefs=None):
        coefs = coefs or tuple(1.0 for _ in cols)
        return Cut(cols=tuple(cols), coefs=tuple(coefs), rhs=rhs, kind="clique")

    def test_dedupes_by_support_signature(self):
        pool = CutPool(max_size=8, max_age=3)
        assert pool.add(self._cut((0, 1)))
        assert not pool.add(self._cut((1, 0)))  # same support, reordered
        assert len(pool) == 1

    def test_capacity_cap_rejects_when_full(self):
        pool = CutPool(max_size=2, max_age=3)
        assert pool.add(self._cut((0, 1)))
        assert pool.add(self._cut((1, 2)))
        assert not pool.add(self._cut((2, 3)))
        assert len(pool) == 2

    def test_aging_drops_persistently_slack_cuts(self):
        pool = CutPool(max_size=8, max_age=1)
        pool.add(self._cut((0, 1)))  # x0 + x1 <= 1
        slack_x = np.array([0.0, 0.0, 0.0])
        binding_x = np.array([1.0, 0.0, 0.0])
        assert pool.age_and_prune(slack_x) == []  # age 1 == max_age: kept
        assert len(pool.age_and_prune(slack_x)) == 1  # age 2 > max_age: dropped
        assert len(pool) == 0
        pool.add(self._cut((0, 1)))
        pool.age_and_prune(slack_x)
        pool.age_and_prune(binding_x)  # binding resets the age counter
        assert pool.age_and_prune(slack_x) == []
        assert len(pool) == 1
