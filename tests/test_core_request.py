"""SolveRequest: the one request surface library, CLI, and service share.

Covers construction-time validation per kind, fingerprint semantics (what
is and is not result-affecting), the JSON wire round-trip, execution
parity with the direct library calls, and the CLI's request construction.
"""

from __future__ import annotations

import pytest

from repro.cli import _request_from_args, build_parser
from repro.core import DesignProblem, SolveRequest, design, resolve_soc
from repro.obs import SolvePolicy
from repro.tam import TamArchitecture
from repro.util.errors import ValidationError


def make_request(**overrides):
    base = {"kind": "design", "soc": "S1", "widths": (16, 16)}
    base.update(overrides)
    return SolveRequest(**base)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            SolveRequest(kind="tune", soc="S1")

    @pytest.mark.parametrize(
        "kind, fields",
        [
            ("design", {}),
            ("sweep", {"total_width": 24}),
            ("min_width", {"num_buses": 2}),
            ("bus_count", {"max_buses": 3}),
        ],
    )
    def test_missing_required_fields_rejected(self, kind, fields):
        with pytest.raises(ValidationError, match="missing required"):
            SolveRequest(kind=kind, soc="S1", **fields)

    def test_bad_timing_rejected(self):
        with pytest.raises(ValidationError, match="timing"):
            make_request(timing="quantum")

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            make_request(widths=(16, 0))
        with pytest.raises(ValidationError, match="positive"):
            SolveRequest(kind="sweep", soc="S1", total_width=-1, num_buses=2)
        with pytest.raises(ValidationError, match="positive"):
            make_request(jobs=0)

    def test_policy_must_be_a_policy(self):
        with pytest.raises(ValidationError, match="SolvePolicy"):
            make_request(policy={"node_budget": 3})

    def test_widths_and_options_are_canonicalized(self):
        a = make_request(widths=[16, 16], options={"b": 2, "a": 1})
        b = make_request(widths=(16, 16), options=(("a", 1), ("b", 2)))
        assert a == b
        assert a.widths == (16, 16)
        assert a.options == (("a", 1), ("b", 2))


class TestFingerprint:
    def test_jobs_never_changes_the_fingerprint(self):
        assert make_request(jobs=1).fingerprint() == make_request(jobs=4).fingerprint()

    def test_result_affecting_fields_change_the_fingerprint(self):
        base = make_request().fingerprint()
        assert make_request(widths=(16, 8)).fingerprint() != base
        assert make_request(soc="S2").fingerprint() != base
        assert make_request(timing="fixed").fingerprint() != base
        assert make_request(options={"presolve": False}).fingerprint() != base
        assert make_request(policy=SolvePolicy(node_budget=9)).fingerprint() != base

    def test_policy_checkpoint_dir_is_not_result_affecting(self):
        # The service injects a per-job checkpoint dir; that must never
        # split the dedupe identity of otherwise-equal requests.
        policy = SolvePolicy(node_budget=50)
        a = make_request(policy=policy)
        b = make_request(policy=policy.with_overrides(checkpoint_dir="/tmp/x"))
        assert a.fingerprint() == b.fingerprint()

    def test_request_options_fields_reach_cache_token(self):
        # Everything request_options() forwards must be fingerprinted
        # (flow rule D001 audits the same invariant structurally).
        token = make_request(
            backend="scipy", policy=SolvePolicy(node_budget=2), options={"k": 1}
        ).cache_token()
        assert "scipy" in token and "node_budget" in token and "k" in token


class TestWireFormat:
    def test_payload_round_trip(self):
        request = make_request(
            timing="fixed",
            power_budget=900.0,
            backend="bnb",
            policy=SolvePolicy(deadline=5.0, fallback=("lpt",)),
            jobs=2,
            options={"presolve": False},
        )
        assert SolveRequest.from_payload(request.as_payload()) == request

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ValidationError, match="widht"):
            SolveRequest.from_payload({"kind": "design", "soc": "S1", "widht": [8]})

    def test_payload_requires_kind_and_soc(self):
        with pytest.raises(ValidationError, match="kind"):
            SolveRequest.from_payload({"soc": "S1"})

    def test_payload_is_minimal(self):
        assert make_request().as_payload() == {
            "kind": "design",
            "soc": "S1",
            "widths": [16, 16],
        }


class TestExecutionParity:
    def test_design_request_matches_direct_library_call(self):
        request = make_request()
        via_request = request.run()
        direct = design(
            DesignProblem(
                soc=resolve_soc("S1"), arch=TamArchitecture([16, 16]), timing="serial"
            )
        )
        assert via_request.makespan == direct.makespan
        assert via_request.assignment.bus_of == direct.assignment.bus_of

    def test_run_payload_shape(self):
        payload = make_request().run_payload()
        for key in ("kind", "soc", "makespan", "status", "assignment", "stats"):
            assert key in payload
        assert payload["kind"] == "design"
        assert payload["status"] == "optimal"

    def test_sweep_request_runs(self):
        payload = SolveRequest(
            kind="sweep", soc="S1", total_width=24, num_buses=2
        ).run_payload()
        assert payload["kind"] == "sweep"
        assert payload["best"]["makespan"] > 0


class TestCliConstructsRequests:
    def test_design_args_become_the_canonical_request(self):
        args = build_parser().parse_args(["design", "S1", "--widths", "16,16"])
        request = _request_from_args("design", args)
        assert request == make_request()

    def test_policy_flags_reach_the_request(self):
        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--node-budget", "7"]
        )
        request = _request_from_args("design", args)
        assert request.policy is not None
        assert request.policy.node_budget == 7

    def test_cut_flags_reach_the_policy_solver_block(self):
        from repro.obs import CutPolicy

        args = build_parser().parse_args(["design", "S1", "--widths", "16,16", "--cuts"])
        request = _request_from_args("design", args)
        assert request.policy.solver.cuts == CutPolicy()

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--no-cuts"]
        )
        request = _request_from_args("design", args)
        assert request.policy.solver.cuts == CutPolicy.disabled()
        assert not request.policy.solver.cuts.enabled

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--cut-rounds", "5"]
        )
        request = _request_from_args("design", args)
        assert request.policy.solver.cuts.rounds == 5

    def test_presolve_and_warm_flags_reach_the_policy_solver_block(self):
        from repro.obs import PresolvePolicy

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--no-root-presolve", "--no-warm-lps"]
        )
        request = _request_from_args("design", args)
        assert request.policy.solver.root_presolve == PresolvePolicy.disabled()
        assert not request.policy.solver.root_presolve.enabled
        assert request.policy.solver.warm_start is False

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--root-presolve", "--warm-lps"]
        )
        request = _request_from_args("design", args)
        assert request.policy.solver.root_presolve == PresolvePolicy()
        assert request.policy.solver.warm_start is True

    def test_presolve_and_warm_flags_are_fingerprint_stable_on_the_wire(self):
        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--no-root-presolve", "--no-warm-lps"]
        )
        request = _request_from_args("design", args)
        rebuilt = SolveRequest.from_payload(request.as_payload())
        assert rebuilt == request
        assert rebuilt.fingerprint() == request.fingerprint()
        plain = _request_from_args(
            "design",
            build_parser().parse_args(["design", "S1", "--widths", "16,16"]),
        )
        assert rebuilt.fingerprint() != plain.fingerprint()

    def test_presolve_and_warm_flags_rejected_for_non_bnb_backend(self):
        from repro.util.errors import ValidationError

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--backend", "scipy",
             "--no-root-presolve"]
        )
        with pytest.raises(ValidationError, match="bnb"):
            _request_from_args("design", args)

    def test_contradictory_cut_flags_rejected(self):
        from repro.util.errors import ValidationError

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--no-cuts", "--cut-rounds", "3"]
        )
        with pytest.raises(ValidationError, match="contradict"):
            _request_from_args("design", args)

    def test_cut_flags_rejected_for_non_bnb_backend(self):
        from repro.util.errors import ValidationError

        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--backend", "scipy", "--cuts"]
        )
        with pytest.raises(ValidationError, match="bnb"):
            _request_from_args("design", args)

    def test_cut_flags_are_fingerprint_stable_on_the_wire(self):
        args = build_parser().parse_args(
            ["design", "S1", "--widths", "16,16", "--cut-rounds", "2"]
        )
        request = _request_from_args("design", args)
        rebuilt = SolveRequest.from_payload(request.as_payload())
        assert rebuilt == request
        assert rebuilt.fingerprint() == request.fingerprint()
        plain = _request_from_args(
            "design",
            build_parser().parse_args(["design", "S1", "--widths", "16,16"]),
        )
        assert plain.fingerprint() != request.fingerprint()

    def test_sweep_args_fingerprint_identically_across_flag_order(self):
        a = build_parser().parse_args(
            ["sweep", "S1", "--total-width", "24", "--buses", "2"]
        )
        b = build_parser().parse_args(
            ["sweep", "S1", "--buses", "2", "--total-width", "24"]
        )
        assert (
            _request_from_args("sweep", a).fingerprint()
            == _request_from_args("sweep", b).fingerprint()
        )
