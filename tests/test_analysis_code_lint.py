"""Unit tests for the AST code-lint rules (C001-C005) on synthetic fixtures."""

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.diagnostics import load_baseline


def lint(src, path="fixture.py"):
    return lint_source(textwrap.dedent(src), path)


def rules_of(report):
    return sorted(d.rule for d in report)


class TestC001RngDiscipline:
    def test_import_random(self):
        assert rules_of(lint("import random\n")) == ["C001"]

    def test_from_random_import(self):
        assert rules_of(lint("from random import shuffle\n")) == ["C001"]

    def test_import_numpy_random(self):
        assert rules_of(lint("import numpy.random\n")) == ["C001"]

    def test_from_numpy_import_random(self):
        assert rules_of(lint("from numpy import random\n")) == ["C001"]

    def test_np_random_attribute(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(0)
        """
        assert rules_of(lint(src)) == ["C001"]

    def test_rng_module_is_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert not lint_source(src, "src/repro/util/rng.py").diagnostics

    def test_unrelated_random_attribute_ok(self):
        # A .random attribute on something that is not the numpy module.
        src = "rng = make_rng(0)\nvalue = rng.random()\n"
        assert not lint(src).diagnostics

    def test_seeded_generator_through_helper_ok(self):
        src = """
        from repro.util.rng import make_rng
        rng = make_rng(42)
        """
        assert not lint(src).diagnostics


class TestC002MutableDefault:
    def test_list_literal(self):
        assert rules_of(lint("def f(x=[]):\n    return x\n")) == ["C002"]

    def test_dict_and_set_literals(self):
        assert rules_of(lint("def f(a={}, b=set()):\n    return a, b\n")) == ["C002", "C002"]

    def test_keyword_only_default(self):
        assert rules_of(lint("def f(*, x=[]):\n    return x\n")) == ["C002"]

    def test_constructor_call(self):
        assert rules_of(lint("def f(x=list()):\n    return x\n")) == ["C002"]

    def test_none_and_tuple_ok(self):
        assert not lint("def f(x=None, y=(), z=1):\n    return x, y, z\n").diagnostics


class TestC003ObjectiveEquality:
    def test_objective_attribute(self):
        assert rules_of(lint("assert sol.objective == 42\n")) == ["C003"]

    def test_makespan_on_either_side(self):
        assert rules_of(lint("ok = 100 == result.makespan\n")) == ["C003"]

    def test_not_equals_flagged(self):
        assert rules_of(lint("bad = sol.objective != best\n")) == ["C003"]

    def test_objective_value_call(self):
        assert rules_of(lint("same = model.objective_value(vals) == 7\n")) == ["C003"]

    def test_none_check_not_flagged(self):
        assert not lint("missing = sol.objective == None\n").diagnostics

    def test_tolerance_comparison_ok(self):
        assert not lint("close = abs(sol.objective - 42) < 1e-6\n").diagnostics

    def test_inline_waiver(self):
        report = lint("assert sol.objective == 42  # lint: ignore[C003]\n")
        assert not report.diagnostics
        assert [d.rule for d in report.waived] == ["C003"]

    def test_blanket_inline_waiver(self):
        report = lint("assert sol.objective == 42  # lint: ignore\n")
        assert not report.diagnostics


class TestC004BareExcept:
    def test_flagged(self):
        src = """
        try:
            risky()
        except:
            pass
        """
        assert rules_of(lint(src)) == ["C004"]

    def test_typed_except_ok(self):
        src = """
        try:
            risky()
        except ValueError:
            pass
        """
        assert not lint(src).diagnostics


class TestFrameworkPlumbing:
    def test_syntax_error_reported_not_raised(self):
        report = lint("def broken(:\n")
        assert rules_of(report) == ["C000"]
        assert report.has_errors

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("import random\n")
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import random\n")
        report = lint_paths([tmp_path])
        assert [d.rule for d in report] == ["C001"]
        assert "bad.py" in report.diagnostics[0].location

    def test_baseline_waives_by_rule_file_and_line(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text("import random\n\ndef f(x=[]):\n    return x\n")
        report = lint_paths([target])
        assert len(report) == 2
        report.apply_baseline(
            [{"rule": "C001", "file": "legacy.py", "line": 1, "reason": "grandfathered"}]
        )
        assert [d.rule for d in report] == ["C002"]
        assert [d.rule for d in report.waived] == ["C001"]

    def test_baseline_file_roundtrip(self, tmp_path):
        baseline = tmp_path / ".lint-baseline.json"
        baseline.write_text('{"waivers": [{"rule": "C002", "file": "legacy.py"}]}')
        assert load_baseline(baseline) == [{"rule": "C002", "file": "legacy.py"}]


class TestC005ExampleFacadeImports:
    def test_deep_import_in_example_is_flagged(self):
        src = "from repro.core import design\n"
        assert rules_of(lint(src, "examples/demo.py")) == ["C005"]

    def test_plain_module_import_is_flagged(self):
        assert rules_of(lint("import repro.ilp\n", "examples/demo.py")) == ["C005"]
        assert rules_of(lint("import repro\n", "examples/demo.py")) == ["C005"]

    def test_facade_import_is_allowed(self):
        src = "from repro.api import design, sweep_widths\n"
        assert rules_of(lint(src, "examples/demo.py")) == []

    def test_nested_examples_path_applies(self):
        src = "from repro.tam import TamArchitecture\n"
        assert rules_of(lint(src, "docs/examples/snippet.py")) == ["C005"]

    def test_non_example_code_is_exempt(self):
        src = "from repro.core import design\n"
        assert rules_of(lint(src, "src/repro/cli_helper.py")) == []
        assert rules_of(lint(src, "tests/test_design.py")) == []

    def test_third_party_imports_are_ignored(self):
        src = "import numpy as np\nfrom pathlib import Path\n"
        assert rules_of(lint(src, "examples/demo.py")) == []

    def test_inline_waiver(self):
        src = "from repro.core import design  # lint: ignore[C005]\n"
        report = lint(src, "examples/demo.py")
        assert not report.diagnostics
        assert [d.rule for d in report.waived] == ["C005"]


class TestWaiverEdgeCases:
    def test_multi_rule_inline_waiver(self):
        src = """\
        import random  # lint: ignore[C001,C003]
        """
        report = lint(src)
        assert not report.diagnostics
        assert [d.rule for d in report.waived] == ["C001"]

    def test_multi_rule_waiver_covers_both_findings_on_one_line(self):
        # C002 (mutable default) and C003 (objective ==) on the same line.
        src = """\
        def f(x=[], flag=a.objective == 3.0):  # lint: ignore[C002,C003]
            return x
        """
        report = lint(src)
        assert not report.diagnostics
        assert sorted(d.rule for d in report.waived) == ["C002", "C003"]

    def test_multi_rule_waiver_does_not_cover_unlisted_rule(self):
        src = """\
        def f(x=[]):  # lint: ignore[C001,C003]
            return x
        """
        report = lint(src)
        assert rules_of(report) == ["C002"]

    def test_waiver_on_decorator_line_covers_the_def(self):
        src = """\
        import functools

        @functools.lru_cache  # lint: ignore[C002]
        def f(x=[]):
            return x
        """
        report = lint(src)
        assert not report.diagnostics
        assert [d.rule for d in report.waived] == ["C002"]

    def test_waiver_on_multiline_signature_continuation(self):
        src = """\
        def f(
            a,
            x=[],  # lint: ignore[C002]
        ):
            return x
        """
        report = lint(src)
        assert not report.diagnostics
        assert [d.rule for d in report.waived] == ["C002"]

    def test_waiver_inside_decorated_def_body_does_not_apply(self):
        src = """\
        import functools

        @functools.lru_cache
        def f(x=[]):
            return x  # lint: ignore[C002]
        """
        report = lint(src)
        assert rules_of(report) == ["C002"]


class TestReportDeterminism:
    def test_canonical_order_is_path_line_rule(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\n\ndef f(x=[]):\n    return x\n")
        (tmp_path / "a.py").write_text("def g(y={}):\n    return y\n")
        report = lint_paths([tmp_path])
        keys = [(d.location, d.rule) for d in report]
        assert keys == sorted(
            keys, key=lambda k: (k[0].rsplit(":", 1)[0], int(k[0].rsplit(":", 1)[1]), k[1])
        )
        assert "a.py" in keys[0][0] and "b.py" in keys[-1][0]

    def test_normalize_dedupes_exact_duplicates(self):
        from repro.analysis.diagnostics import Diagnostic, LintReport, Severity

        diag = Diagnostic("C001", Severity.ERROR, "x.py:3", "dup")
        report = LintReport(diagnostics=[diag, diag])
        assert len(report.normalize()) == 1

    def test_two_runs_render_identically(self, tmp_path):
        (tmp_path / "m.py").write_text("import random\ndef f(x=[]):\n    return x\n")
        first = lint_paths([tmp_path]).render()
        second = lint_paths([tmp_path]).render()
        assert first == second


class TestStaleBaselineWaivers:
    def test_apply_baseline_returns_unmatched_waivers(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text("import random\n")
        report = lint_paths([target])
        stale = report.apply_baseline(
            [
                {"rule": "C001", "file": "legacy.py", "reason": "known"},
                {"rule": "C002", "file": "gone.py", "reason": "fixed long ago"},
            ]
        )
        assert [d.rule for d in report.waived] == ["C001"]
        assert stale == [{"rule": "C002", "file": "gone.py", "reason": "fixed long ago"}]

    def test_fresh_baseline_has_no_stale_entries(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text("import random\n")
        report = lint_paths([target])
        assert report.apply_baseline([{"rule": "C001", "file": "legacy.py"}]) == []


class TestRealTreeIsClean:
    def test_src_repro_passes(self):
        package_root = Path(__file__).resolve().parent.parent / "src" / "repro"
        assert package_root.is_dir()
        report = lint_paths([package_root])
        offenders = [d.render() for d in report]
        assert not offenders, "\n".join(offenders)

    def test_examples_respect_the_facade(self):
        examples_root = Path(__file__).resolve().parent.parent / "examples"
        assert examples_root.is_dir()
        report = lint_paths([examples_root])
        offenders = [d.render() for d in report]
        assert not offenders, "\n".join(offenders)
