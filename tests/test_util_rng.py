"""Tests for rng plumbing."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_distinct_seeds_differ(self):
        draws_a = make_rng(1).integers(1 << 30, size=4)
        draws_b = make_rng(2).integers(1 << 30, size=4)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent(self):
        parent = make_rng(3)
        children = spawn(parent, 3)
        streams = [tuple(child.integers(1 << 30, size=4)) for child in children]
        assert len(set(streams)) == 3

    def test_spawn_is_deterministic_given_seed(self):
        one = [tuple(c.integers(100, size=3)) for c in spawn(make_rng(9), 2)]
        two = [tuple(c.integers(100, size=3)) for c in spawn(make_rng(9), 2)]
        assert one == two

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)

    def test_zero_count(self):
        assert spawn(make_rng(0), 0) == []
