"""Tests for the solver fast path: node presolve, pseudocost branching,
delta-bound nodes, and the precomputed LP workspace.

The load-bearing property is *exactness*: none of the fast-path machinery
may ever change an optimum, only the work needed to prove it. The randomized
classes pin branch and bound — with every knob combination — against the
scipy/HiGHS MILP oracle on TAM-shaped assignment instances.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import INTEGER, BranchAndBoundSolver, Model, Status, quicksum
from repro.ilp.lp import LpWorkspace, solve_matrix_lp
from repro.ilp.presolve import (
    LB_TIGHTENED,
    UB_TIGHTENED,
    PropagationTables,
    propagate_bounds,
    reduced_cost_tighten,
)

_INT_TOL = 1e-6


def knapsack_model(weights, profits, capacity):
    m = Model("knapsack")
    xs = [m.add_binary(f"k{i}") for i in range(len(weights))]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(quicksum(p * x for p, x in zip(profits, xs)))
    return m, xs


def assignment_model(times):
    """Makespan-minimization assignment ILP — the paper's core formulation."""
    jobs, machines = times.shape
    m = Model("assign")
    x = {(i, j): m.add_binary(f"x{i}_{j}") for i in range(jobs) for j in range(machines)}
    T = m.add_var("T")
    for i in range(jobs):
        m.add_constr(quicksum(x[i, j] for j in range(machines)) == 1)
    for j in range(machines):
        m.add_constr(quicksum(int(times[i, j]) * x[i, j] for i in range(jobs)) <= T)
    m.minimize(T)
    return m


class TestPropagation:
    def _tables(self, model):
        form = model.to_matrix_form()
        return form, PropagationTables(form)

    def test_knapsack_row_fixes_oversized_item(self):
        # 5x0 + x1 <= 3 forces the binary x0 to 0.
        m = Model()
        x0, x1 = m.add_binary("a"), m.add_binary("b")
        m.add_constr(5 * x0 + x1 <= 3)
        m.maximize(x0 + x1)
        form, tables = self._tables(m)
        lb, ub = form.lb.copy(), form.ub.copy()
        feasible, changes = propagate_bounds(tables, lb, ub, form.integer_mask)
        assert feasible
        assert ub[x0.index] == 0.0
        assert (x0.index, UB_TIGHTENED, 0.0) in changes

    def test_ge_row_raises_lower_bound(self):
        # 3x >= 7 with x integer in [0, 9] forces x >= 3.
        m = Model()
        x = m.add_var("x", lb=0, ub=9, vartype=INTEGER)
        m.add_constr(3 * x >= 7)
        m.minimize(x)
        form, tables = self._tables(m)
        lb, ub = form.lb.copy(), form.ub.copy()
        feasible, changes = propagate_bounds(tables, lb, ub, form.integer_mask)
        assert feasible
        assert lb[x.index] == 3.0
        assert any(j == x.index and kind == LB_TIGHTENED for j, kind, _ in changes)

    def test_detects_infeasibility_without_lp(self):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(a + b >= 3)
        m.minimize(a + b)
        form, tables = self._tables(m)
        lb, ub = form.lb.copy(), form.ub.copy()
        feasible, _ = propagate_bounds(tables, lb, ub, form.integer_mask)
        assert not feasible

    def test_objective_cutoff_row_prunes(self):
        # min a + b with both binary: any solution has objective >= 0, so a
        # cutoff of 0.5 forces both to 0; a cutoff of -1 proves infeasible.
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.minimize(a + b)
        form, tables = self._tables(m)
        lb, ub = form.lb.copy(), form.ub.copy()
        feasible, _ = propagate_bounds(tables, lb, ub, form.integer_mask, cutoff=0.5)
        assert feasible
        assert ub[a.index] == 0.0 and ub[b.index] == 0.0
        lb, ub = form.lb.copy(), form.ub.copy()
        lb[a.index] = 1.0  # branch a=1: no solution beats a cutoff of 0.5
        feasible, _ = propagate_bounds(tables, lb, ub, form.integer_mask, cutoff=0.5)
        assert not feasible

    def test_no_cutoff_means_objective_row_inert(self):
        m = Model()
        a = m.add_binary("a")
        m.minimize(a)
        form, tables = self._tables(m)
        lb, ub = form.lb.copy(), form.ub.copy()
        feasible, changes = propagate_bounds(tables, lb, ub, form.integer_mask, cutoff=None)
        assert feasible and changes == []

    def test_propagation_never_cuts_integer_points(self):
        # Every integer-feasible point of a random model stays inside the
        # propagated box (validity of the tightenings).
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(2, 6))
            weights = rng.integers(1, 9, size=n)
            cap = int(rng.integers(4, int(weights.sum()) + 1))
            m, xs = knapsack_model(weights.tolist(), rng.integers(1, 9, size=n).tolist(), cap)
            form = m.to_matrix_form()
            tables = PropagationTables(form)
            lb, ub = form.lb.copy(), form.ub.copy()
            feasible, _ = propagate_bounds(tables, lb, ub, form.integer_mask)
            assert feasible
            for bits in range(2**n):
                point = np.array([(bits >> i) & 1 for i in range(n)], dtype=float)
                if weights @ point <= cap:
                    assert np.all(point >= lb[: n] - 1e-9)
                    assert np.all(point <= ub[: n] + 1e-9)


class TestReducedCostFixing:
    def test_positive_reduced_cost_caps_upper_bound(self):
        # Root optimum 0 with rc_j = 4 and cutoff 3: x_j can move up by at
        # most floor(3/4) = 0, fixing the variable at its root lower bound.
        rc = np.array([4.0, 0.0])
        root_lb = np.zeros(2)
        root_ub = np.ones(2)
        lb, ub = root_lb.copy(), root_ub.copy()
        fixed = reduced_cost_tighten(
            rc, root_lb, root_ub, 0.0, 3.0, lb, ub, np.array([True, True])
        )
        assert fixed == 1
        assert ub[0] == 0.0 and ub[1] == 1.0

    def test_negative_reduced_cost_raises_lower_bound(self):
        rc = np.array([-4.0])
        root_lb = np.zeros(1)
        root_ub = np.ones(1)
        lb, ub = root_lb.copy(), root_ub.copy()
        fixed = reduced_cost_tighten(
            rc, root_lb, root_ub, 0.0, 3.0, lb, ub, np.array([True])
        )
        assert fixed == 1
        assert lb[0] == 1.0

    def test_wide_gap_fixes_nothing(self):
        rc = np.array([4.0])
        lb, ub = np.zeros(1), np.ones(1)
        fixed = reduced_cost_tighten(
            rc, lb.copy(), ub.copy(), 0.0, 100.0, lb, ub, np.array([True])
        )
        assert fixed == 0

    def test_never_cuts_improving_solutions_randomized(self):
        # Any integer point strictly better than the cutoff must survive the
        # fixing — checked by brute force on random binary knapsacks.
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(2, 6))
            weights = rng.integers(1, 9, size=n)
            profits = rng.integers(1, 9, size=n)
            cap = int(rng.integers(4, int(weights.sum()) + 1))
            m, _ = knapsack_model(weights.tolist(), profits.tolist(), cap)
            form = m.to_matrix_form()
            root = solve_matrix_lp(form, want_reduced_costs=True)
            assert root.status == "optimal" and root.reduced_costs is not None
            best = -math.inf
            points = []
            for bits in range(2**n):
                point = np.array([(bits >> i) & 1 for i in range(n)], dtype=float)
                if weights @ point <= cap:
                    value = float(form.c @ point)  # minimization sense
                    points.append((point, value))
                    best = max(best, -value)
            cutoff = -best + 0.5  # keep only the optimum
            lb, ub = form.lb.copy(), form.ub.copy()
            reduced_cost_tighten(
                root.reduced_costs, form.lb, form.ub, root.objective,
                cutoff, lb, ub, form.integer_mask,
            )
            for point, value in points:
                if value < cutoff:
                    assert np.all(point >= lb - 1e-9) and np.all(point <= ub + 1e-9)


class TestLpWorkspace:
    def test_workspace_path_matches_plain_path(self):
        rng = np.random.default_rng(3)
        m = assignment_model(rng.integers(1, 30, size=(5, 3)))
        form = m.to_matrix_form()
        ws = LpWorkspace(form)
        for _ in range(5):
            lb, ub = form.lb.copy(), form.ub.copy()
            j = int(rng.integers(0, form.num_vars - 1))
            ub[j] = 0.0
            plain = solve_matrix_lp(form, lb=lb, ub=ub)
            fast = solve_matrix_lp(form, lb=lb, ub=ub, workspace=ws)
            assert plain.status == fast.status
            if plain.status == "optimal":
                assert fast.objective == pytest.approx(plain.objective, abs=1e-9)
                assert np.allclose(fast.x, plain.x, atol=1e-9)

    def test_bounds_buffer_is_reused(self):
        m, _ = knapsack_model([2, 3], [1, 1], 4)
        ws = LpWorkspace(m.to_matrix_form())
        first = ws.bounds_array(np.zeros(2), np.ones(2))
        second = ws.bounds_array(np.ones(2), np.ones(2))
        assert first is second


def _scalar_fractional_index(int_indices, x, branching):
    """The historical Python-loop rule, kept as the tie-breaking reference."""
    best, best_score = None, -1.0
    for j in int_indices:
        frac = abs(x[j] - round(x[j]))
        if frac <= _INT_TOL:
            continue
        if branching == "first":
            return int(j)
        score = min(frac, 1.0 - frac)
        if score > best_score:
            best, best_score = int(j), score
    return best


class TestFractionalIndex:
    @given(st.integers(0, 1000), st.sampled_from(["most_fractional", "first"]))
    @settings(max_examples=60)
    def test_matches_scalar_reference(self, seed, branching):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 12))
        m = Model("frac")
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        m.add_constr(quicksum(xs) <= n)
        m.maximize(quicksum(xs))
        solver = BranchAndBoundSolver(m, branching=branching)
        # Quantized values make exact ties common — the interesting case.
        x = rng.integers(0, 8, size=n) / 8.0
        expected = _scalar_fractional_index(solver._int_indices, x, branching)
        assert solver._fractional_index(x) == expected

    def test_all_integral_returns_none(self):
        m, _ = knapsack_model([1, 2], [1, 1], 3)
        solver = BranchAndBoundSolver(m)
        assert solver._fractional_index(np.array([1.0, 0.0])) is None

    def test_pseudocost_rule_dives_like_most_fractional(self):
        # _fractional_index is also the dive's rule: under "pseudocost" it
        # must fall back to most-fractional scoring, not "first".
        m, _ = knapsack_model([1, 2, 3], [1, 1, 1], 3)
        solver = BranchAndBoundSolver(m, branching="pseudocost")
        x = np.array([0.9, 0.5, 0.0])
        assert solver._fractional_index(x) == 1


class TestExactnessWithFastPath:
    """Presolve and pseudocost must never change an optimum."""

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_assignment_oracle_agreement(self, seed):
        rng = np.random.default_rng(seed)
        jobs, machines = int(rng.integers(3, 7)), int(rng.integers(2, 4))
        m = assignment_model(rng.integers(1, 30, size=(jobs, machines)))
        ref = m.solve(backend="scipy")
        for options in (
            {},  # defaults: presolve on, pseudocost
            {"presolve": False},
            {"branching": "most_fractional"},
            {"presolve": False, "branching": "most_fractional"},  # the old solver
        ):
            ours = m.solve(cache=False, **options)
            assert ours.status is Status.OPTIMAL
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6), options

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_knapsack_oracle_agreement(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 9))
        weights = rng.integers(1, 20, size=n).tolist()
        profits = rng.integers(1, 20, size=n).tolist()
        m, _ = knapsack_model(weights, profits, int(sum(weights) * 0.5) + 1)
        ref = m.solve(backend="scipy")
        fast = m.solve(cache=False)
        slow = m.solve(cache=False, presolve=False, branching="most_fractional")
        assert fast.objective == pytest.approx(ref.objective, abs=1e-6)
        assert slow.objective == pytest.approx(ref.objective, abs=1e-6)

    def test_presolve_stats_populated(self):
        rng = np.random.default_rng(0)
        m = assignment_model(rng.integers(1, 30, size=(8, 3)))
        sol = m.solve(cache=False)
        assert sol.stats.lp_solves >= sol.stats.nodes
        off = m.solve(cache=False, presolve=False)
        assert off.stats.presolve_fixings == 0
        assert off.stats.presolve_pruned == 0

    def test_infeasible_still_infeasible_with_presolve(self):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(a + b >= 3)
        m.minimize(a + b)
        assert m.solve(cache=False).status is Status.INFEASIBLE
        assert m.solve(cache=False, presolve=False).status is Status.INFEASIBLE


class TestPseudocostRegression:
    def test_pseudocost_not_worse_on_fixed_instance(self):
        # Fixed-seed hard-ish assignment instance: the learned rule must not
        # expand more nodes than most-fractional. This pins the perf win the
        # fast path was built for; a regression here means the pseudocost
        # scores stopped steering the search.
        rng = np.random.default_rng(42)
        m = assignment_model(rng.integers(1, 50, size=(10, 3)))
        pc = m.solve(cache=False, presolve=False)
        mf = m.solve(cache=False, presolve=False, branching="most_fractional")
        assert pc.objective == pytest.approx(mf.objective)
        assert pc.stats.nodes <= mf.stats.nodes

    def test_presolve_reduces_nodes_on_fixed_instance(self):
        rng = np.random.default_rng(42)
        m = assignment_model(rng.integers(1, 50, size=(10, 3)))
        fast = m.solve(cache=False)
        slow = m.solve(cache=False, presolve=False, branching="most_fractional")
        assert fast.objective == pytest.approx(slow.objective)
        assert fast.stats.nodes <= slow.stats.nodes
