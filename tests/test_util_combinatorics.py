"""Unit and property tests for repro.util.combinatorics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.combinatorics import (
    bounded_compositions,
    compositions,
    num_compositions,
    partitions,
    set_partitions,
    stirling2,
)


class TestCompositions:
    def test_small_case_exact(self):
        assert sorted(compositions(4, 2)) == [(1, 3), (2, 2), (3, 1)]

    def test_single_part(self):
        assert list(compositions(7, 1)) == [(7,)]

    def test_impossible_when_total_below_parts(self):
        assert list(compositions(2, 3)) == []

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            list(compositions(4, 0))

    @given(st.integers(1, 14), st.integers(1, 6))
    def test_count_matches_closed_form(self, total, parts):
        generated = list(compositions(total, parts))
        assert len(generated) == num_compositions(total, parts)

    @given(st.integers(1, 14), st.integers(1, 6))
    def test_every_composition_is_valid(self, total, parts):
        for combo in compositions(total, parts):
            assert len(combo) == parts
            assert sum(combo) == total
            assert all(part >= 1 for part in combo)

    @given(st.integers(1, 12), st.integers(1, 5))
    def test_no_duplicates(self, total, parts):
        generated = list(compositions(total, parts))
        assert len(generated) == len(set(generated))


class TestBoundedCompositions:
    def test_upper_bound_filters(self):
        assert sorted(bounded_compositions(6, 2, upper=4)) == [(2, 4), (3, 3), (4, 2)]

    def test_lower_bound_filters(self):
        assert sorted(bounded_compositions(6, 2, lower=3)) == [(3, 3)]

    def test_zero_lower_allows_empty_parts(self):
        assert (0, 3) in set(bounded_compositions(3, 2, lower=0))

    @given(st.integers(1, 12), st.integers(1, 4), st.integers(1, 3), st.integers(3, 8))
    def test_agrees_with_filtered_unbounded(self, total, parts, lower, upper):
        expected = {
            c
            for c in compositions(total, parts)
            if all(lower <= part <= upper for part in c)
        }
        assert set(bounded_compositions(total, parts, lower, upper)) == expected

    def test_rejects_negative_lower(self):
        with pytest.raises(ValueError):
            list(bounded_compositions(4, 2, lower=-1))


class TestPartitions:
    def test_small_case_exact(self):
        assert sorted(partitions(4)) == [
            (1, 1, 1, 1),
            (2, 1, 1),
            (2, 2),
            (3, 1),
            (4,),
        ]

    def test_max_parts_limits(self):
        assert sorted(partitions(4, max_parts=2)) == [(2, 2), (3, 1), (4,)]

    def test_zero_total(self):
        assert list(partitions(0)) == [()]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            list(partitions(-1))

    @given(st.integers(0, 20))
    def test_parts_non_increasing_and_sum(self, total):
        for p in partitions(total):
            assert sum(p) == total
            assert all(a >= b for a, b in zip(p, p[1:]))

    @given(st.integers(1, 15), st.integers(1, 5))
    def test_partitions_are_deduped_compositions(self, total, parts):
        from_compositions = {
            tuple(sorted(c, reverse=True))
            for c in compositions(total, parts)
        }
        exact = {p for p in partitions(total, parts) if len(p) == parts}
        assert exact == from_compositions


class TestSetPartitions:
    def test_three_items_two_blocks(self):
        blocks = [
            tuple(tuple(b) for b in p) for p in set_partitions("abc", 2)
        ]
        assert len(blocks) == stirling2(3, 1) + stirling2(3, 2)

    def test_empty_items(self):
        assert list(set_partitions([], 3)) == [[]]

    def test_rejects_nonpositive_blocks(self):
        with pytest.raises(ValueError):
            list(set_partitions([1], 0))

    @given(st.integers(1, 7), st.integers(1, 4))
    def test_count_matches_stirling_sum(self, n, k):
        items = list(range(n))
        count = sum(1 for _ in set_partitions(items, k))
        assert count == sum(stirling2(n, j) for j in range(1, k + 1))

    @given(st.integers(1, 6), st.integers(1, 3))
    def test_blocks_cover_items_exactly(self, n, k):
        items = list(range(n))
        for partition in set_partitions(items, k):
            flat = [x for block in partition for x in block]
            assert sorted(flat) == items
            assert all(block for block in partition)


class TestStirling2:
    @pytest.mark.parametrize(
        "n,k,expected", [(0, 0, 1), (1, 1, 1), (4, 2, 7), (5, 3, 25), (6, 6, 1), (3, 5, 0)]
    )
    def test_known_values(self, n, k, expected):
        assert stirling2(n, k) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            stirling2(-1, 2)

    @given(st.integers(1, 10))
    def test_row_sums_to_bell_recurrence(self, n):
        # Bell(n) via the triangle equals sum over k of S(n, k).
        bell = [1]
        for _ in range(n):
            row = [bell[-1]]
            for value in bell:
                row.append(row[-1] + value)
            bell = row
        assert sum(stirling2(n, k) for k in range(n + 1)) == bell[0]


def test_num_compositions_is_binomial():
    assert num_compositions(10, 4) == math.comb(9, 3)
    assert num_compositions(3, 5) == 0
