"""The design service: scheduler semantics and the HTTP round-trip.

The load-bearing guarantees under test:

- **dedupe** — N concurrent identical submissions execute exactly one
  solve (counted at the backend) and all submitters read one result;
- **cancel** — cancelling a job, queued or running, never poisons the
  dedupe map or the tenant cache: a re-submission runs fresh and
  returns a correct, complete result;
- **fair share** — dispatch alternates between the interactive and batch
  lanes so neither starves the other;
- **HTTP** — submit → poll → result round-trips over real sockets,
  including from multiple client threads at once.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import SolveRequest
from repro.ilp.model import _solve_bnb, register_backend, unregister_backend
from repro.obs import SolvePolicy
from repro.service import (
    DesignServer,
    JobScheduler,
    ServiceClient,
    ServiceError,
)


class GatedBackend:
    """Counting backend whose solves block until the test opens the gate."""

    def __init__(self):
        self.calls = 0
        self.gate = threading.Event()
        self.gate.set()

    def __call__(self, model, **options):
        self.calls += 1
        assert self.gate.wait(timeout=30), "test forgot to open the gate"
        return _solve_bnb(model, **options)


@pytest.fixture
def backend():
    gated = GatedBackend()
    register_backend("svc-test", gated)
    try:
        yield gated
    finally:
        unregister_backend("svc-test")


def make_request(widths=(16, 16), **overrides):
    base = {"kind": "design", "soc": "S1", "widths": widths, "backend": "svc-test"}
    base.update(overrides)
    return SolveRequest(**base)


async def wait_finished(job, timeout=30.0):
    for _ in range(int(timeout / 0.01)):
        if job.finished:
            return job
        await asyncio.sleep(0.01)
    raise AssertionError(f"job {job.id} did not finish: {job.status}")


def run_scheduler(coro_fn, **scheduler_kwargs):
    """Run ``coro_fn(scheduler)`` inside a fresh event loop + scheduler."""

    async def main():
        scheduler = JobScheduler(**scheduler_kwargs)
        await scheduler.start()
        try:
            return await coro_fn(scheduler)
        finally:
            await scheduler.close()

    return asyncio.run(main())


class TestSchedulerDedupe:
    def test_n_concurrent_identical_submissions_run_one_solve(self, backend):
        backend.gate.clear()  # hold the solve so everyone joins in flight

        async def scenario(scheduler):
            request = make_request()
            outcomes = await asyncio.gather(
                *[scheduler.submit(request) for _ in range(5)]
            )
            assert len({job.id for job, _ in outcomes}) == 1
            assert [deduped for _, deduped in outcomes].count(True) == 4
            backend.gate.set()
            job = await wait_finished(outcomes[0][0])
            assert job.status == "done"
            assert job.joined == 4
            return job

        job = run_scheduler(scenario)
        assert backend.calls == 1
        assert job.result["makespan"] > 0

    def test_distinct_tenants_do_not_dedupe_against_each_other(self, backend):
        async def scenario(scheduler):
            request = make_request()
            job_a, deduped_a = await scheduler.submit(request, tenant="acme")
            job_b, deduped_b = await scheduler.submit(request, tenant="globex")
            assert not deduped_a and not deduped_b
            assert job_a.id != job_b.id
            await wait_finished(job_a)
            await wait_finished(job_b)
            assert job_a.result["makespan"] == job_b.result["makespan"]
            assert job_a.result["assignment"] == job_b.result["assignment"]

        run_scheduler(scenario)

    def test_finished_job_does_not_absorb_new_submissions(self, backend):
        async def scenario(scheduler):
            request = make_request()
            job_a, _ = await scheduler.submit(request)
            await wait_finished(job_a)
            job_b, deduped = await scheduler.submit(request)
            assert job_b.id != job_a.id
            assert not deduped
            await wait_finished(job_b)
            assert job_b.result["makespan"] == job_a.result["makespan"]
            assert job_b.result["assignment"] == job_a.result["assignment"]

        run_scheduler(scenario)


class TestSchedulerCancel:
    def test_queued_cancel_leaves_dedupe_clean(self, backend):
        backend.gate.clear()

        async def scenario(scheduler):
            blocker, _ = await scheduler.submit(make_request(widths=(32, 16)))
            queued, _ = await scheduler.submit(make_request())
            cancelled = await scheduler.cancel(queued.id)
            assert cancelled.status == "cancelled"
            # A fresh submission must start a new job, not join the corpse.
            fresh, deduped = await scheduler.submit(make_request())
            assert not deduped
            assert fresh.id != queued.id
            backend.gate.set()
            await wait_finished(blocker)
            await wait_finished(fresh)
            assert fresh.status == "done"
            assert fresh.result["status"] == "optimal"

        run_scheduler(scenario, workers=1)

    def test_running_cancel_discards_result_but_not_correctness(self, backend):
        backend.gate.clear()

        async def scenario(scheduler):
            victim, _ = await scheduler.submit(make_request())
            for _ in range(500):
                if victim.status == "running":
                    break
                await asyncio.sleep(0.01)
            assert victim.status == "running"
            await scheduler.cancel(victim.id)
            assert victim.cancel_requested
            # Same fingerprint resubmitted while the victim still runs:
            # the dedupe entry is already gone, so this is a new job.
            fresh, deduped = await scheduler.submit(make_request())
            assert not deduped and fresh.id != victim.id
            backend.gate.set()
            await wait_finished(victim)
            await wait_finished(fresh)
            assert victim.status == "cancelled"
            assert victim.result is None
            assert fresh.status == "done"
            assert fresh.result["status"] == "optimal"
            assert fresh.result["makespan"] > 0

        run_scheduler(scenario, workers=2)


class TestFairShare:
    def test_dispatch_alternates_between_lanes(self):
        async def scenario():
            # Workers never started: jobs stay queued so the dispatch
            # order is observable one _next_job() call at a time.
            scheduler = JobScheduler(workers=1)
            interactive = [make_request(widths=(w, 16)) for w in (8, 12)]
            batch = [
                SolveRequest(kind="sweep", soc="S1", total_width=t, num_buses=2)
                for t in (24, 32)
            ]
            for request in batch:
                await scheduler.submit(request)
            for request in interactive:
                await scheduler.submit(request)
            order = [(await scheduler._next_job()).lane for _ in range(4)]
            return order

        order = asyncio.run(scenario())
        assert order == ["interactive", "batch", "interactive", "batch"]

    def test_default_lane_routing(self):
        async def scenario():
            scheduler = JobScheduler(workers=1)
            design_job, _ = await scheduler.submit(make_request())
            sweep_job, _ = await scheduler.submit(
                SolveRequest(kind="sweep", soc="S1", total_width=24, num_buses=2)
            )
            return design_job.lane, sweep_job.lane

        assert asyncio.run(scenario()) == ("interactive", "batch")


@pytest.fixture
def service(tmp_path):
    """A real DesignServer on an ephemeral port, run in its own thread."""
    box: dict = {}
    started = threading.Event()

    def run():
        async def main():
            server = DesignServer(
                "127.0.0.1",
                0,
                workers=2,
                cache_dir=str(tmp_path / "cache"),
                state_dir=str(tmp_path / "state"),
            )
            box["port"] = await server.start()
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            started.set()
            await box["stop"].wait()
            await server.close()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="service-under-test", daemon=True)
    thread.start()
    assert started.wait(timeout=10), "service failed to start"
    try:
        yield f"127.0.0.1:{box['port']}"
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=10)


class TestHttpRoundTrip:
    def test_health_and_metrics(self, service):
        client = ServiceClient(service)
        assert client.health() is True
        stats = client.metrics()
        assert "dedupe" in stats and "queues" in stats

    def test_submit_poll_result(self, service):
        client = ServiceClient(service)
        submitted = client.submit(make_request(backend="bnb"))
        assert submitted["deduped"] is False
        job_id = submitted["job"]["id"]
        result = client.wait(job_id, timeout=60)
        assert result["status"] == "optimal"
        assert result["makespan"] > 0
        assert client.status(job_id)["status"] == "done"

    def test_malformed_submissions_rejected_before_enqueue(self, service):
        client = ServiceClient(service)
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "design", "soc": "S1"})  # missing widths
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit(make_request(backend="bnb").as_payload(), lane="express")
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, service):
        client = ServiceClient(service)
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_two_threads_same_fingerprint_one_solve(self, service, backend):
        backend.gate.clear()
        client = ServiceClient(service)
        before = client.metrics()["dedupe"]
        request = make_request(widths=(24, 16))
        results: list = [None, None]

        def submit_and_wait(slot: int) -> None:
            submitted = client.submit(request)
            # Both submissions are in before any solve can finish.
            barrier.wait(timeout=10)
            if slot == 0:
                backend.gate.set()
            results[slot] = client.wait(submitted["job"]["id"], timeout=60)

        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(target=submit_and_wait, args=(slot,))
            for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        after = client.metrics()["dedupe"]
        assert backend.calls == 1
        assert after["joins"] - before["joins"] == 1
        assert results[0] == results[1]
        assert results[0]["makespan"] > 0

    def test_policy_job_streams_incumbents(self, service):
        client = ServiceClient(service)
        request = make_request(
            backend="bnb", widths=(16, 8), policy=SolvePolicy(fallback=())
        )
        submitted = client.submit(request)
        job_id = submitted["job"]["id"]
        client.wait(job_id, timeout=60)
        stream = client.stream(job_id)
        assert stream["done"] is True
        assert stream["incumbents"], "expected at least one checkpointed incumbent"
        objectives = [entry["objective"] for entry in stream["incumbents"]]
        assert objectives == sorted(objectives)

    def test_cut_policy_request_round_trips(self, service):
        from repro.obs import CutPolicy, SolverOptions

        client = ServiceClient(service)
        policy = SolvePolicy(solver=SolverOptions(cuts=CutPolicy(rounds=2)))
        request = make_request(backend="bnb", policy=policy)
        # The wire form carries the solver block: a reconstructed request
        # fingerprints identically, and cuts-off is a different job.
        rebuilt = SolveRequest.from_payload(request.as_payload())
        assert rebuilt.fingerprint() == request.fingerprint()
        off = make_request(
            backend="bnb",
            policy=SolvePolicy(solver=SolverOptions(cuts=CutPolicy.disabled())),
        )
        assert off.fingerprint() != request.fingerprint()
        submitted = client.submit(request)
        result = client.wait(submitted["job"]["id"], timeout=60)
        assert result["status"] == "optimal"
        assert result["makespan"] > 0

    def test_cancelled_job_result_is_410(self, service, backend):
        backend.gate.clear()
        client = ServiceClient(service)
        submitted = client.submit(make_request(widths=(8, 8)))
        job_id = submitted["job"]["id"]
        cancelled = client.cancel(job_id)
        backend.gate.set()
        assert cancelled["status"] in ("cancelled", "running")
        with pytest.raises((ServiceError, TimeoutError)):
            client.wait(job_id, timeout=15)
        assert client.status(job_id)["status"] == "cancelled"


class TestTenantCaches:
    def test_tenant_results_are_cache_isolated(self, service):
        client = ServiceClient(service)
        request = make_request(backend="bnb", widths=(16, 16, 16))
        first = client.run(request, tenant="acme", timeout=60)
        warm = client.run(
            request.with_overrides(jobs=2), tenant="acme", timeout=60
        )
        other = client.run(request, tenant="globex", timeout=60)
        assert first["makespan"] == warm["makespan"] == other["makespan"]
        stats = client.metrics()
        assert set(stats["caches"]) >= {"acme", "globex"}

    def test_join_rate_metric_reported(self, service):
        stats = ServiceClient(service).metrics()
        dedupe = stats["dedupe"]
        assert 0.0 <= dedupe["join_rate"] <= 1.0
        assert dedupe["submitted"] >= dedupe["joins"]
