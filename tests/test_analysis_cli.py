"""CLI tests for the ``repro lint`` subcommand (text, JSON, exit codes)."""

import json

import pytest

from repro.cli import main


class TestLintModelCli:
    def test_clean_instance_exits_zero(self, capsys):
        code = main(["lint", "model", "S1", "--widths", "16,16,16",
                     "--power-budget", "150"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_contradictory_instance_exits_nonzero(self, capsys):
        code = main(["lint", "model", "S1", "--widths", "16,16,16",
                     "--power-budget", "100", "--max-distance", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "P001" in out
        assert "M007" in out

    def test_json_output(self, capsys):
        code = main(["lint", "model", "S1", "--widths", "16,16,16", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["target"] == "model"
        assert payload["clean"] is True
        assert payload["model"]  # the built model's summary line
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}

    def test_unbuildable_instance_reports_problem_rules(self, capsys):
        # Width 1 under fixed timing: no core fits, the ILP cannot be built,
        # but the problem-level pass still explains why.
        code = main(["lint", "model", "S1", "--widths", "1", "--timing", "fixed",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["model"] is None
        assert {d["rule"] for d in payload["diagnostics"]} >= {"P002"}


class TestLintCodeCli:
    def test_real_tree_clean_exits_zero(self, capsys):
        code = main(["lint", "code"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_rng_violation_fixture_exits_nonzero(self, tmp_path, capsys):
        fixture = tmp_path / "rogue.py"
        fixture.write_text("import random\nchoice = random.choice([1, 2])\n")
        code = main(["lint", "code", str(fixture)])
        out = capsys.readouterr().out
        assert code == 1
        assert "C001" in out

    def test_json_output_lists_diagnostics(self, tmp_path, capsys):
        fixture = tmp_path / "rogue.py"
        fixture.write_text("def f(x=[]):\n    try:\n        pass\n    except:\n        pass\n")
        code = main(["lint", "code", str(fixture), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["clean"] is False
        assert {d["rule"] for d in payload["diagnostics"]} == {"C002", "C004"}
        assert all(d["severity"] == "error" for d in payload["diagnostics"])

    def test_explicit_baseline_waives_findings(self, tmp_path, capsys):
        fixture = tmp_path / "legacy.py"
        fixture.write_text("import random\n")
        baseline = tmp_path / "waivers.json"
        baseline.write_text(json.dumps(
            {"waivers": [{"rule": "C001", "file": "legacy.py", "reason": "grandfathered"}]}
        ))
        code = main(["lint", "code", str(fixture), "--baseline", str(baseline), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["clean"] is True
        assert payload["waived"] == 1

    def test_checked_in_baseline_discovered(self, capsys, monkeypatch):
        # Running from the repo root should find .lint-baseline.json.
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parent.parent
        if not (repo_root / ".lint-baseline.json").exists():
            pytest.skip("baseline not present in this checkout")
        monkeypatch.chdir(repo_root)
        code = main(["lint", "code", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["baseline"].endswith(".lint-baseline.json")
