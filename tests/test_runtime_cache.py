"""Solve-cache correctness: fingerprints, round-trips, persistence, reuse."""

from __future__ import annotations

import pytest

from repro.core import DesignProblem, design
from repro.experiments import ExperimentConfig, run_experiment
from repro.ilp import Model, quicksum
from repro.runtime import (
    SolutionCache,
    get_solve_cache,
    matrix_fingerprint,
    set_solve_cache,
    solve_cached,
    solve_fingerprint,
    use_cache,
)
from repro.tam import TamArchitecture


def knapsack_model(profits=(24, 13, 23, 15, 16)) -> Model:
    weights = [12, 7, 11, 8, 9]
    model = Model("knapsack")
    take = [model.add_binary(f"take_{i}") for i in range(len(weights))]
    model.add_constr(quicksum(w * t for w, t in zip(weights, take)) <= 26)
    model.maximize(quicksum(p * t for p, t in zip(profits, take)))
    return model


class TestFingerprint:
    def test_identical_models_share_fingerprint(self):
        a = knapsack_model().to_matrix_form()
        b = knapsack_model().to_matrix_form()
        assert matrix_fingerprint(a) == matrix_fingerprint(b)

    def test_constraint_order_is_canonicalized(self):
        base = Model("m")
        x = base.add_binary("x")
        y = base.add_binary("y")
        base.add_constr(x + y <= 1)
        base.add_constr(2 * x + y <= 2)
        base.maximize(x + y)

        flipped = Model("m")
        x2 = flipped.add_binary("x")
        y2 = flipped.add_binary("y")
        flipped.add_constr(2 * x2 + y2 <= 2)
        flipped.add_constr(x2 + y2 <= 1)
        flipped.maximize(x2 + y2)

        assert matrix_fingerprint(base.to_matrix_form()) == matrix_fingerprint(
            flipped.to_matrix_form()
        )

    def test_perturbed_coefficient_changes_fingerprint(self):
        a = knapsack_model().to_matrix_form()
        b = knapsack_model(profits=(24, 13, 23, 15, 16.000001)).to_matrix_form()
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_backend_and_options_enter_solve_key(self):
        form = knapsack_model().to_matrix_form()
        assert solve_fingerprint(form, "bnb", {}) != solve_fingerprint(form, "scipy", {})
        assert solve_fingerprint(form, "bnb", {}) != solve_fingerprint(
            form, "bnb", {"node_limit": 10}
        )


class TestSolutionCache:
    def test_hit_returns_equivalent_solution(self):
        cache = SolutionCache()
        first = solve_cached(knapsack_model(), cache=cache)
        second = solve_cached(knapsack_model(), cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert not first.cache_hit
        assert second.cache_hit and second.stats.cache_hit
        assert second.status is first.status
        assert second.objective == pytest.approx(first.objective)

    def test_cached_values_bind_to_the_new_model(self):
        cache = SolutionCache()
        solve_cached(knapsack_model(), cache=cache)
        model = knapsack_model()
        solution = solve_cached(model, cache=cache)
        profits = [24, 13, 23, 15, 16]
        taken = [
            profit
            for var, profit in zip(model.variables, profits)
            if solution[var] > 0.5
        ]
        assert sum(taken) == pytest.approx(solution.objective)

    def test_perturbed_model_misses(self):
        cache = SolutionCache()
        solve_cached(knapsack_model(), cache=cache)
        solve_cached(knapsack_model(profits=(25, 13, 23, 15, 16)), cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_disk_persistence_across_instances(self, tmp_path):
        store = tmp_path / "cache"
        first = solve_cached(knapsack_model(), cache=SolutionCache(directory=str(store)))
        reopened = SolutionCache(directory=str(store))
        second = solve_cached(knapsack_model(), cache=reopened)
        assert reopened.hits == 1 and reopened.misses == 0
        assert second.cache_hit
        assert second.objective == pytest.approx(first.objective)

    def test_lru_eviction_bounds_memory(self):
        cache = SolutionCache(maxsize=2)
        models = [
            knapsack_model(),
            knapsack_model(profits=(1, 2, 3, 4, 5)),
            knapsack_model(profits=(5, 4, 3, 2, 1)),
        ]
        for model in models:
            solve_cached(model, cache=cache)
        assert len(cache) == 2
        # The oldest entry was evicted: re-solving it is a miss again.
        solve_cached(knapsack_model(), cache=cache)
        assert cache.misses == 4

    def test_clear(self, tmp_path):
        cache = SolutionCache(directory=str(tmp_path / "c"))
        solve_cached(knapsack_model(), cache=cache)
        cache.clear(disk=True)
        assert len(cache) == 0
        solve_cached(knapsack_model(), cache=cache)
        assert cache.misses == 2


class TestActiveCacheContext:
    def test_use_cache_installs_and_restores(self):
        cache = SolutionCache()
        assert get_solve_cache() is None
        with use_cache(cache):
            assert get_solve_cache() is cache
            knapsack_model().solve()
        assert get_solve_cache() is None
        assert cache.misses == 1

    def test_explicit_false_bypasses_active_cache(self):
        cache = SolutionCache()
        with use_cache(cache):
            knapsack_model().solve(cache=False)
            knapsack_model().solve(cache=False)
        assert cache.misses == 0 and cache.hits == 0

    def test_set_solve_cache_roundtrip(self):
        cache = SolutionCache()
        previous = set_solve_cache(cache)
        try:
            assert get_solve_cache() is cache
        finally:
            set_solve_cache(previous)
        assert get_solve_cache() is previous


class TestDesignFlowCaching:
    def test_design_through_cache_matches_uncached(self, s1):
        problem = DesignProblem(soc=s1, arch=TamArchitecture([16, 16]), timing="serial")
        cold = design(problem, cache=False)
        cache = SolutionCache()
        warm_miss = design(problem, cache=cache)
        warm_hit = design(problem, cache=cache)
        assert warm_hit.makespan == pytest.approx(cold.makespan)
        assert warm_miss.makespan == pytest.approx(cold.makespan)
        assert warm_hit.stats.cache_hit
        assert cache.hits == 1 and cache.misses == 1

    def test_warm_f1_rerun_performs_zero_solves(self, s1, tmp_path):
        """ISSUE acceptance: a warm-cache F1 re-run issues no fresh B&B solves."""
        grid = dict(soc=s1, bus_counts=(2,), total_widths=[8, 16, 24])
        cold = ExperimentConfig(cache_dir=str(tmp_path / "f1"))
        first = run_experiment("F1", config=cold, **grid)
        assert cold.cache.misses > 0  # the cold run actually solved

        warm = ExperimentConfig(cache_dir=str(tmp_path / "f1"))
        second = run_experiment("F1", config=warm, **grid)
        assert warm.cache.misses == 0  # every solve answered from the store
        assert warm.cache.hits > 0
        assert second.telemetry.cache_misses == 0
        assert second.telemetry.nodes == 0  # zero fresh branch-and-bound work
        assert [t.render() for t in first.tables] == [t.render() for t in second.tables]
