"""Generator determinism: byte-identical across calls, processes, and jobs."""

from __future__ import annotations

from repro.runtime import run_parallel
from repro.soc import (
    SCALE_POINTS,
    corpus_names,
    corpus_soc,
    dump_soc,
    generate_synthetic_soc,
)


# Module-level so ProcessPoolExecutor can pickle it: generate in the worker
# process and return the canonical text, so equality is byte-equality.
def _dump_generated(payload):
    num_cores, seed, mode = payload
    return dump_soc(generate_synthetic_soc(num_cores, seed=seed, mode=mode))


class TestSeededDeterminism:
    def test_repeated_calls_byte_identical(self):
        for mode in ("catalog", "parametric", "itc02"):
            a = dump_soc(generate_synthetic_soc(24, seed=11, mode=mode))
            b = dump_soc(generate_synthetic_soc(24, seed=11, mode=mode))
            assert a == b, mode

    def test_serial_and_jobs2_byte_identical(self):
        payloads = [(16, 3, "itc02"), (16, 4, "itc02"), (24, 3, "parametric")]
        serial = run_parallel(_dump_generated, payloads, max_workers=1)
        workers = run_parallel(_dump_generated, payloads, max_workers=2)
        assert workers == serial

    def test_in_process_matches_worker_process(self):
        local = dump_soc(generate_synthetic_soc(32, seed=32, mode="itc02"))
        [remote] = run_parallel(_dump_generated, [(32, 32, "itc02")], max_workers=2)
        assert remote == local

    def test_seed_changes_the_system(self):
        a = dump_soc(generate_synthetic_soc(16, seed=1, mode="itc02"))
        b = dump_soc(generate_synthetic_soc(16, seed=2, mode="itc02"))
        assert a != b


class TestScaleCorpusPoints:
    def test_registered_and_reproducible(self):
        names = corpus_names()
        for n in SCALE_POINTS:
            assert f"scale{n}" in names
        soc = corpus_soc("scale64")
        assert len(soc) == 64
        assert soc.name == "scale64"
        # The corpus entry is exactly the canonical seeded generation.
        direct = generate_synthetic_soc(64, seed=64, mode="itc02", name="scale64")
        assert dump_soc(soc) == dump_soc(direct)

    def test_reaches_two_hundred_plus_cores(self):
        assert max(SCALE_POINTS) >= 200
        soc = corpus_soc("scale200")
        assert len(soc) == 200
        # ITC'02-class shape: mostly sequential, some explicit scan chains,
        # and every core structurally valid (Core validated on construction).
        chained = [core for core in soc if core.scan_chains]
        assert len(chained) > 100
        for core in chained:
            assert sum(core.scan_chains) == core.num_flipflops
