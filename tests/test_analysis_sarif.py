"""SARIF 2.1.0 emitter tests: structural schema conformance + CLI wiring.

There is no jsonschema dependency in the image, so conformance is checked
structurally against the parts of the SARIF 2.1.0 spec the emitter uses:
required top-level properties, run/tool/driver shape, result and location
shapes, rule-index consistency, and suppression marking for waived
findings. Determinism (same tree → byte-identical SARIF) is asserted too,
since GitHub code scanning diffs uploads by content.
"""

import json

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    report_to_sarif,
    report_to_sarif_json,
)
from repro.cli import main


def sample_report():
    report = LintReport()
    report.add(Diagnostic("C001", Severity.ERROR, "src/x.py:3", "direct import", "use rng"))
    report.add(Diagnostic("D002", Severity.ERROR, "src/y.py:10", "lambda in pool"))
    report.waived.append(
        Diagnostic("C002", Severity.ERROR, "src/z.py:7", "mutable default", "use None")
    )
    return report.normalize()


def assert_valid_sarif(log: dict) -> None:
    """Structural SARIF 2.1.0 validation (spec §3: sarifLog, run, result)."""
    assert log["version"] == SARIF_VERSION == "2.1.0"
    assert log["$schema"] == SARIF_SCHEMA
    assert isinstance(log["runs"], list) and log["runs"]
    for run in log["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in ("error", "warning", "note")
        for result in run["results"]:
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            assert result["ruleId"] in rule_ids
            if "ruleIndex" in result:
                assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            for location in result.get("locations", ()):
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"]
                assert physical["region"]["startLine"] >= 1
            for suppression in result.get("suppressions", ()):
                assert suppression["kind"] in ("inSource", "external")


class TestSarifEmitter:
    def test_structurally_valid(self):
        assert_valid_sarif(report_to_sarif(sample_report()))

    def test_rule_catalog_covers_both_families(self):
        log = report_to_sarif(LintReport())
        ids = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
        assert {"C001", "C006", "D001", "D002", "D003", "D004"} <= ids

    def test_active_findings_are_unsuppressed(self):
        log = report_to_sarif(sample_report())
        by_rule = {r["ruleId"]: r for r in log["runs"][0]["results"]}
        assert "suppressions" not in by_rule["C001"]
        assert by_rule["C002"]["suppressions"] == [{"kind": "inSource"}]

    def test_locations_carry_path_and_line(self):
        log = report_to_sarif(sample_report())
        result = [r for r in log["runs"][0]["results"] if r["ruleId"] == "D002"][0]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/y.py"
        assert physical["region"]["startLine"] == 10

    def test_hint_is_folded_into_message(self):
        log = report_to_sarif(sample_report())
        result = [r for r in log["runs"][0]["results"] if r["ruleId"] == "C001"][0]
        assert "use rng" in result["message"]["text"]

    def test_serialization_is_deterministic(self):
        assert report_to_sarif_json(sample_report()) == report_to_sarif_json(sample_report())

    def test_model_lint_locations_without_path_are_allowed(self):
        report = LintReport()
        report.add(Diagnostic("M001", Severity.WARNING, "constraint pow_3", "loose"))
        log = report_to_sarif(report)
        result = log["runs"][0]["results"][0]
        assert result["level"] == "warning"
        assert "locations" not in result


class TestSarifCli:
    def test_format_sarif_emits_valid_log(self, tmp_path, capsys):
        fixture = tmp_path / "rogue.py"
        fixture.write_text("import random\n")
        code = main(["lint", "code", str(fixture), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert code == 1  # exit code still reflects findings
        assert_valid_sarif(log)
        assert [r["ruleId"] for r in log["runs"][0]["results"]] == ["C001"]

    def test_output_file_writes_report(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text("x = 1\n")
        out_file = tmp_path / "lint.sarif"
        code = main(
            ["lint", "code", str(fixture), "--format", "sarif", "--output", str(out_file)]
        )
        assert code == 0
        assert_valid_sarif(json.loads(out_file.read_text()))
        assert str(out_file) in capsys.readouterr().out

    def test_baseline_may_not_waive_flow_rules(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text("x = 1\n")
        baseline = tmp_path / "waivers.json"
        baseline.write_text(
            json.dumps({"waivers": [{"rule": "D001", "file": "clean.py", "reason": "no"}]})
        )
        code = main(["lint", "code", str(fixture), "--baseline", str(baseline)])
        err = capsys.readouterr().err
        assert code == 2
        assert "D001" in err and "inline" in err

    def test_stale_baseline_waiver_is_reported(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text("x = 1\n")
        baseline = tmp_path / "waivers.json"
        baseline.write_text(
            json.dumps({"waivers": [{"rule": "C001", "file": "gone.py", "reason": "old"}]})
        )
        code = main(["lint", "code", str(fixture), "--baseline", str(baseline), "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 0
        assert payload["stale_waivers"] == [
            {"rule": "C001", "file": "gone.py", "reason": "old"}
        ]
        assert "stale baseline waiver" in captured.err
