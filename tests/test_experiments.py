"""Integration tests over the experiment harnesses.

Each experiment module carries its own shape assertions (the paper's
qualitative claims); running it to completion is itself the test. The
configurations here are trimmed for suite speed where the experiment
exposes knobs; T2/F1 (the slow exact sweeps) run on reduced budgets.
"""

import pytest

from repro.experiments import REGISTRY, ExperimentConfig, run_experiment
from repro.experiments import (
    f1_width,
    f2_power_curve,
    f3_tradeoff,
    f4_scaling,
    t1_composition,
    t2_unconstrained,
    t3_power,
    t4_layout,
    t5_combined,
)
from repro.tam import TamArchitecture


class TestRegistry:
    def test_all_ids_present(self):
        assert sorted(REGISTRY) == [
            "E1", "E2", "E3", "E4", "E5",
            "F1", "F2", "F3", "F4",
            "T1", "T2", "T3", "T4", "T5",
        ]

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("T99")

    def test_case_insensitive(self):
        result = run_experiment("t1")
        assert result.experiment_id == "T1"


class TestTables:
    def test_t1_full(self):
        result = t1_composition.run()
        assert len(result.tables) == 2
        assert len(result.checks) > 10
        assert "S1 composition" in result.render()

    def test_t2_reduced(self, s1):
        result = t2_unconstrained.run(socs=(s1,), budgets=((24, 2), (24, 3)))
        table = result.tables[0]
        assert len(table) == 2
        ilp = table.column("ILP T*")
        lpt = table.column("LPT")
        assert all(l >= i - 1e-9 for i, l in zip(ilp, lpt) if l is not None)

    def test_t3_s1_only(self, s1):
        result = t3_power.run(socs=(s1,))
        times = [t for t in result.tables[0].column("T* (cycles)") if t is not None]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_t4_s1_only(self, s1):
        result = t4_layout.run(socs=(s1,))
        table = result.tables[0]
        assert "delta (mm)" in table.headers
        deltas = table.column("delta (mm)")
        assert deltas == sorted(deltas, reverse=True)

    def test_t5_s1_only(self, s1):
        result = t5_combined.run(socs=(s1,))
        assert any("INF" in str(cell) or isinstance(cell, float) for row in result.tables[0].rows for cell in row)
        assert any("unconstrained optimum" in c for c in result.checks)


class TestFigures:
    def test_f1_reduced(self, s1):
        result = f1_width.run(soc=s1, bus_counts=(2,), total_widths=[8, 16, 24, 32])
        values = result.tables[0].column("NB=2 T*")
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_f2_s1(self, s1):
        result = f2_power_curve.run(soc=s1)
        assert len(result.tables) == 1
        assert any("never hurt" in c for c in result.checks)

    def test_f3_grid_only(self, s1):
        result = f3_tradeoff.run(soc=s1, anneal_iterations=50)
        titles = [t.title for t in result.tables]
        assert any("Pareto" in t for t in titles)

    def test_f4_small_sizes(self):
        result = f4_scaling.run(sizes=(4, 6, 8, 10))
        table = result.tables[0]
        assert table.column("cores") == [4, 6, 8, 10]
        assert all(n >= 1 for n in table.column("bnb nodes"))

    def test_f4_custom_arch(self):
        result = f4_scaling.run(sizes=(4, 6, 8, 10), arch=TamArchitecture([16, 16]))
        assert "TAM[16+16]" in result.tables[0].title


class TestExtensions:
    def test_e1_s1_only(self, s1):
        from repro.experiments import e1_power_cap
        from repro.tam import TamArchitecture

        result = e1_power_cap.run(
            socs=(s1,), archs={"S1": TamArchitecture([16, 16, 16])}
        )
        slowdowns = [s for s in result.tables[0].column("slowdown (%)") if s is not None]
        assert all(s >= 0 for s in slowdowns)
        assert any("costs nothing" in c for c in result.checks)

    def test_e2_s1_only(self, s1):
        from repro.experiments import e2_bus_count

        result = e2_bus_count.run(socs=(s1,), total_width=24, max_buses=3)
        assert result.tables[0].column("NB") == [1, 2, 3]

    def test_e3_small(self, s1):
        from repro.experiments import e3_min_width

        result = e3_min_width.run(soc=s1, num_buses=2)
        assert len(result.tables[0]) >= 2


class TestRender:
    def test_render_contains_sections(self, s1):
        result = f2_power_curve.run(soc=s1)
        text = result.render()
        assert text.startswith("=== F2")
        assert "check passed:" in text

    def test_failed_check_raises(self):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult("X", "test")
        with pytest.raises(AssertionError):
            result.check(False, "never true")
        result.check(True, "fine")
        assert result.checks == ["fine"]


class TestExperimentConfig:
    def test_coerce_none_gives_defaults(self):
        config = ExperimentConfig.coerce(None)
        assert config.jobs == 1 and config.cache is None and config.seed == 7

    def test_coerce_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            ExperimentConfig.coerce({"jobs": 2})

    def test_resolve_backend(self):
        assert ExperimentConfig().resolve_backend("bnb") == "bnb"
        assert ExperimentConfig(backend="scipy").resolve_backend("bnb") == "scipy"

    def test_resolve_cache_builds_on_dir(self, tmp_path):
        config = ExperimentConfig(cache_dir=str(tmp_path / "store"))
        cache = config.resolve_cache()
        assert cache is not None
        assert config.resolve_cache() is cache  # built once, then reused

    def test_grid_override(self):
        config = ExperimentConfig(grid={"total_widths": [8, 16]})
        assert config.override("total_widths", [32]) == [8, 16]
        assert config.override("bus_counts", (2, 3)) == (2, 3)

    def test_grid_override_reaches_f1(self, tmp_path):
        config = ExperimentConfig(grid={"total_widths": [8, 16], "bus_counts": (2,)})
        result = run_experiment("F1", config=config)
        widths_column = result.tables[0].column("W")
        assert widths_column == [8, 16]

    def test_every_experiment_accepts_config(self):
        import inspect

        for experiment_id, module in REGISTRY.items():
            params = inspect.signature(module.run).parameters
            assert "config" in params, f"{experiment_id} run() lacks config"
