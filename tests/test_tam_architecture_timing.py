"""Tests for TAM architectures and the three timing models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc import Core, Soc, build_s1
from repro.tam import (
    INFEASIBLE_TIME,
    FixedWidthTiming,
    FlexibleWidthTiming,
    SerializationTiming,
    TamArchitecture,
    make_timing_model,
)
from repro.util.combinatorics import num_compositions, partitions
from repro.util.errors import ValidationError
from repro.wrapper import application_time


def make_core(width=16, name="t"):
    return Core(
        name=name,
        num_inputs=12,
        num_outputs=10,
        num_flipflops=90,
        num_gates=900,
        num_patterns=25,
        test_width=width,
        test_power=20.0,
    )


class TestTamArchitecture:
    def test_basic_properties(self):
        arch = TamArchitecture([8, 16, 4])
        assert arch.num_buses == 3
        assert arch.total_width == 28
        assert arch.width_of(1) == 16
        assert list(arch) == [8, 16, 4]
        assert "TAM[8+16+4]" == str(arch)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            TamArchitecture([])

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValidationError):
            TamArchitecture([8, 0])

    def test_width_of_out_of_range(self):
        with pytest.raises(ValidationError):
            TamArchitecture([8]).width_of(1)

    def test_canonical_sorts_descending(self):
        assert TamArchitecture([4, 16, 8]).canonical().widths == (16, 8, 4)

    def test_even_split(self):
        assert TamArchitecture.even_split(10, 3).widths == (4, 3, 3)

    def test_even_split_validates(self):
        with pytest.raises(ValidationError):
            TamArchitecture.even_split(2, 3)
        with pytest.raises(ValidationError):
            TamArchitecture.even_split(4, 0)

    def test_hashable_and_equal(self):
        assert TamArchitecture([4, 8]) == TamArchitecture([4, 8])
        assert len({TamArchitecture([4, 8]), TamArchitecture([4, 8])}) == 1

    @given(st.integers(2, 14), st.integers(1, 4))
    def test_enumeration_counts(self, total, buses):
        ordered = list(TamArchitecture.enumerate_distributions(total, buses, distinct_buses=True))
        assert len(ordered) == num_compositions(total, buses)
        deduped = list(TamArchitecture.enumerate_distributions(total, buses))
        expected = sum(1 for p in partitions(total, buses) if len(p) == buses)
        assert len(deduped) == expected


class TestFixedWidthTiming:
    def test_narrow_bus_infeasible(self):
        timing = FixedWidthTiming()
        assert timing.time_on_bus(make_core(width=16), 8) == INFEASIBLE_TIME

    def test_wide_bus_no_speedup(self):
        timing = FixedWidthTiming()
        core = make_core(width=16)
        assert timing.time_on_bus(core, 16) == timing.time_on_bus(core, 32)

    def test_base_time_is_wrapper_time(self):
        core = make_core(width=16)
        assert FixedWidthTiming().base_time(core) == application_time(core, 16)

    def test_feasibility_matrix(self):
        soc = Soc("T", [make_core(width=16, name="a"), make_core(width=4, name="b")])
        timing = FixedWidthTiming()
        arch = TamArchitecture([8, 8])
        matrix = timing.matrix(soc, arch)
        assert not np.isfinite(matrix[0]).any()
        assert np.isfinite(matrix[1]).all()
        assert not timing.feasible(soc, arch)

    def test_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            FixedWidthTiming().time_on_bus(make_core(), 0)


class TestSerializationTiming:
    def test_stretch_factor(self):
        timing = SerializationTiming()
        core = make_core(width=16)
        base = timing.base_time(core)
        assert timing.time_on_bus(core, 8) == base * 2
        assert timing.time_on_bus(core, 5) == base * 4  # ceil(16/5) = 4
        assert timing.time_on_bus(core, 16) == base
        assert timing.time_on_bus(core, 64) == base

    def test_always_feasible(self):
        soc = Soc("T", [make_core(width=32, name="a")])
        assert SerializationTiming().feasible(soc, TamArchitecture([1]))

    @given(st.integers(1, 64))
    def test_never_faster_than_base(self, bus_width):
        timing = SerializationTiming()
        core = make_core(width=16)
        assert timing.time_on_bus(core, bus_width) >= timing.base_time(core)


class TestFlexibleTiming:
    def test_equals_wrapper_curve(self):
        timing = FlexibleWidthTiming()
        core = make_core()
        for width in (1, 3, 8, 20):
            assert timing.time_on_bus(core, width) == application_time(core, width)

    def test_monotone_in_width(self):
        timing = FlexibleWidthTiming()
        core = make_core()
        times = [timing.time_on_bus(core, w) for w in range(1, 24)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_faster_than_serialization_on_narrow_bus(self):
        core = make_core(width=16)
        serial = SerializationTiming().time_on_bus(core, 8)
        flexible = FlexibleWidthTiming().time_on_bus(core, 8)
        assert flexible <= serial


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("fixed", FixedWidthTiming), ("serial", SerializationTiming), ("flexible", FlexibleWidthTiming)],
    )
    def test_by_name(self, name, cls):
        assert isinstance(make_timing_model(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            make_timing_model("warp")

    def test_matrix_shape_on_s1(self):
        s1 = build_s1()
        matrix = make_timing_model("serial").matrix(s1, TamArchitecture([8, 16]))
        assert matrix.shape == (len(s1), 2)
        assert np.isfinite(matrix).all()
