"""Tests for the linear expression layer."""

import pytest

from repro.ilp import BINARY, EQ, GE, LE, Model, quicksum
from repro.ilp.expr import Constraint, LinExpr


@pytest.fixture
def model():
    return Model("expr-tests")


@pytest.fixture
def xy(model):
    return model.add_var("x"), model.add_var("y")


class TestArithmetic:
    def test_addition_merges_terms(self, xy):
        x, y = xy
        expr = x + y + x
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 1.0

    def test_subtraction_and_negation(self, xy):
        x, y = xy
        expr = x - 2 * y - x
        assert expr.terms.get(x, 0.0) == 0.0
        assert expr.terms[y] == -2.0
        neg = -(x + 1)
        assert neg.terms[x] == -1.0 and neg.constant == -1.0

    def test_scalar_multiplication_both_sides(self, xy):
        x, _ = xy
        assert (3 * x).terms[x] == 3.0
        assert (x * 3).terms[x] == 3.0

    def test_division_by_scalar(self, xy):
        x, _ = xy
        assert (x / 4).terms[x] == 0.25

    def test_division_by_zero_raises(self, xy):
        x, _ = xy
        with pytest.raises(ZeroDivisionError):
            (x + 0) / 0

    def test_expression_times_expression_rejected(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)

    def test_constants_fold(self, xy):
        x, _ = xy
        expr = (x + 2) + 3
        assert expr.constant == 5.0

    def test_rsub_from_number(self, xy):
        x, _ = xy
        expr = 10 - x
        assert expr.terms[x] == -1.0 and expr.constant == 10.0

    def test_coerce_rejects_strings(self):
        with pytest.raises(TypeError):
            LinExpr._coerce("nope")


class TestComparisons:
    def test_le_builds_constraint(self, xy):
        x, y = xy
        constr = x + y <= 3
        assert isinstance(constr, Constraint)
        assert constr.sense == LE
        assert constr.rhs == 3.0

    def test_ge_and_eq(self, xy):
        x, _ = xy
        assert (x >= 1).sense == GE
        assert (x == 1).sense == EQ

    def test_constraint_has_no_truth_value(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            bool(x <= y)

    def test_violation_measures(self, xy):
        x, y = xy
        constr = x + y <= 3
        assert constr.violation({x: 2.0, y: 2.0}) == pytest.approx(1.0)
        assert constr.violation({x: 1.0, y: 1.0}) == 0.0
        eq = x == 2
        assert eq.violation({x: 0.5, y: 0.0}) == pytest.approx(1.5)

    def test_is_satisfied_tolerance(self, xy):
        x, _ = xy
        constr = x <= 1
        assert constr.is_satisfied({x: 1.0 + 1e-9})
        assert not constr.is_satisfied({x: 1.1})


class TestQuicksum:
    def test_matches_builtin_sum(self, model):
        xs = model.add_vars(5, prefix="q")
        fast = quicksum(2 * v for v in xs)
        slow = sum((2 * v for v in xs), LinExpr())
        assert fast.terms == slow.terms

    def test_empty_is_zero(self):
        expr = quicksum([])
        assert expr.terms == {} and expr.constant == 0.0

    def test_mixes_numbers_and_vars(self, xy):
        x, y = xy
        expr = quicksum([x, 2, y, 3])
        assert expr.constant == 5.0
        assert expr.terms[x] == 1.0 and expr.terms[y] == 1.0


class TestEvaluation:
    def test_value_under_assignment(self, xy):
        x, y = xy
        assert (2 * x + 3 * y + 1).value({x: 2.0, y: 1.0}) == pytest.approx(8.0)

    def test_simplified_drops_zeros(self, xy):
        x, y = xy
        expr = (x + y - y).simplified()
        assert y not in expr.terms and x in expr.terms

    def test_repr_readable(self, xy):
        x, y = xy
        text = repr(2 * x - y)
        assert "x" in text and "y" in text

    def test_linexpr_not_hashable(self, xy):
        x, _ = xy
        with pytest.raises(TypeError):
            hash(x + 1)


class TestBinaryVar:
    def test_binary_bounds_clamped(self, model):
        b = model.add_var("b", vartype=BINARY)
        assert b.lb == 0.0 and b.ub == 1.0
        assert b.is_integer

    def test_variable_repr(self, model):
        assert "b2" in repr(model.add_var("b2"))
