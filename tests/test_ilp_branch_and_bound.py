"""Tests for branch and bound, including randomized cross-checks vs HiGHS MILP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import INTEGER, BranchAndBoundSolver, Model, Status, quicksum
from repro.obs import SolvePolicy


def knapsack_model(weights, profits, capacity):
    m = Model("knapsack")
    xs = [m.add_binary(f"k{i}") for i in range(len(weights))]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(quicksum(p * x for p, x in zip(profits, xs)))
    return m, xs


class TestExactness:
    def test_knapsack_optimum(self):
        m, xs = knapsack_model([4, 3, 2, 5, 1], [5, 4, 3, 6, 1], 9)
        sol = m.solve()
        assert sol.status is Status.OPTIMAL
        assert sol.objective == pytest.approx(12.0)
        assert m.check_solution(sol.rounded()) == []

    def test_makespan_two_machines(self):
        times = [10, 7, 5, 4, 3]
        m = Model("makespan")
        x = {(i, j): m.add_binary(f"x{i}_{j}") for i in range(5) for j in range(2)}
        T = m.add_var("T")
        for i in range(5):
            m.add_constr(quicksum(x[i, j] for j in range(2)) == 1)
        for j in range(2):
            m.add_constr(quicksum(times[i] * x[i, j] for i in range(5)) <= T)
        m.minimize(T)
        assert m.solve().objective == pytest.approx(15.0)

    def test_integer_variable_general_bounds(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, vartype=INTEGER)
        m.add_constr(2 * x <= 7)
        m.maximize(x)
        assert m.solve().objective == pytest.approx(3.0)

    def test_already_integral_relaxation_skips_branching(self):
        m = Model()
        x = m.add_var("x", ub=4, vartype=INTEGER)
        m.maximize(x)
        sol = m.solve()
        assert sol.objective == pytest.approx(4.0)
        # Root presolve dual-fixes the single column, so no node is ever
        # expanded; without it the root relaxation is integral in one node.
        assert sol.stats.nodes <= 1

    def test_continuous_only_model(self):
        m = Model()
        x = m.add_var("x", ub=2.5)
        m.maximize(x)
        sol = m.solve()
        assert sol.objective == pytest.approx(2.5)

    def test_simplex_lp_engine_agrees(self):
        m, _ = knapsack_model([3, 5, 4, 2], [4, 7, 5, 3], 8)
        fast = m.solve()
        slow = m.solve(lp_method="simplex")
        assert fast.objective == pytest.approx(slow.objective)

    def test_first_branching_rule(self):
        m, _ = knapsack_model([4, 3, 2], [5, 4, 3], 5)
        sol = m.solve(branching="first")
        assert sol.objective == pytest.approx(7.0)

    def test_unknown_branching_rejected(self):
        m, _ = knapsack_model([1], [1], 1)
        with pytest.raises(ValueError):
            BranchAndBoundSolver(m, branching="pseudo")


class TestStatuses:
    def test_infeasible(self):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constr(a + b >= 3)
        m.minimize(a + b)
        assert m.solve().status is Status.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x", vartype=INTEGER)
        m.maximize(x)
        assert m.solve().status is Status.UNBOUNDED

    def test_node_budget_reported(self):
        # A knapsack big enough to need more than 1 node.
        rng = np.random.default_rng(0)
        weights = rng.integers(5, 40, size=18).tolist()
        profits = rng.integers(5, 40, size=18).tolist()
        m, _ = knapsack_model(weights, profits, int(sum(weights) * 0.4))
        sol = m.solve(policy=SolvePolicy(node_budget=2, fallback=()), dive=False)
        assert sol.status in (Status.NODE_LIMIT, Status.FEASIBLE)

    def test_legacy_limit_kwargs_are_rejected(self):
        m, _ = knapsack_model([4, 3, 2], [5, 4, 3], 6)
        with pytest.raises(TypeError, match="SolvePolicy"):
            m.solve(node_limit=2)
        with pytest.raises(TypeError, match="SolvePolicy"):
            m.solve(time_limit=1.0)

    def test_reading_values_of_infeasible_raises(self):
        m = Model()
        a = m.add_binary("a")
        m.add_constr(a >= 2)
        m.minimize(a)
        sol = m.solve()
        with pytest.raises(KeyError):
            sol[a]


class TestStats:
    def test_counters_populated(self):
        m, _ = knapsack_model([4, 3, 2, 5, 6], [5, 4, 3, 7, 8], 11)
        sol = m.solve()
        assert sol.stats.nodes >= 1
        assert sol.stats.lp_solves >= sol.stats.nodes
        assert sol.stats.wall_time > 0
        assert sol.backend == "bnb"

    def test_dive_produces_incumbent_early(self):
        m, _ = knapsack_model([4, 3, 2, 5, 6, 7], [5, 4, 3, 7, 8, 9], 13)
        sol = m.solve(dive=True)
        assert sol.stats.incumbent_updates >= 1


@st.composite
def random_milp(draw):
    """Random bounded binary MILPs (maximization knapsack-like with extras)."""
    n = draw(st.integers(2, 7))
    m_rows = draw(st.integers(1, 4))
    coef = st.integers(0, 9)
    obj = [draw(st.integers(-5, 9)) for _ in range(n)]
    rows = [[draw(coef) for _ in range(n)] for _ in range(m_rows)]
    rhs = [draw(st.integers(1, 18)) for _ in range(m_rows)]
    return obj, rows, rhs


class TestAgainstHighs:
    @given(random_milp())
    @settings(max_examples=40)
    def test_matches_scipy_milp(self, instance):
        obj, rows, rhs = instance
        n = len(obj)
        m = Model("rand")
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        for row, cap in zip(rows, rhs):
            m.add_constr(quicksum(a * x for a, x in zip(row, xs)) <= cap)
        m.maximize(quicksum(p * x for p, x in zip(obj, xs)))
        ours = m.solve()
        ref = m.solve(backend="scipy")
        assert ours.status is Status.OPTIMAL and ref.status is Status.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
        assert m.check_solution(ours.rounded()) == []

    @given(st.integers(0, 500))
    @settings(max_examples=25)
    def test_assignment_instances_match(self, seed):
        rng = np.random.default_rng(seed)
        jobs, machines = int(rng.integers(3, 7)), int(rng.integers(2, 4))
        times = rng.integers(1, 30, size=(jobs, machines))
        m = Model("assign")
        x = {
            (i, j): m.add_binary(f"x{i}_{j}") for i in range(jobs) for j in range(machines)
        }
        T = m.add_var("T")
        for i in range(jobs):
            m.add_constr(quicksum(x[i, j] for j in range(machines)) == 1)
        for j in range(machines):
            m.add_constr(
                quicksum(int(times[i, j]) * x[i, j] for i in range(jobs)) <= T
            )
        m.minimize(T)
        ours = m.solve()
        ref = m.solve(backend="scipy")
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
