"""Tests for the alternative access architectures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc import generate_synthetic_soc
from repro.tam import (
    compare_architectures,
    daisychain_time,
    distribution_allocation,
    multiplexed_time,
)
from repro.util.combinatorics import compositions
from repro.util.errors import InfeasibleError, ValidationError
from repro.wrapper import application_time


class TestMultiplexed:
    def test_is_sum_of_full_width_times(self, s1):
        assert multiplexed_time(s1, 16) == sum(application_time(c, 16) for c in s1)

    def test_monotone_in_width(self, s1):
        times = [multiplexed_time(s1, w) for w in (4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_rejects_bad_width(self, s1):
        with pytest.raises(ValidationError):
            multiplexed_time(s1, 0)


class TestDaisychain:
    def test_overhead_is_bypass_per_pattern(self, s1):
        mux = multiplexed_time(s1, 16)
        daisy = daisychain_time(s1, 16)
        expected_overhead = (len(s1) - 1) * sum(c.num_patterns for c in s1)
        assert daisy - mux == expected_overhead

    def test_always_slower_than_multiplexed(self, s1):
        for width in (4, 16, 48):
            assert daisychain_time(s1, width) >= multiplexed_time(s1, width)


class TestDistribution:
    def test_widths_cover_all_cores_within_budget(self, s1):
        result = distribution_allocation(s1, 24)
        assert len(result.widths) == len(s1)
        assert all(w >= 1 for w in result.widths)
        assert result.total_width <= 24

    def test_makespan_matches_widths(self, s1):
        result = distribution_allocation(s1, 24)
        assert result.makespan == max(
            application_time(core, w) for core, w in zip(s1.cores, result.widths)
        )

    def test_below_core_count_infeasible(self, s1):
        with pytest.raises(InfeasibleError):
            distribution_allocation(s1, len(s1) - 1)

    def test_one_wire_each_is_worst_case(self, s1):
        floor = distribution_allocation(s1, len(s1))
        assert floor.makespan == max(application_time(c, 1) for c in s1)

    def test_monotone_in_width(self, s1):
        times = [distribution_allocation(s1, w).makespan for w in (6, 12, 24, 48)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_saturates_at_knee(self, s1):
        wide = distribution_allocation(s1, 200).makespan
        floor = max(application_time(c, 64) for c in s1)
        assert wide == floor

    @given(st.integers(0, 25), st.integers(3, 8))
    @settings(max_examples=12)
    def test_exact_vs_brute_force(self, seed, extra):
        soc = generate_synthetic_soc(3, seed=seed, mode="parametric")
        total = len(soc) + extra
        exact = distribution_allocation(soc, total)
        best = math.inf
        for combo in compositions(total, len(soc)):
            span = max(application_time(c, w) for c, w in zip(soc.cores, combo))
            best = min(best, span)
        assert exact.makespan == best


class TestComparison:
    def test_fields_and_winner(self, s1):
        comparison = compare_architectures(s1, 16)
        assert comparison.total_width == 16
        assert comparison.best_style() in (
            "multiplexed", "daisychain", "distribution", "test_bus",
        )

    def test_distribution_none_below_core_count(self, s1):
        comparison = compare_architectures(s1, 4, num_buses=2)
        assert comparison.distribution is None

    def test_test_bus_single_bus_equals_multiplexed(self, s1):
        comparison = compare_architectures(s1, 16, num_buses=1)
        assert comparison.test_bus == pytest.approx(comparison.multiplexed)

    def test_crossover_on_s1(self, s1):
        starved = compare_architectures(s1, 8)
        generous = compare_architectures(s1, 32)
        # At 8 wires the 1-wire slices kill distribution; at 32 it is
        # competitive with (or beats) everything.
        assert starved.distribution is None or starved.distribution > starved.test_bus
        assert generous.distribution <= generous.multiplexed
