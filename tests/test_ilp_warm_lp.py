"""Tests for the revised dual simplex and warm-started node LPs.

Two layers: the LP engine itself is pinned against ``scipy.linprog``
(cold and warm-after-bound-change solves must agree on status and
objective), and the branch-and-bound integration is pinned by solving the
same models warm and cold — identical optima, with the warm counters
proving the dual simplex actually answered the node LPs.
"""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core import DesignProblem, design, width_sweep
from repro.ilp import INTEGER, Model, Status, quicksum
from repro.ilp.simplex import Basis, RevisedSimplex
from repro.obs import PresolvePolicy, SolvePolicy, SolverOptions

_RNG_CASES = 40


def _random_form(rng):
    """A random bounded LP as a MatrixForm (ub rows + optional eq row)."""
    n = int(rng.integers(2, 7))
    m_ub = int(rng.integers(1, 5))
    model = Model("rand")
    xs = [
        model.add_var(f"x{j}", lb=0, ub=float(rng.integers(1, 6)))
        for j in range(n)
    ]
    for _ in range(m_ub):
        coefs = rng.integers(-3, 6, size=n)
        rhs = float(rng.integers(1, 15))
        model.add_constr(quicksum(int(a) * x for a, x in zip(coefs, xs)) <= rhs)
    if rng.random() < 0.4:
        coefs = rng.integers(0, 3, size=n)
        if coefs.sum() > 0:
            rhs = float(rng.integers(0, 5))
            model.add_constr(
                quicksum(int(a) * x for a, x in zip(coefs, xs)) == rhs
            )
    obj = rng.integers(-5, 6, size=n)
    model.minimize(quicksum(int(p) * x for p, x in zip(obj, xs)))
    return model.to_matrix_form()


def _scipy_solve(form, lb, ub):
    return linprog(
        form.c,
        A_ub=form.a_ub if form.a_ub.size else None,
        b_ub=form.b_ub if form.a_ub.size else None,
        A_eq=form.a_eq if form.a_eq.size else None,
        b_eq=form.b_eq if form.a_eq.size else None,
        bounds=np.column_stack((lb, ub)),
        method="highs",
    )


class TestRevisedSimplexVsScipy:
    def test_cold_solves_match_scipy(self):
        rng = np.random.default_rng(7)
        mismatches = 0
        for _ in range(_RNG_CASES):
            form = _random_form(rng)
            engine = RevisedSimplex(form)
            ours = engine.solve(form.lb, form.ub)
            ref = _scipy_solve(form, form.lb, form.ub)
            if ref.status == 0:
                if ours.status != "optimal" or abs(
                    ours.objective - (ref.fun + form.c0)
                ) > 1e-6:
                    mismatches += 1
            elif ref.status == 2 and ours.status != "infeasible":
                mismatches += 1
        assert mismatches == 0

    def test_warm_resolve_after_bound_change_matches_scipy(self):
        rng = np.random.default_rng(11)
        checked = 0
        for _ in range(_RNG_CASES):
            form = _random_form(rng)
            engine = RevisedSimplex(form)
            root = engine.solve(form.lb, form.ub)
            if root.status != "optimal":
                continue
            # Branch-like bound change: floor/ceil a random column.
            j = int(rng.integers(0, form.num_vars))
            lb, ub = form.lb.copy(), form.ub.copy()
            if rng.random() < 0.5:
                ub[j] = np.floor(root.x[j])
            else:
                lb[j] = np.ceil(root.x[j] + 1e-9)
            if lb[j] > ub[j]:
                continue
            warm = engine.solve(lb, ub, basis=root.basis)
            ref = _scipy_solve(form, lb, ub)
            if warm.status == "fallback":
                continue  # numerically allowed, the solver re-solves cold
            if ref.status == 0:
                assert warm.status == "optimal"
                assert warm.objective == pytest.approx(
                    ref.fun + form.c0, abs=1e-6
                )
            elif ref.status == 2:
                assert warm.status == "infeasible"
            checked += 1
        assert checked >= _RNG_CASES // 2

    def test_optimal_point_respects_bounds_and_rows(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            form = _random_form(rng)
            res = RevisedSimplex(form).solve(form.lb, form.ub)
            if res.status != "optimal":
                continue
            assert np.all(res.x >= form.lb - 1e-7)
            assert np.all(res.x <= form.ub + 1e-7)
            if form.a_ub.size:
                assert np.all(form.a_ub @ res.x <= form.b_ub + 1e-6)
            if form.a_eq.size:
                assert np.allclose(form.a_eq @ res.x, form.b_eq, atol=1e-6)

    def test_cutoff_prunes_only_provably_worse_nodes(self):
        rng = np.random.default_rng(19)
        for _ in range(20):
            form = _random_form(rng)
            engine = RevisedSimplex(form)
            exact = engine.solve(form.lb, form.ub)
            if exact.status != "optimal":
                continue
            above = engine.solve(form.lb, form.ub, cutoff=exact.objective + 1.0)
            assert above.status == "optimal"
            assert above.objective == pytest.approx(exact.objective, abs=1e-6)
            below = engine.solve(form.lb, form.ub, cutoff=exact.objective - 1.0)
            # Either the dual bound crossed the cutoff (proven prune) or the
            # solve finished and the caller compares objectives itself.
            if below.status == "cutoff":
                continue
            assert below.status == "optimal"
            assert below.objective >= exact.objective - 1e-6

    def test_stale_generation_basis_restarts_cleanly(self):
        rng = np.random.default_rng(23)
        form = _random_form(rng)
        engine = RevisedSimplex(form, generation=5)
        root = engine.solve(form.lb, form.ub)
        assert root.status == "optimal"
        assert root.basis is not None and root.basis.generation == 5
        stale = Basis(
            basic=root.basis.basic.copy(),
            status=root.basis.status.copy(),
            generation=4,
        )
        res = engine.solve(form.lb, form.ub, basis=stale)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(root.objective, abs=1e-9)


def _warm_and_cold(model_factory, **solve_kwargs):
    warm = model_factory().solve(cache=False, **solve_kwargs)
    cold = model_factory().solve(
        cache=False,
        policy=SolvePolicy(solver=SolverOptions(warm_start=False)),
        **solve_kwargs,
    )
    return warm, cold


class TestWarmStartedBranchAndBound:
    def _knapsack(self):
        rng = np.random.default_rng(5)
        weights = rng.integers(5, 40, size=14).tolist()
        profits = rng.integers(5, 40, size=14).tolist()
        m = Model("knapsack")
        xs = [m.add_binary(f"k{i}") for i in range(len(weights))]
        m.add_constr(
            quicksum(w * x for w, x in zip(weights, xs)) <= int(sum(weights) * 0.4)
        )
        m.maximize(quicksum(p * x for p, x in zip(profits, xs)))
        return m

    def test_warm_matches_cold_on_knapsack(self):
        warm, cold = _warm_and_cold(self._knapsack)
        assert warm.status is Status.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.stats.warm_lp_solves > 0
        assert cold.stats.warm_lp_solves == 0

    def test_warm_composes_with_simplex_fallback_engine(self):
        warm, cold = _warm_and_cold(self._knapsack, lp_method="simplex")
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.stats.warm_lp_solves > 0

    def test_warm_matches_cold_on_integer_bounds(self):
        def factory():
            m = Model()
            x = m.add_var("x", lb=1, ub=9, vartype=INTEGER)
            y = m.add_var("y", lb=0, ub=9, vartype=INTEGER)
            m.add_constr(3 * x + 5 * y <= 34)
            m.add_constr(2 * x - y >= 1)
            m.maximize(4 * x + 7 * y)
            return m

        warm, cold = _warm_and_cold(factory)
        assert warm.objective == pytest.approx(cold.objective)

    def test_seeded_s1_sweep_matches_cold_resolves(self, s1):
        """The acceptance sweep: warm-started node LPs reach the same
        optima as cold re-solves across an S1 width sweep."""
        cold_policy = SolvePolicy(
            solver=SolverOptions(
                root_presolve=PresolvePolicy.disabled(), warm_start=False
            )
        )
        warm_points = width_sweep(s1, 2, [8, 12, 16], timing="serial")
        cold_points = width_sweep(
            s1, 2, [8, 12, 16], timing="serial", policy=cold_policy
        )
        assert len(warm_points) == len(cold_points)
        for wp, cp in zip(warm_points, cold_points):
            assert wp.makespan == pytest.approx(cp.makespan)
        warm_total = sum(p.telemetry.warm_lp_solves for p in warm_points)
        fallbacks = sum(p.telemetry.warm_lp_fallbacks for p in warm_points)
        assert warm_total > 0
        # Fallbacks are allowed but must stay the exception.
        assert fallbacks <= warm_total // 10

    def test_power_constrained_design_warm_equals_cold(self, s1, arch3):
        problem = DesignProblem(
            soc=s1, arch=arch3, timing="serial", power_budget=3500.0
        )
        warm = design(problem, cache=False)
        cold = design(
            problem,
            policy=SolvePolicy(solver=SolverOptions(warm_start=False)),
            cache=False,
        )
        assert warm.makespan == pytest.approx(cold.makespan)
        assert warm.stats.warm_lp_solves > 0
