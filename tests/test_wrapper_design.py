"""Tests for the wrapper substrate (scan packing and test-time curves)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc import Core
from repro.util.errors import ValidationError
from repro.wrapper import (
    design_wrapper,
    internal_scan_chains,
    pareto_widths,
    application_time,
    application_time_curve,
)
from repro.wrapper.design import WrapperDesign, _pack_lpt


def make_core(ff=100, inputs=10, outputs=8, patterns=20, width=8, name="w"):
    return Core(
        name=name,
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=ff,
        num_gates=1000,
        num_patterns=patterns,
        test_width=width,
        test_power=10.0,
    )


class TestInternalChains:
    def test_total_preserved_and_balanced(self):
        chains = internal_scan_chains(make_core(ff=103), max_length=50)
        assert sum(chains) == 103
        assert max(chains) - min(chains) <= 1
        assert max(chains) <= 50

    def test_combinational_has_none(self):
        assert internal_scan_chains(make_core(ff=0)) == []

    def test_bad_max_length_rejected(self):
        with pytest.raises(ValidationError):
            internal_scan_chains(make_core(), max_length=0)


class TestLptPacking:
    def test_single_bin(self):
        assert _pack_lpt([3, 1, 2], 1) == [6]

    def test_known_packing(self):
        totals = sorted(_pack_lpt([7, 5, 4, 3, 1], 2))
        assert totals == [10, 10]

    @given(st.lists(st.integers(1, 40), max_size=12), st.integers(1, 6))
    def test_totals_conserved(self, items, bins):
        totals = _pack_lpt(items, bins)
        assert sum(totals) == sum(items)
        assert len(totals) == bins


class TestWrapperDesign:
    def test_formula(self):
        design = WrapperDesign("c", 2, (10, 7), (9, 6))
        # (1 + max(10, 9)) * p + min(10, 9)
        assert design.application_time(5) == 11 * 5 + 9

    def test_rejects_nonpositive_patterns(self):
        with pytest.raises(ValidationError):
            WrapperDesign("c", 1, (3,), (3,)).application_time(0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValidationError):
            design_wrapper(make_core(), 0)

    def test_width_one_serializes_everything(self):
        core = make_core(ff=60, inputs=5, outputs=3, patterns=2)
        design = design_wrapper(core, 1)
        assert design.si == core.scan_in_bits
        assert design.so == core.scan_out_bits

    def test_combinational_core(self):
        core = make_core(ff=0, inputs=16, outputs=4, patterns=3)
        design = design_wrapper(core, 4)
        assert design.si == 4  # 16 input cells over 4 chains
        assert design.application_time(3) == (1 + 4) * 3 + 1

    def test_wide_wrapper_never_slower_than_narrow(self):
        core = make_core(ff=120, patterns=11)
        assert application_time(core, 8) <= application_time(core, 3)


class TestCurves:
    @given(
        st.integers(0, 300),
        st.integers(0, 60),
        st.integers(0, 60),
        st.integers(1, 60),
    )
    def test_curve_monotone_non_increasing(self, ff, inputs, outputs, patterns):
        core = make_core(ff=ff, inputs=inputs, outputs=outputs, patterns=patterns)
        curve = application_time_curve(core, 16)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_curve_positive_everywhere(self):
        curve = application_time_curve(make_core(), 12)
        assert all(t > 0 for t in curve)

    def test_curve_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            application_time_curve(make_core(), 0)

    def test_pareto_widths_strictly_improving(self):
        core = make_core(ff=200, patterns=30)
        widths = pareto_widths(core, 32)
        assert widths[0] == 1
        times = [application_time(core, w) for w in widths]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_pareto_knee_bounded_by_content(self):
        # beyond the longest internal chain no width helps
        core = make_core(ff=100, inputs=0, outputs=0)
        knee = pareto_widths(core, 32)[-1]
        assert knee <= 32
        assert application_time(core, knee) == application_time(core, 32)

    @given(st.integers(1, 32))
    def test_time_matches_design(self, width):
        core = make_core(ff=77, inputs=9, outputs=4, patterns=6)
        assert application_time(core, width) == design_wrapper(core, width).application_time(6)
