"""Tests for the end-to-end designer, cross-checked against the oracle."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DesignProblem, design, design_best_architecture
from repro.ilp import Status
from repro.layout import grid_place
from repro.obs import SolvePolicy
from repro.soc import generate_synthetic_soc
from repro.tam import TamArchitecture, exhaustive_optimal
from repro.util.errors import InfeasibleError, SolverError


class TestDesignUnconstrained:
    @pytest.mark.parametrize("timing", ["fixed", "serial", "flexible"])
    def test_matches_exhaustive_on_s1(self, s1, timing):
        arch = TamArchitecture([32, 16, 16])
        problem = DesignProblem(soc=s1, arch=arch, timing=timing)
        result = design(problem)
        oracle = exhaustive_optimal(s1, arch, problem.timing)
        assert result.makespan == pytest.approx(oracle.makespan)
        assert result.is_proven_optimal
        assert result.status is Status.OPTIMAL

    def test_backends_agree(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        ours = design(problem, backend="bnb")
        ref = design(problem, backend="scipy")
        assert ours.makespan == pytest.approx(ref.makespan)

    def test_bus_times_consistent(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        result = design(problem)
        assert max(result.bus_times) == pytest.approx(result.makespan)
        assert result.bus_times == result.assignment.bus_times(problem.timing)

    def test_wirelength_reported_with_floorplan(self, s1, arch3, s1_floorplan):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial", floorplan=s1_floorplan)
        result = design(problem)
        assert result.wirelength is not None and result.wirelength > 0

    def test_wirelength_absent_without_floorplan(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        assert design(problem).wirelength is None

    def test_describe_includes_solver_info(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        text = design(problem).describe()
        assert "status=optimal" in text and "makespan" in text


class TestDesignConstrained:
    def test_power_constraint_respected_and_optimal(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial", power_budget=110.0)
        result = design(problem)
        oracle = exhaustive_optimal(
            s1, arch3, problem.timing, forced_pairs=problem.forced_pairs
        )
        assert result.makespan == pytest.approx(oracle.makespan)
        for a, b in problem.forced_pairs:
            assert result.assignment.shares_bus(a, b)

    def test_layout_constraint_respected_and_optimal(self, s1, arch3, s1_floorplan):
        problem = DesignProblem(
            soc=s1, arch=arch3, timing="serial",
            floorplan=s1_floorplan, max_pair_distance=5.0,
        )
        result = design(problem)
        oracle = exhaustive_optimal(
            s1, arch3, problem.timing, forbidden_pairs=problem.forbidden_pairs
        )
        assert result.makespan == pytest.approx(oracle.makespan)
        for a, b in problem.forbidden_pairs:
            assert not result.assignment.shares_bus(a, b)

    def test_contradiction_raises_before_solving(self, s1, arch3):
        problem = DesignProblem(
            soc=s1, arch=arch3, timing="serial",
            extra_forced=[(0, 1)], extra_forbidden=[(0, 1)],
        )
        with pytest.raises(InfeasibleError) as excinfo:
            design(problem)
        assert "contradiction" in str(excinfo.value)

    def test_overconstrained_layout_infeasible(self, s1, s1_floorplan):
        arch = TamArchitecture([16, 16])
        problem = DesignProblem(
            soc=s1, arch=arch, timing="serial",
            floorplan=s1_floorplan, max_pair_distance=1.0,
        )
        with pytest.raises(InfeasibleError):
            design(problem)

    def test_constraints_never_improve_time(self, s1, arch3, s1_floorplan):
        base = design(DesignProblem(soc=s1, arch=arch3, timing="serial")).makespan
        constrained = design(
            DesignProblem(
                soc=s1, arch=arch3, timing="serial", power_budget=110.0,
                floorplan=s1_floorplan, max_pair_distance=7.0,
            )
        ).makespan
        assert constrained >= base - 1e-9

    def test_exhausted_strict_policy_raises_solver_error(self, s2):
        arch = TamArchitecture([32, 16, 16])
        problem = DesignProblem(soc=s2, arch=arch, timing="serial")
        with pytest.raises(SolverError):
            design(problem, policy=SolvePolicy(node_budget=1, fallback=()), dive=False)

    def test_legacy_limit_kwargs_are_rejected(self, s2):
        arch = TamArchitecture([32, 16, 16])
        problem = DesignProblem(soc=s2, arch=arch, timing="serial")
        with pytest.raises(TypeError, match="SolvePolicy"):
            design(problem, node_limit=1)


class TestBestArchitecture:
    def test_beats_or_matches_even_split(self, s1):
        sweep = design_best_architecture(s1, 32, 2, timing="serial")
        even = design(
            DesignProblem(soc=s1, arch=TamArchitecture.even_split(32, 2), timing="serial")
        )
        assert sweep.best_makespan <= even.makespan + 1e-9
        assert sweep.evaluated == 16  # partitions of 32 into exactly 2 parts

    def test_per_architecture_trace_complete(self, s1):
        sweep = design_best_architecture(s1, 12, 3, timing="serial")
        assert len(sweep.per_architecture) == sweep.evaluated
        feasible = [m for _, m in sweep.per_architecture if m is not None]
        assert min(feasible) == pytest.approx(sweep.best_makespan)

    def test_infeasible_distributions_counted(self, s1):
        # Fixed-width S1 needs a 16-wide bus; splitting 18 over 3 buses
        # leaves some partitions with no 16-wide bus.
        sweep = design_best_architecture(s1, 18, 3, timing="fixed")
        assert sweep.infeasible > 0
        assert sweep.best is not None

    def test_pruning_is_sound(self, s1):
        # The serial sweep at W=16 prunes several distributions via the
        # certified lower bounds; verify the pruned sweep still finds the
        # true best by solving every distribution manually.
        sweep = design_best_architecture(s1, 16, 3, timing="serial", backend="scipy")
        assert sweep.pruned > 0
        best = math.inf
        for arch in TamArchitecture.enumerate_distributions(16, 3):
            problem = DesignProblem(soc=s1, arch=arch, timing="serial")
            try:
                best = min(best, design(problem, backend="scipy").makespan)
            except InfeasibleError:
                continue
        assert sweep.best_makespan == pytest.approx(best)

    def test_width_infeasible_archs_counted_not_pruned(self, s1):
        # Fixed timing at W=18: distributions lacking a 16-wide bus are
        # provably infeasible and must land in `infeasible`, never `pruned`.
        sweep = design_best_architecture(s1, 18, 3, timing="fixed")
        assert sweep.infeasible > 0
        assert sweep.evaluated == sweep.infeasible + len(
            [m for _, m in sweep.per_architecture if m is not None]
        )

    def test_all_infeasible_returns_none(self, s1):
        sweep = design_best_architecture(s1, 8, 2, timing="fixed")
        assert sweep.best is None
        assert sweep.best_makespan == math.inf
        assert sweep.infeasible == sweep.evaluated


class TestRandomizedOracle:
    @given(st.integers(0, 60))
    @settings(max_examples=15)
    def test_random_instances_match_exhaustive(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        soc = generate_synthetic_soc(int(rng.integers(3, 7)), seed=seed)
        widths = [int(w) for w in rng.choice([4, 8, 16, 32], size=int(rng.integers(2, 4)))]
        arch = TamArchitecture(widths)
        problem = DesignProblem(soc=soc, arch=arch, timing="serial")
        result = design(problem)
        oracle = exhaustive_optimal(soc, arch, problem.timing)
        assert result.makespan == pytest.approx(oracle.makespan)

    @given(st.integers(0, 60))
    @settings(max_examples=10)
    def test_random_constrained_instances_match_exhaustive(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed + 1000)
        soc = generate_synthetic_soc(5, seed=seed)
        arch = TamArchitecture([16, 16, 8])
        floorplan = grid_place(soc)
        powers = sorted(c.test_power for c in soc)
        budget = powers[-1] + powers[-2] * float(rng.uniform(0.3, 1.2))
        delta = floorplan.spread() * float(rng.uniform(0.5, 1.0))
        problem = DesignProblem(
            soc=soc, arch=arch, timing="serial", power_budget=budget,
            floorplan=floorplan, max_pair_distance=delta,
        )
        try:
            result = design(problem)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                exhaustive_optimal(
                    soc, arch, problem.timing,
                    forbidden_pairs=problem.forbidden_pairs,
                    forced_pairs=problem.forced_pairs,
                )
            return
        oracle = exhaustive_optimal(
            soc, arch, problem.timing,
            forbidden_pairs=problem.forbidden_pairs,
            forced_pairs=problem.forced_pairs,
        )
        assert result.makespan == pytest.approx(oracle.makespan)
        assert problem.validate(result.assignment) == []
