"""Tests for LP file format export/import (round-trip + re-solve)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import INTEGER, Model, quicksum
from repro.ilp.lpformat import load_lp, parse_lp, save_lp, write_lp
from repro.util.errors import ValidationError


def knapsack():
    m = Model("ks")
    xs = [m.add_binary(f"x{i}") for i in range(5)]
    weights = [4, 3, 2, 5, 1]
    profits = [5, 4, 3, 6, 1]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 9, name="cap")
    m.maximize(quicksum(p * x for p, x in zip(profits, xs)))
    return m


class TestWriter:
    def test_sections_present(self):
        text = write_lp(knapsack())
        for section in ("Maximize", "Subject To", "Binaries", "End"):
            assert section in text

    def test_constraint_names_kept(self):
        assert "cap:" in write_lp(knapsack())

    def test_minimize_model(self):
        m = Model()
        x = m.add_var("x", lb=2, ub=7)
        m.add_constr(x >= 3)
        m.minimize(x)
        text = write_lp(m)
        assert "Minimize" in text
        assert "2 <= x <= 7" in text

    def test_free_variable_bound(self):
        m = Model()
        m.add_var("f", lb=-math.inf)
        m.minimize(quicksum([]))
        assert "f free" in write_lp(m)

    def test_integer_section(self):
        m = Model()
        m.add_var("n", ub=9, vartype=INTEGER)
        m.minimize(quicksum([]))
        assert "Generals" in write_lp(m)

    def test_unsafe_name_rejected(self):
        m = Model()
        m.add_var("bad name")
        with pytest.raises(ValidationError):
            write_lp(m)


class TestRoundTrip:
    def _assert_same_optimum(self, model):
        original = model.solve(backend="scipy")
        parsed = parse_lp(write_lp(model))
        again = parsed.solve(backend="scipy")
        assert again.status == original.status
        if original.is_feasible:
            assert again.objective == pytest.approx(
                original.objective - model.objective.constant
            )

    def test_knapsack_roundtrip(self):
        self._assert_same_optimum(knapsack())

    def test_dimensions_preserved(self):
        model = knapsack()
        parsed = parse_lp(write_lp(model))
        assert parsed.num_vars == model.num_vars
        assert parsed.num_constraints == model.num_constraints
        assert parsed.num_integer_vars == model.num_integer_vars

    def test_tam_ilp_roundtrip(self, s1, arch3):
        from repro.core import DesignProblem, build_assignment_ilp

        problem = DesignProblem(soc=s1, arch=arch3, timing="serial", power_budget=150.0)
        model = build_assignment_ilp(problem).model
        self._assert_same_optimum(model)

    def test_file_roundtrip(self, tmp_path):
        model = knapsack()
        path = tmp_path / "model.lp"
        save_lp(model, path)
        loaded = load_lp(path)
        assert loaded.solve(backend="scipy").objective == pytest.approx(
            model.solve(backend="scipy").objective
        )

    @given(st.integers(0, 100))
    @settings(max_examples=20)
    def test_random_milps_roundtrip(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = Model("rand")
        xs = [m.add_binary(f"b{i}") for i in range(n)]
        y = m.add_var("y", ub=float(rng.integers(2, 8)))
        rows = int(rng.integers(1, 4))
        for r in range(rows):
            coefs = rng.integers(-4, 6, size=n)
            m.add_constr(
                quicksum(int(c) * x for c, x in zip(coefs, xs)) + y <= int(rng.integers(2, 12)),
                name=f"r{r}",
            )
        m.maximize(quicksum(xs) + 0.5 * y)
        self._assert_same_optimum(m)


class TestParserEdgeCases:
    def test_parse_ge_and_eq(self):
        text = """Minimize
 obj: x + y
Subject To
 a: x >= 1
 b: x + y = 3
End
"""
        model = parse_lp(text)
        solution = model.solve(backend="scipy")
        assert solution.objective == pytest.approx(3.0)

    def test_comments_stripped(self):
        text = "\\ header\nMinimize\n obj: x \\ trailing\nSubject To\n c: x >= 2\nEnd\n"
        model = parse_lp(text)
        assert model.solve(backend="scipy").objective == pytest.approx(2.0)

    def test_implicit_coefficients(self):
        # min 2x + y with x + y >= 4: the optimum leaves x at 0 and pays y=4.
        text = "Minimize\n obj: 2x + y\nSubject To\n c: x + y >= 4\nBounds\n x <= 1\nEnd\n"
        model = parse_lp(text)
        assert model.solve(backend="scipy").objective == pytest.approx(4.0)

    def test_malformed_constraint_raises(self):
        with pytest.raises(ValidationError):
            parse_lp("Minimize\n obj: x\nSubject To\n c: x ! 3\nEnd\n")

    def test_malformed_bound_raises(self):
        with pytest.raises(ValidationError):
            parse_lp("Minimize\n obj: x\nSubject To\n c: x >= 1\nBounds\n x ~ 3\nEnd\n")

    def test_binaries_clamp_bounds(self):
        text = "Maximize\n obj: x\nSubject To\n c: x <= 5\nBinaries\n x\nEnd\n"
        model = parse_lp(text)
        assert model.solve(backend="scipy").objective == pytest.approx(1.0)
