"""Tests for the ISCAS catalog and the academic SOC builders."""

import pytest

from repro.soc import CATALOG, build_s1, build_s2, build_s3, build_soc, catalog_core, catalog_names
from repro.soc.catalog import POWER_SCALE, _derive_test_width
from repro.util.errors import ValidationError


class TestCatalog:
    def test_all_entries_valid_cores(self):
        for name, core in CATALOG.items():
            assert core.name == name
            assert core.num_patterns > 0
            assert 4 <= core.test_width <= 32
            assert core.test_width % 4 == 0

    def test_known_structural_stats(self):
        s5378 = CATALOG["s5378"]
        assert (s5378.num_inputs, s5378.num_outputs) == (35, 49)
        assert s5378.num_flipflops == 179
        assert s5378.num_gates == 2779
        c6288 = CATALOG["c6288"]
        assert c6288.num_flipflops == 0

    def test_power_derivation_rule(self):
        for core in CATALOG.values():
            assert core.test_power == pytest.approx(
                round(core.num_gates * core.activity * POWER_SCALE, 1)
            )

    def test_width_rule_monotone_in_bits(self):
        assert _derive_test_width(10, 10, 0) <= _derive_test_width(10, 10, 600)
        assert _derive_test_width(2000, 2000, 2000) == 32  # capped

    def test_catalog_names_sorted_by_family_then_size(self):
        names = catalog_names()
        comb = [n for n in names if n.startswith("c")]
        seq = [n for n in names if n.startswith("s")]
        assert names == comb + seq
        gates = [CATALOG[n].num_gates for n in comb]
        assert gates == sorted(gates)

    def test_unknown_core_rejected(self):
        with pytest.raises(ValidationError):
            catalog_core("s99999")

    def test_rename_does_not_mutate_catalog(self):
        renamed = catalog_core("c880", rename="my_c880")
        assert renamed.name == "my_c880"
        assert CATALOG["c880"].name == "c880"


class TestBuilders:
    def test_s1_composition(self):
        s1 = build_s1()
        assert s1.name == "S1"
        assert s1.core_names == ["c880", "c2670", "c7552", "s953", "s5378", "s1196"]

    def test_s2_has_ten_cores(self):
        assert len(build_s2()) == 10

    def test_s3_merges_s1_and_s2(self):
        s3 = build_s3()
        assert len(s3) == 18
        assert set(build_s1().core_names) <= set(s3.core_names)

    def test_duplicate_instances_renamed(self):
        soc = build_soc("D", ["c880", "c880", "c880"], die_width=5, die_height=5)
        assert soc.core_names == ["c880", "c880_2", "c880_3"]

    def test_builders_are_fresh_objects(self):
        assert build_s1() is not build_s1()

    def test_die_scales_with_system(self):
        assert build_s2().die_width > build_s1().die_width
