"""Tests for resource metrics, wrapper overhead, and B&B warm starts."""

import pytest

from repro.core import DesignProblem, design, lpt_assignment
from repro.soc import build_s1
from repro.tam import (
    Assignment,
    TamArchitecture,
    ate_vector_memory,
    core_test_data_volume,
    make_timing_model,
    soc_test_data_volume,
    tam_utilization,
)
from repro.util.errors import ValidationError
from repro.wrapper.overhead import (
    GE_CONTROL,
    GE_PER_BOUNDARY_CELL,
    GE_PER_BYPASS_BIT,
    soc_wrapper_overhead,
    wrapper_overhead,
)


class TestDataVolume:
    def test_core_volume_formula(self, s1):
        core = s1["s5378"]
        expected = core.num_patterns * (core.scan_in_bits + core.scan_out_bits)
        assert core_test_data_volume(core) == expected

    def test_soc_volume_is_sum(self, s1):
        assert soc_test_data_volume(s1) == sum(
            core_test_data_volume(c) for c in s1
        )

    def test_volume_independent_of_architecture(self, s1):
        # data volume is a property of the test sets, not the TAM
        assert soc_test_data_volume(s1) == 176653


class TestUtilization:
    @pytest.fixture(scope="class")
    def designed(self):
        soc = build_s1()
        problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 16, 16]), timing="serial")
        return soc, problem, design(problem).assignment

    def test_accounting_balances(self, designed):
        soc, problem, assignment = designed
        u = tam_utilization(soc, assignment, problem.timing)
        assert u.active_wire_cycles + u.schedule_slack + u.width_slack == pytest.approx(
            u.total_wire_cycles
        )

    def test_utilization_in_range(self, designed):
        soc, problem, assignment = designed
        u = tam_utilization(soc, assignment, problem.timing)
        assert 0 < u.utilization <= 1

    def test_flexible_has_no_width_slack(self, designed):
        soc, _, _ = designed
        timing = make_timing_model("flexible")
        problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 16, 16]), timing=timing)
        assignment = design(problem).assignment
        u = tam_utilization(soc, assignment, timing)
        assert u.width_slack == 0.0

    def test_single_bus_fully_scheduled(self, designed):
        soc, _, _ = designed
        timing = make_timing_model("flexible")
        arch = TamArchitecture([16])
        assignment = Assignment(soc, arch, (0,) * len(soc))
        u = tam_utilization(soc, assignment, timing)
        assert u.schedule_slack == 0.0
        assert u.utilization == pytest.approx(1.0)

    def test_ate_memory_bounds(self, designed):
        soc, problem, assignment = designed
        memory = ate_vector_memory(assignment, problem.timing)
        u = tam_utilization(soc, assignment, problem.timing)
        assert u.active_wire_cycles - 1e-6 <= memory <= u.total_wire_cycles + 1e-6

    def test_str_mentions_slacks(self, designed):
        soc, problem, assignment = designed
        text = str(tam_utilization(soc, assignment, problem.timing))
        assert "schedule slack" in text and "width slack" in text


class TestWrapperOverhead:
    def test_formula(self, s1):
        core = s1["c880"]
        estimate = wrapper_overhead(core, width=8)
        assert estimate.boundary_cells == core.num_inputs + core.num_outputs
        assert estimate.total_ge == (
            estimate.boundary_cells * GE_PER_BOUNDARY_CELL
            + 8 * GE_PER_BYPASS_BIT
            + GE_CONTROL
        )

    def test_default_width_is_native(self, s1):
        core = s1["s5378"]
        assert wrapper_overhead(core).width == core.test_width

    def test_bad_width_rejected(self, s1):
        with pytest.raises(ValidationError):
            wrapper_overhead(s1["c880"], width=0)

    def test_soc_aggregate(self, s1):
        aggregate = soc_wrapper_overhead(s1)
        assert aggregate.total_ge == sum(e.total_ge for e in aggregate.per_core)
        assert aggregate.area_fraction == pytest.approx(
            aggregate.total_ge / s1.total_gates
        )

    def test_custom_widths_honored(self, s1):
        custom = soc_wrapper_overhead(s1, widths={"c880": 32})
        default = soc_wrapper_overhead(s1)
        assert custom.total_ge > default.total_ge  # 32 > c880's native 4


class TestWarmStart:
    def test_same_optimum_and_incumbent_installed(self, s1, arch3):
        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        cold = design(problem)
        warm = design(problem, warm_start_heuristic=True)
        assert warm.makespan == pytest.approx(cold.makespan)
        assert warm.stats.incumbent_updates >= 1

    def test_infeasible_warm_start_rejected(self, s1, arch3):
        from repro.core import build_assignment_ilp

        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        formulation = build_assignment_ilp(problem)
        bad = {var: 1.0 for var in formulation.model.variables}
        with pytest.raises(ValidationError):
            formulation.model.solve(warm_start=bad)

    def test_warm_start_from_lpt_is_feasible(self, s1, arch3):
        from repro.core import build_assignment_ilp

        problem = DesignProblem(soc=s1, arch=arch3, timing="serial", power_budget=150.0)
        baseline = lpt_assignment(problem)
        formulation = build_assignment_ilp(problem)
        values = {
            var: 1.0 if baseline.assignment.bus_of[i] == j else 0.0
            for (i, j), var in formulation.x.items()
        }
        values[formulation.makespan_var] = baseline.makespan
        solution = formulation.model.solve(warm_start=values)
        assert solution.is_optimal
