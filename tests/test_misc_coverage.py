"""Assorted coverage: doctests, charts in figures, CLI on d695, solver edges."""

import doctest

import pytest

import repro.util.combinatorics
import repro.util.tables
from repro.cli import main
from repro.ilp.simplex import solve_lp_simplex


class TestDoctests:
    @pytest.mark.parametrize(
        "module", [repro.util.combinatorics, repro.util.tables], ids=lambda m: m.__name__
    )
    def test_module_doctests(self, module):
        failures, tests = doctest.testmod(module, verbose=False).failed, doctest.testmod(module).attempted
        assert tests > 0
        assert failures == 0


class TestFigureCharts:
    def test_f1_attaches_chart(self, s1):
        from repro.experiments import f1_width

        result = f1_width.run(soc=s1, bus_counts=(2,), total_widths=[8, 16, 24])
        assert result.charts, "F1 must render its staircase chart"
        assert "total TAM width" in result.charts[0]

    def test_f2_staircase_chart(self, s1):
        from repro.experiments import f2_power_curve

        result = f2_power_curve.run(soc=s1)
        assert any("P_max" in chart for chart in result.charts)
        assert "legend:" in result.charts[0]

    def test_charts_render_in_output(self, s1):
        from repro.experiments import f2_power_curve

        result = f2_power_curve.run(soc=s1)
        assert result.charts[0] in result.render()


class TestCliMore:
    def test_describe_d695(self, capsys):
        assert main(["describe", "d695"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "s38417" in out

    def test_design_d695_flexible(self, capsys):
        code = main(["design", "d695", "--widths", "16,8,8", "--timing", "flexible"])
        assert code == 0
        assert "TAM design report" in capsys.readouterr().out

    def test_sweep_infeasible_exit_code(self, capsys):
        # Fixed timing with an 8-wire budget cannot host S1's 16-wide cores.
        code = main(["sweep", "S1", "--total-width", "8", "--buses", "2",
                     "--timing", "fixed"])
        assert code == 1
        assert "no feasible width distribution" in capsys.readouterr().out

    def test_synthetic_spec_in_design(self, capsys):
        assert main(["design", "SYN4:3", "--widths", "16,16"]) == 0
        assert "SYN4" in capsys.readouterr().out


class TestSimplexEdges:
    def test_iteration_limit_status(self):
        import numpy as np

        # A nontrivial LP with a 1-iteration budget cannot finish.
        rng = np.random.default_rng(0)
        n = 6
        c = -np.ones(n)
        a_ub = rng.uniform(0.5, 2.0, size=(4, n))
        b_ub = np.full(4, 10.0)
        result = solve_lp_simplex(
            c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0),
            np.zeros(n), np.full(n, np.inf), max_iter=1,
        )
        assert result.status == "iteration_limit"

    def test_zero_variable_free_problem(self):
        import numpy as np

        result = solve_lp_simplex(
            np.zeros(1), np.zeros((0, 1)), np.zeros(0),
            np.zeros((0, 1)), np.zeros(0), np.zeros(1), np.ones(1),
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(0.0)


class TestDesignerOptions:
    def test_sweep_with_warm_start(self, s1):
        from repro.core import design_best_architecture

        plain = design_best_architecture(s1, 16, 2, timing="serial")
        warm = design_best_architecture(
            s1, 16, 2, timing="serial", warm_start_heuristic=True
        )
        assert warm.best_makespan == pytest.approx(plain.best_makespan)

    def test_report_gantt_width_parameter(self, s1, arch3):
        from repro.core import DesignProblem, design
        from repro.core.report import design_report

        problem = DesignProblem(soc=s1, arch=arch3, timing="serial")
        text = design_report(design(problem), gantt_width=30)
        gantt_rows = [l for l in text.splitlines() if l.strip().startswith("bus ") and ":" in l and "." in l]
        assert gantt_rows
