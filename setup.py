"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network, so PEP 517 editable installs (which build an editable wheel) fail.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (or
plain ``pip install -e .`` on older pips) take the classic ``setup.py
develop`` path. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
