"""Core placement: a deterministic grid placer and a simulated-annealing placer.

The layout constraints only consume center-to-center distances, so the
placers optimize for legality (no overlaps, inside the die) plus a simple
communication objective. Absent a functional netlist, connectivity is modeled
the way early interconnect-planning papers do for IP blocks: every core talks
to the test pads in proportion to its I/O count, and cores adjacent in the
SOC list form a pipeline. This gives annealing a real objective while keeping
everything derivable from the SOC alone.
"""

from __future__ import annotations

import math

from repro.layout.floorplan import Block, Floorplan, block_dimensions
from repro.soc.system import Soc
from repro.util.errors import ValidationError
from repro.util.rng import RngLike, make_rng


def _grid_shape(count: int) -> tuple[int, int]:
    """Near-square rows x cols grid with at least ``count`` cells."""
    cols = math.ceil(math.sqrt(count))
    rows = math.ceil(count / cols)
    return rows, cols


def _blocks_at_slots(soc: Soc, slot_of: list[int]) -> list[Block]:
    """Materialize blocks with core ``i`` centered in grid slot ``slot_of[i]``."""
    rows, cols = _grid_shape(len(soc))
    cell_w = soc.die_width / cols
    cell_h = soc.die_height / rows
    blocks = []
    for i, core in enumerate(soc.cores):
        slot = slot_of[i]
        row, col = divmod(slot, cols)
        width, height = block_dimensions(core.area_mm2)
        # Shrink any block that would not fit its cell (keeps legality for
        # pathological area distributions at the cost of mild distortion).
        scale = min(1.0, 0.95 * cell_w / width, 0.95 * cell_h / height)
        blocks.append(
            Block(
                core.name,
                x=(col + 0.5) * cell_w,
                y=(row + 0.5) * cell_h,
                width=width * scale,
                height=height * scale,
            )
        )
    return blocks


def grid_place(soc: Soc) -> Floorplan:
    """Deterministic placement: cores in SOC order, row-major on a grid.

    The reproducible default used by every experiment. Large and small cores
    mix across the die, so pairwise distances span the whole sweep range.
    """
    return Floorplan(soc, _blocks_at_slots(soc, list(range(len(soc)))))


def _wirelength_proxy(soc: Soc, floorplan: Floorplan) -> float:
    """Communication objective: pad tethers weighted by I/O + pipeline chain."""
    total = 0.0
    sx, sy = floorplan.source_pad
    tx, ty = floorplan.sink_pad
    for i, core in enumerate(soc.cores):
        x, y = floorplan.position(i)
        io_weight = (core.num_inputs + core.num_outputs) / 100.0
        total += io_weight * min(abs(x - sx) + abs(y - sy), abs(x - tx) + abs(y - ty))
    for i in range(len(soc) - 1):
        total += floorplan.distance(i, i + 1)
    return total


def anneal_place(
    soc: Soc,
    seed: RngLike = 0,
    iterations: int = 2000,
    initial_temperature: float | None = None,
) -> Floorplan:
    """Simulated-annealing placement over grid-slot permutations.

    Moves swap the slots of two cores (or move a core to an empty slot);
    the objective is :func:`_wirelength_proxy`. Slot-based moves keep every
    intermediate state legal, so the placer cannot return an illegal plan.
    """
    if iterations < 0:
        raise ValidationError(f"iterations must be non-negative, got {iterations}")
    rng = make_rng(seed)
    n = len(soc)
    rows, cols = _grid_shape(n)
    num_slots = rows * cols

    slot_of = list(range(n))
    current_plan = Floorplan(soc, _blocks_at_slots(soc, slot_of))
    current_cost = _wirelength_proxy(soc, current_plan)
    best_slots = list(slot_of)
    best_cost = current_cost

    temperature = initial_temperature if initial_temperature is not None else current_cost * 0.1 + 1.0
    cooling = 0.995

    for _ in range(iterations):
        trial = list(slot_of)
        a = int(rng.integers(n))
        target_slot = int(rng.integers(num_slots))
        occupant = next((i for i, s in enumerate(trial) if s == target_slot), None)
        if occupant == a:
            continue
        if occupant is None:
            trial[a] = target_slot
        else:
            trial[a], trial[occupant] = trial[occupant], trial[a]
        trial_plan = Floorplan(soc, _blocks_at_slots(soc, trial))
        trial_cost = _wirelength_proxy(soc, trial_plan)
        delta = trial_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            slot_of = trial
            current_cost = trial_cost
            if current_cost < best_cost:
                best_cost = current_cost
                best_slots = list(slot_of)
        temperature *= cooling

    return Floorplan(soc, _blocks_at_slots(soc, best_slots))
