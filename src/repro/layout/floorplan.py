"""Floorplan model: core blocks placed on the die."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.soc.system import Soc
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Block:
    """An axis-aligned placed block (center coordinates, mm)."""

    name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax)."""
        return (
            self.x - self.width / 2,
            self.y - self.height / 2,
            self.x + self.width / 2,
            self.y + self.height / 2,
        )

    def overlaps(self, other: Block, slack: float = 1e-9) -> bool:
        ax0, ay0, ax1, ay1 = self.bounds
        bx0, by0, bx1, by1 = other.bounds
        return ax0 < bx1 - slack and bx0 < ax1 - slack and ay0 < by1 - slack and by0 < ay1 - slack


class Floorplan:
    """A placement of every core of an SOC inside its die.

    Blocks are indexed like the SOC's cores. The TAM source and sink pads sit
    on the die boundary (test pins enter at the left edge midpoint and leave
    at the right edge midpoint by default), matching the single-entry/
    single-exit test bus topology of the paper.
    """

    def __init__(
        self,
        soc: Soc,
        blocks: list[Block],
        source_pad: tuple[float, float] | None = None,
        sink_pad: tuple[float, float] | None = None,
    ):
        if len(blocks) != len(soc):
            raise ValidationError(
                f"floorplan has {len(blocks)} blocks but SOC {soc.name!r} has {len(soc)} cores"
            )
        for core, block in zip(soc.cores, blocks):
            if core.name != block.name:
                raise ValidationError(
                    f"block order mismatch: expected {core.name!r}, got {block.name!r}"
                )
        self.soc = soc
        self.blocks = list(blocks)
        self.source_pad = source_pad or (0.0, soc.die_height / 2)
        self.sink_pad = sink_pad or (soc.die_width, soc.die_height / 2)

    # ------------------------------------------------------------ validation
    def out_of_die(self, tolerance: float = 1e-6) -> list[str]:
        """Names of blocks extending beyond the die boundary."""
        names = []
        for block in self.blocks:
            x0, y0, x1, y1 = block.bounds
            if (
                x0 < -tolerance
                or y0 < -tolerance
                or x1 > self.soc.die_width + tolerance
                or y1 > self.soc.die_height + tolerance
            ):
                names.append(block.name)
        return names

    def overlapping_pairs(self) -> list[tuple[str, str]]:
        """Pairs of blocks that physically overlap (should be empty)."""
        pairs = []
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1 :]:
                if a.overlaps(b):
                    pairs.append((a.name, b.name))
        return pairs

    def is_legal(self) -> bool:
        return not self.out_of_die() and not self.overlapping_pairs()

    # ------------------------------------------------------------- distances
    def position(self, index: int) -> tuple[float, float]:
        block = self.blocks[index]
        return (block.x, block.y)

    def distance(self, i: int, j: int) -> float:
        """Manhattan center-to-center distance between cores ``i`` and ``j``."""
        xi, yi = self.position(i)
        xj, yj = self.position(j)
        return abs(xi - xj) + abs(yi - yj)

    def distance_matrix(self) -> np.ndarray:
        """Dense symmetric Manhattan distance matrix over core indices."""
        n = len(self.blocks)
        coordinates = np.array([[b.x, b.y] for b in self.blocks])
        diff = coordinates[:, None, :] - coordinates[None, :, :]
        return np.abs(diff).sum(axis=2)

    def spread(self) -> float:
        """Largest pairwise distance — the scale for distance-budget sweeps."""
        matrix = self.distance_matrix()
        return float(matrix.max())

    def describe(self) -> str:
        lines = [
            f"Floorplan of {self.soc.name} on {self.soc.die_width:g}x"
            f"{self.soc.die_height:g} mm (legal={self.is_legal()})"
        ]
        for block in self.blocks:
            lines.append(
                f"  {block.name}: center ({block.x:.2f}, {block.y:.2f}), "
                f"{block.width:.2f}x{block.height:.2f} mm"
            )
        return "\n".join(lines)


def block_dimensions(area: float, aspect: float = 1.0) -> tuple[float, float]:
    """Width/height of a block of ``area`` mm^2 at the given aspect ratio."""
    if area <= 0:
        raise ValidationError(f"block area must be positive, got {area}")
    if aspect <= 0:
        raise ValidationError(f"aspect ratio must be positive, got {aspect}")
    width = math.sqrt(area * aspect)
    return width, area / width
