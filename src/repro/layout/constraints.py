"""Deriving place-and-route constraints from a floorplan.

The paper's layout constraint family: two cores farther apart than a
distance budget ``delta`` must not share a test bus — chaining them would
stretch the bus across the die and congest routing. The constraint set is a
step function of ``delta``; :func:`distance_sweep_points` yields exactly the
budgets where it changes, and :func:`min_workable_distance` bounds how tight
a budget can get before no architecture with the requested bus count exists.
"""

from __future__ import annotations

import itertools


from repro.layout.floorplan import Floorplan
from repro.util.errors import ValidationError


def forbidden_pairs_by_distance(floorplan: Floorplan, delta: float) -> list[tuple[int, int]]:
    """Core index pairs whose Manhattan distance exceeds ``delta``.

    These pairs may not share a bus. ``delta`` at or above the floorplan's
    spread yields no constraints (the unconstrained problem).
    """
    if delta < 0:
        raise ValidationError(f"distance budget must be non-negative, got {delta}")
    matrix = floorplan.distance_matrix()
    n = matrix.shape[0]
    return [
        (i, j)
        for i, j in itertools.combinations(range(n), 2)
        if matrix[i, j] > delta + 1e-12
    ]


def distance_sweep_points(floorplan: Floorplan) -> list[float]:
    """Distinct pairwise distances, descending — the sweep's change points.

    Sweeping ``delta`` through these values tightens the constraint set one
    step at a time, tracing the full wirelength/testing-time tradeoff.
    """
    matrix = floorplan.distance_matrix()
    n = matrix.shape[0]
    # Exact float values: at delta == distance the pair still shares freely
    # (strict >), so each point is the loosest budget with that pair forbidden
    # just below it. Values within 1e-9 of each other (numpy summation-order
    # noise on symmetric placements) are collapsed to their largest member so
    # a sweep never solves the same constraint set twice.
    values = sorted(
        {float(matrix[i, j]) for i, j in itertools.combinations(range(n), 2)},
        reverse=True,
    )
    deduped: list[float] = []
    for value in values:
        if not deduped or deduped[-1] - value > 1e-9:
            deduped.append(value)
    return deduped


def min_workable_distance(floorplan: Floorplan, num_buses: int) -> float:
    """Smallest ``delta`` for which cores *can* be spread over ``num_buses``.

    Below this value the "must not share" graph needs more than
    ``num_buses`` colors. Computed by binary search over the sweep points
    with a greedy (largest-first) coloring as the feasibility check, so the
    returned value is a safe (possibly slightly conservative) budget: at or
    above it a valid bus split certainly exists.
    """
    import networkx as nx

    if num_buses <= 0:
        raise ValidationError(f"num_buses must be positive, got {num_buses}")
    points = distance_sweep_points(floorplan)
    if not points:
        return 0.0
    workable = points[0]
    for delta in points:  # descending: constraints tighten monotonically
        graph = nx.Graph()
        graph.add_nodes_from(range(len(floorplan.blocks)))
        graph.add_edges_from(forbidden_pairs_by_distance(floorplan, delta))
        coloring = nx.greedy_color(graph, strategy="largest_first")
        if max(coloring.values(), default=0) + 1 <= num_buses:
            workable = delta
        else:
            break
    return workable
