"""ASCII floorplan rendering.

Draws the die as a character grid with each core's block filled by an index
letter, plus the TAM source/sink pads — enough to eyeball why a distance
budget forbids a pairing. Used by the layout example and the CLI.
"""

from __future__ import annotations

import string

from repro.layout.floorplan import Floorplan
from repro.util.errors import ValidationError


def render_floorplan(floorplan: Floorplan, width: int = 64) -> str:
    """Render the floorplan to ASCII at ``width`` columns.

    Rows are scaled by the die aspect ratio (terminal cells are ~2x taller
    than wide, so rows are halved). Each block is labeled a, b, c, ... in
    core order; a trailing legend maps letters to core names.
    """
    if width < 16:
        raise ValidationError(f"render width must be >= 16, got {width}")
    soc = floorplan.soc
    height = max(4, int(width * (soc.die_height / soc.die_width) / 2))
    grid = [["."] * width for _ in range(height)]

    labels = string.ascii_lowercase + string.ascii_uppercase
    if len(floorplan.blocks) > len(labels):
        raise ValidationError(
            f"cannot label {len(floorplan.blocks)} blocks with {len(labels)} letters"
        )

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int(x / soc.die_width * (width - 1))))

    def to_row(y: float) -> int:
        # y grows upward on the die, downward on screen.
        return min(height - 1, max(0, int((1 - y / soc.die_height) * (height - 1))))

    for index, block in enumerate(floorplan.blocks):
        x0, y0, x1, y1 = block.bounds
        c0, c1 = to_col(x0), to_col(x1)
        r0, r1 = to_row(y1), to_row(y0)
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                grid[row][col] = labels[index]

    sc, sr = to_col(floorplan.source_pad[0]), to_row(floorplan.source_pad[1])
    tc, tr = to_col(floorplan.sink_pad[0]), to_row(floorplan.sink_pad[1])
    grid[sr][sc] = ">"
    grid[tr][tc] = "<"

    lines = [f"{soc.name} die ({soc.die_width:g} x {soc.die_height:g} mm); > source pad, < sink pad"]
    lines += ["".join(row) for row in grid]
    legend = ", ".join(
        f"{labels[i]}={block.name}" for i, block in enumerate(floorplan.blocks)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
