"""Place-and-route substrate.

The DAC 2000 layout constraints need three physical ingredients the paper
takes from its floorplan:

- a **placement** of cores on the die (:class:`Floorplan`, built by the
  deterministic grid placer or the simulated-annealing placer);
- **distances** between cores, feeding the pairwise "too far to share a
  bus" constraints (:mod:`repro.layout.constraints`);
- **TAM wirelength** estimates for a designed architecture
  (:mod:`repro.layout.routing`): bounding-box, daisy-chain tour, and
  rectilinear-MST Steiner estimates, width-weighted into routing cost.
"""

from repro.layout.floorplan import Block, Floorplan
from repro.layout.placers import grid_place, anneal_place
from repro.layout.routing import (
    bounding_box_length,
    chain_tour_length,
    rectilinear_mst_length,
    bus_wirelength,
    tam_wirelength,
)
from repro.layout.constraints import (
    forbidden_pairs_by_distance,
    distance_sweep_points,
    min_workable_distance,
)
from repro.layout.render import render_floorplan

__all__ = [
    "Block",
    "Floorplan",
    "grid_place",
    "anneal_place",
    "bounding_box_length",
    "chain_tour_length",
    "rectilinear_mst_length",
    "bus_wirelength",
    "tam_wirelength",
    "forbidden_pairs_by_distance",
    "distance_sweep_points",
    "min_workable_distance",
    "render_floorplan",
]
