"""TAM wirelength estimation.

A test bus physically visits every core assigned to it, entering from the
TAM source pad and ending at the sink pad. Three standard early-planning
estimators, all in Manhattan geometry:

- :func:`bounding_box_length` — semi-perimeter of the points' bounding box
  (the classic net-length lower-bound proxy);
- :func:`chain_tour_length` — a nearest-neighbor daisy chain from source
  through all cores to sink, the topology test buses actually use;
- :func:`rectilinear_mst_length` — minimum spanning tree length, the usual
  Steiner-tree approximation (within 1.5x of rectilinear SMT).

``bus_wirelength``/``tam_wirelength`` fold these over an architecture, and
weight by bus width: a w-bit bus routes w parallel wires, so its routing
cost is ``w x length`` (the paper's place-and-route cost currency).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.layout.floorplan import Floorplan
from repro.tam.assignment import Assignment
from repro.util.errors import ValidationError

Point = tuple[float, float]

_METHODS = ("chain", "bbox", "mst")


def _manhattan(a: Point, b: Point) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def bounding_box_length(points: Sequence[Point]) -> float:
    """Semi-perimeter of the smallest axis-aligned box containing ``points``."""
    if not points:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def chain_tour_length(source: Point, stops: Sequence[Point], sink: Point) -> float:
    """Greedy nearest-neighbor path source -> all stops -> sink.

    Models the daisy-chained test bus: the TAM enters at the source pad,
    threads through each core's wrapper once, and exits at the sink pad.
    """
    remaining = list(stops)
    position = source
    total = 0.0
    while remaining:
        nearest = min(range(len(remaining)), key=lambda k: _manhattan(position, remaining[k]))
        total += _manhattan(position, remaining[nearest])
        position = remaining.pop(nearest)
    return total + _manhattan(position, sink)


def rectilinear_mst_length(points: Sequence[Point]) -> float:
    """Manhattan minimum-spanning-tree length over ``points``."""
    if len(points) < 2:
        return 0.0
    graph = nx.Graph()
    for i, a in enumerate(points):
        for j in range(i + 1, len(points)):
            graph.add_edge(i, j, weight=_manhattan(a, points[j]))
    tree = nx.minimum_spanning_tree(graph)
    return float(sum(data["weight"] for _, _, data in tree.edges(data=True)))


def bus_wirelength(
    floorplan: Floorplan,
    core_indices: Sequence[int],
    method: str = "chain",
) -> float:
    """Estimated route length (mm) of one bus visiting ``core_indices``.

    An empty bus still costs a source-to-sink trunk under the ``chain``
    model; it costs zero under ``bbox``/``mst`` over no cores.
    """
    if method not in _METHODS:
        raise ValidationError(f"unknown wirelength method {method!r}; expected one of {_METHODS}")
    stops = [floorplan.position(i) for i in core_indices]
    if method == "chain":
        return chain_tour_length(floorplan.source_pad, stops, floorplan.sink_pad)
    if method == "bbox":
        return bounding_box_length([floorplan.source_pad, *stops, floorplan.sink_pad]) if stops else 0.0
    return rectilinear_mst_length([floorplan.source_pad, *stops, floorplan.sink_pad]) if stops else 0.0


def tam_wirelength(
    floorplan: Floorplan,
    assignment: Assignment,
    method: str = "chain",
    width_weighted: bool = True,
) -> float:
    """Total TAM routing cost of an assignment.

    With ``width_weighted`` (default) each bus contributes
    ``width x length`` — wire-mm, the quantity a router pays. Otherwise raw
    route length in mm. Buses with no cores contribute nothing (their wires
    would not be routed at all).
    """
    total = 0.0
    for bus in range(assignment.arch.num_buses):
        members = assignment.cores_on_bus(bus)
        if not members:
            continue
        length = bus_wirelength(floorplan, members, method=method)
        weight = assignment.arch.width_of(bus) if width_weighted else 1.0
        total += weight * length
    return total
