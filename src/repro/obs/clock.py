"""The observability layer's single source of wall-clock time.

Lint rule C006 forbids direct ``time.perf_counter()`` / ``time.time()``
calls outside :mod:`repro.obs` and :mod:`repro.runtime`: ad-hoc timing
scattered through solver and experiment code produced nondeterministic
table columns (the pre-PR-2 T2 regression) and made it impossible to
attribute where solve time went. All timing flows through this module —
either directly via :func:`now` / :class:`Stopwatch` or, preferably,
through the span API in :mod:`repro.obs.tracing` which records *where*
the time was spent, not just how much.
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic wall-clock reading in seconds (``time.perf_counter``)."""
    return time.perf_counter()


class Stopwatch:
    """Context manager measuring one elapsed interval.

    >>> with Stopwatch() as sw:
    ...     work()
    >>> sw.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.end: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.start = now()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end = now()

    @property
    def elapsed(self) -> float:
        """Seconds since start (live while running, frozen after exit)."""
        return (self.end if self.end is not None else now()) - self.start
