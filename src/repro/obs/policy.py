"""Solve policies: bounded effort, retries, and graceful degradation.

A :class:`SolvePolicy` is the single object that says how hard a solve may
try and what happens when the budget runs out:

- **budgets** — ``deadline`` (wall seconds) and ``node_budget`` (B&B nodes)
  cap the exact search; ``gap_tol`` loosens the optimality proof;
- **resilience** — ``max_retries`` / ``retry_backoff`` re-run a backend
  that failed with a *transient* error
  (:class:`~repro.util.errors.TransientSolverError`), with exponential
  backoff between attempts;
- **degradation ladder** — when the budget is exhausted, an incumbent (if
  any) is returned as ``Status.FEASIBLE``; with no incumbent the designer
  walks ``fallback`` — by default LPT greedy then simulated annealing —
  instead of raising, and records what happened in a
  :class:`FallbackReport`;
- **checkpointing** — ``checkpoint_dir`` persists the best incumbent per
  instance fingerprint, so an interrupted sweep resumes warm.

The policy *is* the effort surface: the legacy ``node_limit`` /
``time_limit`` kwargs that used to ride on ``Model.solve`` / ``design``
(and their PR-3 deprecation shims) are gone — both entry points reject
them with a pointer here. Policies are frozen and picklable, so they
travel to parallel workers, and expose a canonical :meth:`cache_token`
(the shared protocol of :mod:`repro.runtime.fingerprint`) so the solve
cache can key on the *effective* budget — a truncated solve must never be
replayed for an uncapped request.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

#: Escalation rungs the designer knows how to run, in the order tried.
FALLBACK_RUNGS = ("lpt", "sa")

#: Default degradation ladder on budget exhaustion without an incumbent.
DEFAULT_FALLBACK = ("lpt", "sa")


@dataclass(frozen=True)
class SolvePolicy:
    """Effort budget + resilience behavior for one (or many) solves."""

    deadline: float | None = None
    node_budget: int | None = None
    gap_tol: float | None = None
    max_retries: int = 0
    retry_backoff: float = 0.25
    fallback: tuple[str, ...] = DEFAULT_FALLBACK
    fallback_seed: int = 0
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError(f"node_budget must be positive, got {self.node_budget}")
        if self.gap_tol is not None and self.gap_tol < 0:
            raise ValueError(f"gap_tol cannot be negative, got {self.gap_tol}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff cannot be negative, got {self.retry_backoff}")
        ladder = tuple(self.fallback or ())
        object.__setattr__(self, "fallback", ladder)
        unknown = [rung for rung in ladder if rung not in FALLBACK_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown fallback rung(s) {unknown}; known: {list(FALLBACK_RUNGS)}"
            )

    # ------------------------------------------------------------ derivations
    @property
    def is_capped(self) -> bool:
        """True when the exact search may stop before proving optimality."""
        return self.deadline is not None or self.node_budget is not None

    @property
    def degrades(self) -> bool:
        """True when exhaustion without an incumbent falls back to heuristics."""
        return bool(self.fallback)

    def backend_options(self, backend: str = "bnb") -> dict[str, Any]:
        """The solver kwargs this policy implies for ``backend``."""
        options: dict[str, Any] = {}
        if backend == "scipy":
            if self.deadline is not None:
                options["time_limit"] = self.deadline
            return options
        if self.node_budget is not None:
            options["node_limit"] = self.node_budget
        if self.deadline is not None:
            options["time_limit"] = self.deadline
        if self.gap_tol is not None:
            options["gap_tol"] = self.gap_tol
        if self.checkpoint_dir is not None:
            options["checkpoint_dir"] = self.checkpoint_dir
        return options

    def cache_token(self) -> str:
        """Canonical text of the fields that change what a solve returns.

        Only the effort budget matters for the cache key: retries and the
        fallback ladder re-run or replace a solve but never alter what a
        completed solve would have produced.
        """
        return (
            f"policy(deadline={self.deadline!r},node_budget={self.node_budget!r},"
            f"gap_tol={self.gap_tol!r})"
        )

    def with_overrides(self, **changes) -> "SolvePolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "deadline": self.deadline,
            "node_budget": self.node_budget,
            "gap_tol": self.gap_tol,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "fallback": list(self.fallback),
            "fallback_seed": self.fallback_seed,
            "checkpoint_dir": self.checkpoint_dir,
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, Any]") -> "SolvePolicy":
        """Inverse of :meth:`as_dict` (used by request/service payloads).

        Unknown keys are rejected so a typo'd budget field cannot silently
        produce an uncapped solve.
        """
        known = {
            "deadline",
            "node_budget",
            "gap_tol",
            "max_retries",
            "retry_backoff",
            "fallback",
            "fallback_seed",
            "checkpoint_dir",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SolvePolicy field(s): {', '.join(unknown)}")
        data = dict(payload)
        if "fallback" in data and data["fallback"] is not None:
            data["fallback"] = tuple(data["fallback"])
        return cls(**data)


@dataclass
class FallbackReport:
    """What the resilient solve path actually did — returned in telemetry.

    ``source`` is the provenance of the returned design: ``"exact"`` (the
    solver proved optimality), ``"incumbent"`` (budget exhausted, best
    incumbent returned), ``"lpt"`` / ``"sa"`` (heuristic degradation).
    ``ladder`` lists every step attempted in order with its outcome.
    """

    source: str = "exact"
    reason: str | None = None
    retries: int = 0
    transient_errors: list[str] = field(default_factory=list)
    ladder: list[dict[str, Any]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.source != "exact"

    def record_step(self, step: str, outcome: str, **detail) -> None:
        self.ladder.append({"step": step, "outcome": outcome, **detail})

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "degraded": self.degraded,
            "reason": self.reason,
            "retries": self.retries,
            "transient_errors": list(self.transient_errors),
            "ladder": [dict(step) for step in self.ladder],
        }

    def render(self) -> str:
        """One-line provenance summary for reports."""
        if not self.degraded and not self.retries:
            return "exact solve"
        bits = [f"source={self.source}"]
        if self.reason:
            bits.append(f"reason={self.reason}")
        if self.retries:
            bits.append(f"retries={self.retries}")
        if self.ladder:
            bits.append(
                "ladder=" + "->".join(f"{s['step']}:{s['outcome']}" for s in self.ladder)
            )
        return ", ".join(bits)


class CheckpointStore:
    """Per-instance incumbent checkpoints keyed by matrix fingerprint.

    One JSON file per instance under ``directory``; writes are atomic
    (write-then-rename) so a killed sweep leaves a readable store. The
    payload is the dense column-indexed value vector plus the objective in
    the *model's* sense, mirroring the solve cache's record layout.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)

    def _path_for(self, fingerprint: str) -> Path:
        return self.directory / f"incumbent-{fingerprint}.json"

    def load(self, fingerprint: str) -> dict[str, Any] | None:
        """Best known incumbent for the instance, or None."""
        try:
            payload = json.loads(self._path_for(fingerprint).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "values" not in payload:
            return None
        return payload

    def save(self, fingerprint: str, values: list[float], objective: float) -> None:
        """Persist an incumbent, keeping only the best objective seen."""
        existing = self.load(fingerprint)
        if existing is not None and existing.get("objective", float("inf")) <= objective:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"values": [float(v) for v in values], "objective": float(objective)}
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._path_for(fingerprint))
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
