"""Solve policies: bounded effort, retries, and graceful degradation.

A :class:`SolvePolicy` is the single object that says how hard a solve may
try and what happens when the budget runs out:

- **budgets** — ``deadline`` (wall seconds) and ``node_budget`` (B&B nodes)
  cap the exact search; ``gap_tol`` loosens the optimality proof;
- **resilience** — ``max_retries`` / ``retry_backoff`` re-run a backend
  that failed with a *transient* error
  (:class:`~repro.util.errors.TransientSolverError`), with exponential
  backoff between attempts;
- **degradation ladder** — when the budget is exhausted, an incumbent (if
  any) is returned as ``Status.FEASIBLE``; with no incumbent the designer
  walks ``fallback`` — by default LPT greedy then simulated annealing —
  instead of raising, and records what happened in a
  :class:`FallbackReport`;
- **checkpointing** — ``checkpoint_dir`` persists the best incumbent per
  instance fingerprint, so an interrupted sweep resumes warm.

The policy *is* the effort surface: the legacy ``node_limit`` /
``time_limit`` kwargs that used to ride on ``Model.solve`` / ``design``
(and their PR-3 deprecation shims) are gone — both entry points reject
them with a pointer here. Policies are frozen and picklable, so they
travel to parallel workers, and expose a canonical :meth:`cache_token`
(the shared protocol of :mod:`repro.runtime.fingerprint`) so the solve
cache can key on the *effective* budget — a truncated solve must never be
replayed for an uncapped request.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

#: Escalation rungs the designer knows how to run, in the order tried.
FALLBACK_RUNGS = ("lpt", "sa")

#: Default degradation ladder on budget exhaustion without an incumbent.
DEFAULT_FALLBACK = ("lpt", "sa")

#: Branching rules :class:`~repro.ilp.branch_and_bound.BranchAndBoundSolver`
#: accepts; validated here so a typo fails at policy construction, not
#: mid-sweep inside a worker process.
BRANCHING_RULES = ("most_fractional", "pseudocost", "first")


@dataclass(frozen=True)
class CutPolicy:
    """How (and whether) the B&B solver separates cutting planes.

    The solver derives a conflict graph from the pairwise-exclusion
    structure of the matrix and separates maximal-clique cuts
    (``sum x <= 1``) plus lifted knapsack cover cuts, in up to ``rounds``
    rounds at the root node and — when ``max_depth > 0`` — one round at
    tree nodes no deeper than ``max_depth``. A shared cut pool
    deduplicates cuts, keeps at most ``max_pool`` active, and retires a
    cut after it has been slack for ``max_age`` consecutive rounds.

    Cut settings change what a solve returns (node counts, provenance,
    possibly which optimal vertex is reported), so every field
    contributes to :meth:`cache_token` and therefore to the solve-cache
    fingerprint (flow rule D001 audits this).
    """

    rounds: int = 3
    max_cuts_per_round: int = 32
    clique: bool = True
    cover: bool = True
    max_depth: int = 2
    min_violation: float = 1e-4
    max_pool: int = 256
    max_age: int = 3

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"rounds cannot be negative, got {self.rounds}")
        if self.max_cuts_per_round <= 0:
            raise ValueError(
                f"max_cuts_per_round must be positive, got {self.max_cuts_per_round}"
            )
        if self.max_depth < 0:
            raise ValueError(f"max_depth cannot be negative, got {self.max_depth}")
        if self.min_violation <= 0:
            raise ValueError(
                f"min_violation must be positive, got {self.min_violation}"
            )
        if self.max_pool <= 0:
            raise ValueError(f"max_pool must be positive, got {self.max_pool}")
        if self.max_age < 1:
            raise ValueError(f"max_age must be at least 1, got {self.max_age}")

    # ------------------------------------------------------------ derivations
    @property
    def enabled(self) -> bool:
        """True when any separation at all may run."""
        return (self.clique or self.cover) and (self.rounds > 0 or self.max_depth > 0)

    @classmethod
    def disabled(cls) -> "CutPolicy":
        """An explicit cuts-off policy (distinct from *unset*, which lets
        the designer apply its default)."""
        return cls(rounds=0, max_depth=0)

    @classmethod
    def legacy_root_cuts(cls, rounds: int) -> "CutPolicy":
        """The policy equivalent of the retired ``root_cuts=N`` kwarg:
        N cover-only rounds at the root, 20 cuts per round."""
        if rounds <= 0:
            return cls.disabled()
        return cls(
            rounds=rounds, max_cuts_per_round=20, clique=False, cover=True, max_depth=0
        )

    def backend_options(self) -> dict[str, Any]:
        """The solver kwargs this cut policy implies (bnb only)."""
        return {"cut_policy": self}

    def cache_token(self) -> str:
        """Canonical text of every field — all of them shape the result."""
        return (
            f"cuts(rounds={self.rounds!r},max_cuts_per_round={self.max_cuts_per_round!r},"
            f"clique={self.clique!r},cover={self.cover!r},max_depth={self.max_depth!r},"
            f"min_violation={self.min_violation!r},max_pool={self.max_pool!r},"
            f"max_age={self.max_age!r})"
        )

    def with_overrides(self, **changes) -> "CutPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "max_cuts_per_round": self.max_cuts_per_round,
            "clique": self.clique,
            "cover": self.cover,
            "max_depth": self.max_depth,
            "min_violation": self.min_violation,
            "max_pool": self.max_pool,
            "max_age": self.max_age,
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "CutPolicy":
        known = {
            "rounds",
            "max_cuts_per_round",
            "clique",
            "cover",
            "max_depth",
            "min_violation",
            "max_pool",
            "max_age",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown CutPolicy field(s): {', '.join(unknown)}")
        return cls(**dict(payload))


#: The cut policy ``design()`` applies when nothing chose one explicitly.
DEFAULT_CUT_POLICY = CutPolicy()


@dataclass(frozen=True)
class PresolvePolicy:
    """How (and whether) the root presolve engine reduces a model.

    Before the branch-and-bound search starts, the root presolve engine
    (:mod:`repro.ilp.presolve_root`) applies model reductions in up to
    ``rounds`` passes: global bound tightening, dual fixing, singleton
    column elimination, coefficient tightening on integer columns, and
    empty/duplicate/redundant row cleanup. Every reduction preserves the
    set of optimal solutions of the *integer* program; a
    :class:`~repro.ilp.presolve_root.Postsolve` step maps reduced-space
    solutions back to the original variable space, so caches, checkpoints,
    and fingerprints stay presolve-independent.

    Presolve settings change what a solve returns (which optimal vertex,
    node counts, stats), so every field contributes to
    :meth:`cache_token` and therefore to the solve-cache fingerprint
    (flow rule D001 audits this).
    """

    rounds: int = 4
    bound_tighten: bool = True
    dual_fix: bool = True
    singleton_cols: bool = True
    coeff_tighten: bool = True
    row_cleanup: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"rounds cannot be negative, got {self.rounds}")

    # ------------------------------------------------------------ derivations
    @property
    def enabled(self) -> bool:
        """True when any reduction at all may run."""
        return self.rounds > 0 and (
            self.bound_tighten
            or self.dual_fix
            or self.singleton_cols
            or self.coeff_tighten
            or self.row_cleanup
        )

    @classmethod
    def disabled(cls) -> "PresolvePolicy":
        """An explicit presolve-off policy (distinct from *unset*, which
        lets the solver apply its default)."""
        return cls(rounds=0)

    def backend_options(self) -> dict[str, Any]:
        """The solver kwargs this presolve policy implies (bnb only)."""
        return {"root_presolve": self}

    def cache_token(self) -> str:
        """Canonical text of every field — all of them shape the result."""
        return (
            f"presolve(rounds={self.rounds!r},bound_tighten={self.bound_tighten!r},"
            f"dual_fix={self.dual_fix!r},singleton_cols={self.singleton_cols!r},"
            f"coeff_tighten={self.coeff_tighten!r},row_cleanup={self.row_cleanup!r})"
        )

    def with_overrides(self, **changes) -> "PresolvePolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "bound_tighten": self.bound_tighten,
            "dual_fix": self.dual_fix,
            "singleton_cols": self.singleton_cols,
            "coeff_tighten": self.coeff_tighten,
            "row_cleanup": self.row_cleanup,
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "PresolvePolicy":
        known = {
            "rounds",
            "bound_tighten",
            "dual_fix",
            "singleton_cols",
            "coeff_tighten",
            "row_cleanup",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown PresolvePolicy field(s): {', '.join(unknown)}")
        return cls(**dict(payload))


#: The root presolve policy the B&B solver applies when nothing chose one.
DEFAULT_PRESOLVE_POLICY = PresolvePolicy()


#: Entrant names the portfolio racer knows how to run. Heuristic rungs
#: come first (they are the cheap incumbents); ``"bnb"`` is the exact
#: search they cross-feed.
PORTFOLIO_ENTRANTS = ("lpt", "sa", "bnb")


@dataclass(frozen=True)
class PortfolioPolicy:
    """How (and whether) the racing portfolio runs a design solve.

    The portfolio (:func:`repro.runtime.portfolio.run_portfolio`) races the
    entrants under one shared :class:`SolvePolicy` budget: the heuristic
    rungs (``"lpt"``, ``"sa"``) run first — concurrently on the persistent
    process pool when ``jobs > 1`` — and their best incumbent is cross-fed
    to the exact ``"bnb"`` entrant as its starting cutoff, with the wall
    time the heuristics spent subtracted from the shared deadline. The best
    solution wins, with per-entrant provenance recorded in a
    :class:`~repro.runtime.portfolio.PortfolioReport`.

    ``seed`` seeds the stochastic entrants and ``sa_iterations`` sets the
    annealing length, so both shape the combined result and contribute to
    :meth:`cache_token`. ``jobs`` only fans the heuristic race out across
    workers — every entrant always runs to completion, so fan-out changes
    wall time but never the answer, and ``jobs`` stays out of the token
    (the same rule :class:`~repro.core.request.SolveRequest` applies).
    """

    entrants: tuple[str, ...] = PORTFOLIO_ENTRANTS
    seed: int = 0
    sa_iterations: int = 5000
    jobs: int = 1

    def __post_init__(self) -> None:
        ladder = tuple(self.entrants or ())
        object.__setattr__(self, "entrants", ladder)
        unknown = [name for name in ladder if name not in PORTFOLIO_ENTRANTS]
        if unknown:
            raise ValueError(
                f"unknown portfolio entrant(s) {unknown}; known: {list(PORTFOLIO_ENTRANTS)}"
            )
        if len(set(ladder)) != len(ladder):
            raise ValueError(f"duplicate portfolio entrant(s) in {ladder}")
        if self.sa_iterations < 0:
            raise ValueError(
                f"sa_iterations cannot be negative, got {self.sa_iterations}"
            )

    # ------------------------------------------------------------ derivations
    @property
    def enabled(self) -> bool:
        """True when any entrant at all may run."""
        return bool(self.entrants)

    @property
    def exact(self) -> bool:
        """True when the exact B&B entrant is in the race."""
        return "bnb" in self.entrants

    @property
    def heuristics(self) -> tuple[str, ...]:
        """The heuristic entrants, in rung order."""
        return tuple(name for name in self.entrants if name != "bnb")

    @classmethod
    def disabled(cls) -> "PortfolioPolicy":
        """An explicit portfolio-off policy (distinct from *unset*)."""
        return cls(entrants=())

    def cache_token(self) -> str:
        """Canonical text of the result-shaping fields (``jobs`` excluded:
        fan-out changes wall time, never the combined answer)."""
        return (
            f"portfolio(entrants={list(self.entrants)!r},seed={self.seed!r},"
            f"sa_iterations={self.sa_iterations!r})"
        )

    def with_overrides(self, **changes) -> "PortfolioPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "entrants": list(self.entrants),
            "seed": self.seed,
            "sa_iterations": self.sa_iterations,
            "jobs": self.jobs,
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "PortfolioPolicy":
        known = {"entrants", "seed", "sa_iterations", "jobs"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown PortfolioPolicy field(s): {', '.join(unknown)}")
        data = dict(payload)
        if "entrants" in data and data["entrants"] is not None:
            data["entrants"] = tuple(data["entrants"])
        return cls(**data)


#: The portfolio the racer runs when asked for one without details.
DEFAULT_PORTFOLIO_POLICY = PortfolioPolicy()


@dataclass(frozen=True)
class SolverOptions:
    """Structured B&B solver knobs, riding on :class:`SolvePolicy`.

    Collapses the formerly scattered flat kwargs (``presolve``,
    ``branching``, ``root_cuts``, ``checkpoint_interval``) into one
    frozen, picklable, fingerprintable block. ``None`` means "solver
    default" for every field.
    """

    presolve: bool | None = None
    branching: str | None = None
    cuts: CutPolicy | None = None
    root_presolve: PresolvePolicy | None = None
    warm_start: bool | None = None
    checkpoint_interval: float | None = None
    portfolio: PortfolioPolicy | None = None

    def __post_init__(self) -> None:
        if self.branching is not None and self.branching not in BRANCHING_RULES:
            raise ValueError(
                f"unknown branching rule {self.branching!r}; "
                f"known: {list(BRANCHING_RULES)}"
            )
        if self.cuts is not None and not isinstance(self.cuts, CutPolicy):
            raise TypeError(
                f"cuts must be a CutPolicy or None, got {type(self.cuts).__name__}"
            )
        if self.root_presolve is not None and not isinstance(
            self.root_presolve, PresolvePolicy
        ):
            raise TypeError(
                "root_presolve must be a PresolvePolicy or None, "
                f"got {type(self.root_presolve).__name__}"
            )
        if self.warm_start is not None and not isinstance(self.warm_start, bool):
            raise TypeError(
                f"warm_start must be a bool or None, got {type(self.warm_start).__name__}"
            )
        if self.portfolio is not None and not isinstance(
            self.portfolio, PortfolioPolicy
        ):
            raise TypeError(
                "portfolio must be a PortfolioPolicy or None, "
                f"got {type(self.portfolio).__name__}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {self.checkpoint_interval}"
            )

    def backend_options(self, backend: str = "bnb") -> dict[str, Any]:
        """The solver kwargs this block implies for ``backend``."""
        options: dict[str, Any] = {}
        if backend != "bnb":
            return options
        if self.presolve is not None:
            options["presolve"] = self.presolve
        if self.branching is not None:
            options["branching"] = self.branching
        if self.checkpoint_interval is not None:
            options["checkpoint_interval"] = self.checkpoint_interval
        if self.cuts is not None:
            # Forwarded as a block: the cut kwargs name their own cache
            # token, so `cuts` must be read by cache_token() below — flow
            # rule D001 audits exactly that pairing.
            for key, value in self.cuts.backend_options().items():
                options[key] = value
        if self.root_presolve is not None:
            # Forwarded as a block like cuts: the kwarg names its own cache
            # token, so `root_presolve` must be read by cache_token() below
            # under the same D001 pairing.
            for key, value in self.root_presolve.backend_options().items():
                options[key] = value
        if self.warm_start is not None:
            # The solver's own `warm_start` kwarg carries an incumbent
            # *value* hint; the LP-basis toggle travels as lp_warm_start.
            # Request-level fingerprints see only cache_token(), never these
            # kwargs, so the toggle must be read there too — routing the
            # rename through a local lets flow rule D001 enforce exactly
            # that pairing.
            lp_warm_start = self.warm_start
            options["lp_warm_start"] = lp_warm_start
        # `portfolio` is deliberately NOT a backend kwarg: the racer is a
        # designer-level dispatch (repro.runtime.portfolio), not a solver
        # knob — the B&B backend never sees it. It still shapes the result,
        # so cache_token() below reads it.
        return options

    def cache_token(self) -> str:
        """Canonical text of every field — all of them shape the result."""
        cuts = "-" if self.cuts is None else self.cuts.cache_token()
        root_presolve = (
            "-" if self.root_presolve is None else self.root_presolve.cache_token()
        )
        portfolio = "-" if self.portfolio is None else self.portfolio.cache_token()
        return (
            f"solver(presolve={self.presolve!r},branching={self.branching!r},"
            f"cuts={cuts},root_presolve={root_presolve},"
            f"warm_start={self.warm_start!r},"
            f"checkpoint_interval={self.checkpoint_interval!r},"
            f"portfolio={portfolio})"
        )

    def with_overrides(self, **changes) -> "SolverOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "presolve": self.presolve,
            "branching": self.branching,
            "cuts": None if self.cuts is None else self.cuts.as_dict(),
            "root_presolve": (
                None if self.root_presolve is None else self.root_presolve.as_dict()
            ),
            "warm_start": self.warm_start,
            "checkpoint_interval": self.checkpoint_interval,
            "portfolio": None if self.portfolio is None else self.portfolio.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "SolverOptions":
        known = {
            "presolve",
            "branching",
            "cuts",
            "root_presolve",
            "warm_start",
            "checkpoint_interval",
            "portfolio",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SolverOptions field(s): {', '.join(unknown)}")
        data = dict(payload)
        cuts = data.get("cuts")
        if isinstance(cuts, Mapping):
            data["cuts"] = CutPolicy.from_dict(cuts)
        root_presolve = data.get("root_presolve")
        if isinstance(root_presolve, Mapping):
            data["root_presolve"] = PresolvePolicy.from_dict(root_presolve)
        portfolio = data.get("portfolio")
        if isinstance(portfolio, Mapping):
            data["portfolio"] = PortfolioPolicy.from_dict(portfolio)
        return cls(**data)


#: Flat ``SolvePolicy.from_dict`` spellings still accepted, one release,
#: behind a DeprecationWarning; they fold into the nested ``solver`` block.
_FLAT_SOLVER_KEYS = ("presolve", "branching", "root_cuts", "checkpoint_interval")


@dataclass(frozen=True)
class SolvePolicy:
    """Effort budget + resilience behavior for one (or many) solves."""

    deadline: float | None = None
    node_budget: int | None = None
    gap_tol: float | None = None
    max_retries: int = 0
    retry_backoff: float = 0.25
    fallback: tuple[str, ...] = DEFAULT_FALLBACK
    fallback_seed: int = 0
    checkpoint_dir: str | None = None
    solver: SolverOptions | None = None

    def __post_init__(self) -> None:
        if self.solver is not None and not isinstance(self.solver, SolverOptions):
            raise TypeError(
                f"solver must be a SolverOptions or None, got {type(self.solver).__name__}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError(f"node_budget must be positive, got {self.node_budget}")
        if self.gap_tol is not None and self.gap_tol < 0:
            raise ValueError(f"gap_tol cannot be negative, got {self.gap_tol}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff cannot be negative, got {self.retry_backoff}")
        ladder = tuple(self.fallback or ())
        object.__setattr__(self, "fallback", ladder)
        unknown = [rung for rung in ladder if rung not in FALLBACK_RUNGS]
        if unknown:
            raise ValueError(
                f"unknown fallback rung(s) {unknown}; known: {list(FALLBACK_RUNGS)}"
            )

    # ------------------------------------------------------------ derivations
    @property
    def is_capped(self) -> bool:
        """True when the exact search may stop before proving optimality."""
        return self.deadline is not None or self.node_budget is not None

    @property
    def degrades(self) -> bool:
        """True when exhaustion without an incumbent falls back to heuristics."""
        return bool(self.fallback)

    def backend_options(self, backend: str = "bnb") -> dict[str, Any]:
        """The solver kwargs this policy implies for ``backend``."""
        options: dict[str, Any] = {}
        if backend == "scipy":
            if self.deadline is not None:
                options["time_limit"] = self.deadline
        else:
            if self.node_budget is not None:
                options["node_limit"] = self.node_budget
            if self.deadline is not None:
                options["time_limit"] = self.deadline
            if self.gap_tol is not None:
                options["gap_tol"] = self.gap_tol
            if self.checkpoint_dir is not None:
                options["checkpoint_dir"] = self.checkpoint_dir
        if self.solver is not None:
            # Forwarded as a block: the nested kwargs carry their own cache
            # tokens, so `solver` must be read by cache_token() — flow rule
            # D001 audits exactly that pairing.
            for key, value in self.solver.backend_options(backend).items():
                options[key] = value
        return options

    def cache_token(self) -> str:
        """Canonical text of the fields that change what a solve returns.

        The effort budget and the solver block matter for the cache key:
        retries and the fallback ladder re-run or replace a solve but
        never alter what a completed solve would have produced.
        """
        solver = "-" if self.solver is None else self.solver.cache_token()
        return (
            f"policy(deadline={self.deadline!r},node_budget={self.node_budget!r},"
            f"gap_tol={self.gap_tol!r},solver={solver})"
        )

    def with_overrides(self, **changes) -> "SolvePolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "deadline": self.deadline,
            "node_budget": self.node_budget,
            "gap_tol": self.gap_tol,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "fallback": list(self.fallback),
            "fallback_seed": self.fallback_seed,
            "checkpoint_dir": self.checkpoint_dir,
            "solver": None if self.solver is None else self.solver.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "SolvePolicy":
        """Inverse of :meth:`as_dict` (used by request/service payloads).

        Unknown keys are rejected so a typo'd budget field cannot silently
        produce an uncapped solve. The retired flat solver spellings
        (``presolve``, ``branching``, ``root_cuts``,
        ``checkpoint_interval``) are still accepted for one release —
        behind a :class:`DeprecationWarning` — and fold into the nested
        ``solver`` block.
        """
        known = {
            "deadline",
            "node_budget",
            "gap_tol",
            "max_retries",
            "retry_backoff",
            "fallback",
            "fallback_seed",
            "checkpoint_dir",
            "solver",
        } | set(_FLAT_SOLVER_KEYS)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SolvePolicy field(s): {', '.join(unknown)}")
        data = dict(payload)
        flat = {key: data.pop(key) for key in _FLAT_SOLVER_KEYS if key in data}
        if flat:
            warnings.warn(
                f"flat solver key(s) {sorted(flat)} in SolvePolicy.from_dict are "
                "deprecated and will be rejected next release; nest them under "
                "'solver', e.g. {'solver': {'presolve': ..., 'branching': ..., "
                "'cuts': {'rounds': ...}}} (SolverOptions / CutPolicy)",
                DeprecationWarning,
                stacklevel=2,
            )
            nested = data.get("solver")
            if isinstance(nested, Mapping):
                nested = SolverOptions.from_dict(nested)
            nested_dict = {} if nested is None else dict(nested.as_dict())
            for key, value in flat.items():
                target = "cuts" if key == "root_cuts" else key
                if nested_dict.get(target) is not None:
                    raise ValueError(
                        f"SolvePolicy.from_dict got both flat {key!r} and "
                        f"solver.{target}; use the nested spelling only"
                    )
                if key == "root_cuts":
                    nested_dict["cuts"] = CutPolicy.legacy_root_cuts(int(value)).as_dict()
                else:
                    nested_dict[target] = value
            data["solver"] = SolverOptions.from_dict(nested_dict)
        elif isinstance(data.get("solver"), Mapping):
            data["solver"] = SolverOptions.from_dict(data["solver"])
        if "fallback" in data and data["fallback"] is not None:
            data["fallback"] = tuple(data["fallback"])
        return cls(**data)


@dataclass
class FallbackReport:
    """What the resilient solve path actually did — returned in telemetry.

    ``source`` is the provenance of the returned design: ``"exact"`` (the
    solver proved optimality), ``"incumbent"`` (budget exhausted, best
    incumbent returned), ``"lpt"`` / ``"sa"`` (heuristic degradation).
    ``ladder`` lists every step attempted in order with its outcome.
    """

    source: str = "exact"
    reason: str | None = None
    retries: int = 0
    transient_errors: list[str] = field(default_factory=list)
    ladder: list[dict[str, Any]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.source != "exact"

    def record_step(self, step: str, outcome: str, **detail) -> None:
        self.ladder.append({"step": step, "outcome": outcome, **detail})

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "degraded": self.degraded,
            "reason": self.reason,
            "retries": self.retries,
            "transient_errors": list(self.transient_errors),
            "ladder": [dict(step) for step in self.ladder],
        }

    def render(self) -> str:
        """One-line provenance summary for reports."""
        if not self.degraded and not self.retries:
            return "exact solve"
        bits = [f"source={self.source}"]
        if self.reason:
            bits.append(f"reason={self.reason}")
        if self.retries:
            bits.append(f"retries={self.retries}")
        if self.ladder:
            bits.append(
                "ladder=" + "->".join(f"{s['step']}:{s['outcome']}" for s in self.ladder)
            )
        return ", ".join(bits)


class CheckpointStore:
    """Per-instance incumbent checkpoints keyed by matrix fingerprint.

    One JSON file per instance under ``directory``; writes are atomic
    (write-then-rename) so a killed sweep leaves a readable store. The
    payload is the dense column-indexed value vector plus the objective in
    the *model's* sense, mirroring the solve cache's record layout.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)

    def _path_for(self, fingerprint: str) -> Path:
        return self.directory / f"incumbent-{fingerprint}.json"

    def load(self, fingerprint: str) -> dict[str, Any] | None:
        """Best known incumbent for the instance, or None."""
        try:
            payload = json.loads(self._path_for(fingerprint).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "values" not in payload:
            return None
        return payload

    def save(self, fingerprint: str, values: list[float], objective: float) -> None:
        """Persist an incumbent, keeping only the best objective seen."""
        existing = self.load(fingerprint)
        if existing is not None and existing.get("objective", float("inf")) <= objective:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"values": [float(v) for v in values], "objective": float(objective)}
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._path_for(fingerprint))
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
