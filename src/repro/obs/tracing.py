"""Lightweight solve tracing: spans, node-event sampling, flame summaries.

A :class:`Tracer` records a tree of timed :class:`Span` objects covering the
solve pipeline — ``formulate`` / ``presolve`` / ``lp_relaxation`` /
``bnb_search`` / ``cache_lookup`` / ``decode`` — plus a *sampled* stream of
branch-and-bound node events (node index, depth, bound, incumbent) and every
incumbent-improvement event. Tracing is opt-in: instrumented code calls the
module-level :func:`span` / :func:`node_event` / :func:`event` helpers,
which are no-ops unless a tracer is active, so the untraced hot path pays
one ``None`` check.

Install a tracer with :func:`trace_solve`::

    with trace_solve() as trace:
        design(problem)
    print(trace.flame())              # text flame summary
    json.dump(trace.to_json(), fh)    # exportable span JSON

The JSON export is self-contained: span ids, parent links, start/end
offsets (seconds relative to the trace start), attributes, and events, plus
the per-phase aggregate used by the flame view. Per-phase *self* times
partition the traced wall time exactly, which is what lets the CLI assert
that phase totals account for the solve.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.clock import now

#: Default node-event sampling stride: record every k-th B&B node.
DEFAULT_NODE_SAMPLE_EVERY = 16


@dataclass
class Span:
    """One timed section of the pipeline."""

    span_id: int
    name: str
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else now()) - self.start

    def to_json(self, origin: float) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
            "start": self.start - origin,
            "end": None if self.end is None else self.end - origin,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "events": list(self.events),
        }


class Tracer:
    """Collects spans and sampled node events for one traced region.

    Not thread-safe by design: a tracer belongs to the solve it instruments
    (parallel workers run in separate processes and carry their own).
    """

    def __init__(self, node_sample_every: int = DEFAULT_NODE_SAMPLE_EVERY):
        if node_sample_every <= 0:
            raise ValueError(f"node_sample_every must be positive, got {node_sample_every}")
        self.node_sample_every = node_sample_every
        self.origin = now()
        self.spans: list[Span] = []
        self.node_events: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._nodes_seen = 0

    # ------------------------------------------------------------------ spans
    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        entry = Span(
            span_id=len(self.spans),
            name=name,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=now(),
            attrs=attrs,
        )
        self.spans.append(entry)
        self._stack.append(entry)
        try:
            yield entry
        finally:
            entry.end = now()
            self._stack.pop()

    def event(self, name: str, **fields) -> None:
        """Attach a timestamped event to the innermost open span."""
        record = {"name": name, "t": now() - self.origin, **fields}
        if self._stack:
            self._stack[-1].events.append(record)
        else:  # stray event outside any span: keep it rather than lose it
            self.node_events.append(record)

    def node_event(self, depth: int, bound: float, incumbent: float | None) -> None:
        """Record one B&B node, sampled every ``node_sample_every`` nodes."""
        self._nodes_seen += 1
        if (self._nodes_seen - 1) % self.node_sample_every:
            return
        self.node_events.append(
            {
                "node": self._nodes_seen,
                "depth": depth,
                "bound": bound,
                "incumbent": incumbent,
                "t": now() - self.origin,
            }
        )

    # ---------------------------------------------------------------- exports
    def phase_totals(self) -> dict[str, float]:
        """Per-span-name *self* time (duration minus child durations).

        Self times partition each root span's wall time exactly, so
        ``sum(phase_totals().values())`` equals the total traced duration —
        the invariant behind the CLI's coverage check.
        """
        child_time: dict[int, float] = {}
        for span in self.spans:
            if span.parent_id is not None:
                child_time[span.parent_id] = child_time.get(span.parent_id, 0.0) + span.duration
        totals: dict[str, float] = {}
        for span in self.spans:
            self_time = span.duration - child_time.get(span.span_id, 0.0)
            totals[span.name] = totals.get(span.name, 0.0) + self_time
        return totals

    def traced_duration(self) -> float:
        """Total wall time covered by root spans (no double counting)."""
        return sum(s.duration for s in self.spans if s.parent_id is None)

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "traced_duration": self.traced_duration(),
            "phase_totals": self.phase_totals(),
            "node_sample_every": self.node_sample_every,
            "spans": [span.to_json(self.origin) for span in self.spans],
            "node_events": list(self.node_events),
        }

    def flame(self, width: int = 40) -> str:
        """Text flame summary: one bar per phase, sorted by self time."""
        totals = self.phase_totals()
        traced = self.traced_duration()
        lines = [f"trace: {traced * 1000:.1f} ms over {len(self.spans)} spans"]
        if not totals:
            return lines[0]
        scale = max(totals.values()) or 1.0
        name_width = max(len(name) for name in totals)
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            bar = "#" * max(1, round(width * seconds / scale)) if seconds > 0 else ""
            share = (seconds / traced * 100.0) if traced > 0 else 0.0
            lines.append(
                f"  {name:<{name_width}}  {seconds * 1000:9.2f} ms {share:5.1f}%  {bar}"
            )
        if self.node_events:
            lines.append(
                f"  ({len(self.node_events)} node events sampled 1/{self.node_sample_every})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans, {len(self.node_events)} node events)"


# ------------------------------------------------------------- active tracer
_ACTIVE_TRACER: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The tracer installed by :func:`trace_solve`, or None when not tracing."""
    return _ACTIVE_TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


@contextmanager
def trace_solve(node_sample_every: int = DEFAULT_NODE_SAMPLE_EVERY) -> Iterator[Tracer]:
    """Trace everything the with-block solves; yields the :class:`Tracer`."""
    tracer = Tracer(node_sample_every=node_sample_every)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


class _NullSpan:
    """No-op stand-in yielded by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    @property
    def attrs(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span on the active tracer, or a no-op when not tracing."""
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **fields) -> None:
    """Record an event on the active tracer (no-op when not tracing)."""
    tracer = _ACTIVE_TRACER
    if tracer is not None:
        tracer.event(name, **fields)


def node_event(depth: int, bound: float, incumbent: float | None) -> None:
    """Feed one B&B node to the active tracer's sampler (no-op when off)."""
    tracer = _ACTIVE_TRACER
    if tracer is not None:
        tracer.node_event(depth, bound, incumbent)
