"""Observability + resilience layer: tracing, metrics, solve policies.

Everything time- and effort-related flows through this package:

- :mod:`repro.obs.clock` — the one place allowed to read the wall clock
  (lint rule C006 bans ``time.perf_counter()`` / ``time.time()`` elsewhere
  outside :mod:`repro.runtime`);
- :mod:`repro.obs.tracing` — spans over the solve pipeline plus a sampled
  B&B node-event stream, exportable as JSON and renderable as a text flame
  summary (``repro design --trace``);
- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters / gauges / histograms the solver stack writes into;
- :mod:`repro.obs.policy` — :class:`SolvePolicy` (deadline, node budget,
  retry/backoff, degradation ladder, incumbent checkpointing), its
  structured :class:`SolverOptions` / :class:`CutPolicy` /
  :class:`PresolvePolicy` solver block, and the :class:`FallbackReport`
  provenance record.

The blessed public names (re-exported by :mod:`repro.api`): ``SolvePolicy``,
``FallbackReport``, ``MetricsRegistry``, ``trace_solve``, ``get_metrics``.
"""

from repro.obs.clock import Stopwatch, now
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.policy import (
    BRANCHING_RULES,
    DEFAULT_CUT_POLICY,
    DEFAULT_FALLBACK,
    DEFAULT_PORTFOLIO_POLICY,
    DEFAULT_PRESOLVE_POLICY,
    FALLBACK_RUNGS,
    PORTFOLIO_ENTRANTS,
    CheckpointStore,
    CutPolicy,
    FallbackReport,
    PortfolioPolicy,
    PresolvePolicy,
    SolvePolicy,
    SolverOptions,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    current_tracer,
    event,
    node_event,
    set_tracer,
    span,
    trace_solve,
)

__all__ = [
    "BRANCHING_RULES",
    "CheckpointStore",
    "Counter",
    "CutPolicy",
    "DEFAULT_CUT_POLICY",
    "DEFAULT_FALLBACK",
    "DEFAULT_PORTFOLIO_POLICY",
    "DEFAULT_PRESOLVE_POLICY",
    "FALLBACK_RUNGS",
    "FallbackReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PORTFOLIO_ENTRANTS",
    "PortfolioPolicy",
    "PresolvePolicy",
    "SolvePolicy",
    "SolverOptions",
    "Span",
    "Stopwatch",
    "Tracer",
    "current_tracer",
    "event",
    "get_metrics",
    "node_event",
    "now",
    "set_metrics",
    "set_tracer",
    "span",
    "trace_solve",
    "use_metrics",
]
