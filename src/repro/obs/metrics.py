"""Process-wide metrics registry: counters, gauges, histograms.

The solver stack increments a shared :class:`MetricsRegistry` as it works —
B&B nodes expanded, LP pivots, cache hits and misses, retries, heuristic
fallbacks, incumbent improvements. A registry snapshot is a plain nested
dict, so it folds directly into ``repro design --json`` payloads and
experiment footers, and two runs of the same workload produce identical
count-valued metrics regardless of worker count (time-valued metrics are
reported separately so deterministic comparisons can exclude them).

The default registry is process-global (:func:`get_metrics`); tests and
scoped measurements install their own via :func:`use_metrics`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def as_value(self) -> int:
        return self.value


class Gauge:
    """Last-written value (e.g. the current best bound)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_value(self) -> float | None:
        return self.value


class Histogram:
    """Streaming summary of observations: count / total / min / max / mean.

    Deliberately reservoir-free: the summary is exact, order-independent,
    and mergeable, which keeps parallel runs aggregatable without storing
    every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def as_value(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": None}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name identifies exactly one instrument; asking for the same name with
    a different kind is a programming error and raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument, sorted by name."""
        return {name: self._metrics[name].as_value() for name in sorted(self._metrics)}

    def counts(self) -> dict[str, int]:
        """Only the counters — the deterministic, worker-count-invariant part."""
        return {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Counter)
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters and histogram summaries add; gauges take the other's value
        when set (last writer wins, matching their semantics).
        """
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                if metric.value is not None:
                    self.gauge(name).set(metric.value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(name)
                mine.count += metric.count
                mine.total += metric.total
                mine.min = min(mine.min, metric.min)
                mine.max = max(mine.max, metric.max)

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


_ACTIVE_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry the solver stack writes into."""
    return _ACTIVE_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns the previous."""
    global _ACTIVE_METRICS
    previous = _ACTIVE_METRICS
    _ACTIVE_METRICS = registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scope a fresh (or given) registry as process-wide for a ``with`` block."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
