"""Static analysis over ILP models and over the repo's own source.

Two complementary passes guard the reproduction's correctness:

- **model lint** (:mod:`repro.analysis.model_lint`, rules ``M0xx``) — given
  any built :class:`repro.ilp.Model` or its matrix export, detect structural
  formulation bugs (unbounded integers, dead variables, contradictory
  forced/forbidden pair encodings, bad scaling) *without solving*;
- **problem lint** (:mod:`repro.analysis.problem_lint`, rules ``P0xx``) —
  the same idea one level up, on a :class:`~repro.core.problem.DesignProblem`
  before the ILP is even built;
- **code lint** (:mod:`repro.analysis.code_lint`, rules ``C0xx``) — an
  AST pass enforcing repo invariants (RNG discipline, no mutable default
  arguments, no exact equality on solver objectives, no bare ``except``);
- **flow lint** (:mod:`repro.analysis.flow`, rules ``D0xx``) — a
  whole-project pass over the same file set with import resolution, a call
  graph, and per-function taint, enforcing cache-key completeness,
  process-pool purity, determinism discipline, and facade integrity.

Entry points: ``repro lint model``/``repro lint code`` on the command line
(``--format sarif`` emits SARIF 2.1.0 for GitHub code scanning),
``model.solve(lint="warn"|"error")`` as an opt-in solve gate, and
``DesignProblem.lint()`` pre-formulation. DESIGN.md carries the full rule
catalog with rationale.
"""

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity, load_baseline
from repro.analysis.code_lint import CODE_RULES, CodeRule, lint_paths, lint_source
from repro.analysis.flow import FLOW_RULES, ProjectRule, lint_project
from repro.analysis.model_lint import MODEL_RULES, ModelRule, ModelView, lint_model
from repro.analysis.problem_lint import check_problem
from repro.analysis.sarif import report_to_sarif, report_to_sarif_json

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "load_baseline",
    "CODE_RULES",
    "CodeRule",
    "lint_paths",
    "lint_source",
    "FLOW_RULES",
    "ProjectRule",
    "lint_project",
    "MODEL_RULES",
    "ModelRule",
    "ModelView",
    "lint_model",
    "check_problem",
    "report_to_sarif",
    "report_to_sarif_json",
]
