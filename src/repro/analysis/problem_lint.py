"""Pre-formulation checks on a :class:`~repro.core.problem.DesignProblem`.

These run *before* the ILP is built: they inspect the resolved constraint
pair sets, the timing matrix, and the power profile, and report instance
pathologies at the vocabulary of the paper (cores, buses, budgets) rather
than at the vocabulary of rows and columns. ``DesignProblem.lint()``
delegates here; the ``repro lint model`` CLI runs this pass first and the
model-lint pass second.

Rule index:

====  ========  ===========================================================
id    severity  finding
====  ========  ===========================================================
P001  error     a core pair is simultaneously forced and forbidden
P002  error     a core fits no bus of the architecture
P003  warning   a single core's test power exceeds the power budget
P004  error     a forced pair has no common width-feasible bus
====  ========  ===========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us lazily)
    from repro.core.problem import DesignProblem


def check_problem(problem: "DesignProblem") -> LintReport:
    """Run every problem-level rule; returns a :class:`LintReport`."""
    report = LintReport()
    names = problem.soc.core_names
    times = problem.times

    # P001 — the power encoding and the layout encoding collide outright.
    for a, b in problem.contradictions():
        report.add(
            Diagnostic(
                "P001",
                Severity.ERROR,
                f"pair ({names[a]}, {names[b]})",
                "pair is forced to share a bus by the power budget (after "
                "transitive closure) and forbidden from sharing one by the "
                "layout budget; no assignment can satisfy both",
                "relax P_max or the distance budget delta for this pair",
            )
        )

    # P002 — a core that fits no bus makes every assignment row unsatisfiable.
    feasible = np.isfinite(times)
    for i, core in enumerate(problem.soc):
        if not feasible[i].any():
            report.add(
                Diagnostic(
                    "P002",
                    Severity.ERROR,
                    f"core {core.name}",
                    f"core (test width {core.test_width}) fits no bus of "
                    f"{problem.arch} under the {problem.timing.name} timing model",
                    "widen a bus to at least the core's interface width or "
                    "switch to a width-adaptive timing model",
                )
            )

    # P003 — the pairwise power encoding cannot see a single hot core.
    if problem.power_budget is not None:
        for core in problem.soc:
            if core.test_power > problem.power_budget:
                report.add(
                    Diagnostic(
                        "P003",
                        Severity.WARNING,
                        f"core {core.name}",
                        f"core alone dissipates {core.test_power:g} mW, above "
                        f"the {problem.power_budget:g} mW budget; the paper's "
                        "pairwise encoding keeps the model feasible but the "
                        "physical budget is unmeetable",
                        "raise P_max above the hottest single core or gate "
                        "the core's test into a dedicated low-power session",
                    )
                )

    # P004 — a forced pair whose cores share no feasible bus zeroes both
    # cores' variables on every bus (detected later by M007, but the cause
    # lives here and reads better in core/bus vocabulary).
    for a, b in problem.forced_pairs:
        if not (feasible[a] & feasible[b]).any():
            report.add(
                Diagnostic(
                    "P004",
                    Severity.ERROR,
                    f"pair ({names[a]}, {names[b]})",
                    "pair must share a bus (power budget) but no bus is "
                    "width-feasible for both cores",
                    "widen a bus so the pair has a common home, or relax "
                    "P_max so the pair is no longer forced",
                )
            )

    return report
