"""Project loader: parsed modules, binding tables, import resolution.

A :class:`Project` is the shared substrate of every flow rule: each scanned
``.py`` file parsed once into a :class:`ModuleInfo` carrying its dotted
module name (derived from the ``__init__.py`` chain above it), its source
lines (for waiver comments), and a table of *top-level bindings* — what each
module-scope name refers to (a function, a class, an import, an assignment).

:meth:`Project.resolve` answers "module ``M``, symbol ``S`` — where is it
actually defined?", following ``from X import S as T`` aliases and package
``__init__`` re-export chains (``repro.runtime`` re-exporting
``repro.runtime.parallel.run_parallel``) with a visited set, so rules see
through the facade layering instead of stopping at the first alias.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable


@dataclass(frozen=True)
class Binding:
    """One top-level name in a module.

    ``kind`` is ``"func"`` / ``"class"`` / ``"assign"`` for local
    definitions, ``"import"`` for ``import X [as N]`` (``target`` is the
    module path ``X``), and ``"from"`` for ``from X import S [as N]``
    (``target`` is ``X``, ``symbol`` is ``S``).
    """

    name: str
    kind: str
    node: ast.AST
    target: str | None = None
    symbol: str | None = None


@dataclass
class ModuleInfo:
    """One parsed module with its binding table."""

    name: str
    path: str
    tree: ast.Module
    lines: list[str]
    is_package: bool = False
    bindings: dict[str, Binding] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]

    def binding(self, name: str) -> Binding | None:
        return self.bindings.get(name)

    def dunder_all(self) -> list[str] | None:
        """The module's literal ``__all__`` list, or None when absent."""
        for stmt in self.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets)
                and isinstance(stmt.value, (ast.List, ast.Tuple))
            ):
                names = []
                for element in stmt.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        names.append(element.value)
                return names
        return None


@dataclass(frozen=True)
class Resolved:
    """Where a symbol lookup landed.

    ``module`` is None for symbols that leave the project (external
    libraries); then ``external`` carries the dotted ``module:symbol`` text.
    """

    module: ModuleInfo | None
    name: str | None = None
    node: ast.AST | None = None
    external: str | None = None

    @property
    def is_external(self) -> bool:
        return self.module is None


def _module_name_for(path: Path) -> tuple[str, bool]:
    """Dotted module name from the ``__init__.py`` chain above ``path``."""
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py with no package directory above it
        parts = [path.parent.name]
    return ".".join(reversed(parts)), is_package


def _collect_bindings(tree: ast.Module) -> dict[str, Binding]:
    bindings: dict[str, Binding] = {}

    def bind(binding: Binding) -> None:
        bindings[binding.name] = binding

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bind(Binding(stmt.name, "func", stmt))
        elif isinstance(stmt, ast.ClassDef):
            bind(Binding(stmt.name, "class", stmt))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.partition(".")[0]
                # ``import a.b.c`` binds ``a`` (the root package); with an
                # asname the full dotted path is bound to that name.
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                bind(Binding(local, "import", stmt, target=target))
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    continue  # star imports are opaque; rules treat as unresolved
                local = alias.asname or alias.name
                bind(
                    Binding(
                        local,
                        "from",
                        stmt,
                        target=stmt.module or "",
                        symbol=alias.name,
                    )
                )
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    bind(Binding(target.id, "assign", stmt))
                elif isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            bind(Binding(element.id, "assign", stmt))
        elif isinstance(stmt, (ast.If, ast.Try)):
            # One level into conditional imports (TYPE_CHECKING guards,
            # optional dependencies) — enough for the real tree's idioms.
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Import):
                    for alias in sub.names:
                        local = alias.asname or alias.name.partition(".")[0]
                        target = alias.name if alias.asname else alias.name.partition(".")[0]
                        bindings.setdefault(local, Binding(local, "import", sub, target=target))
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        bindings.setdefault(
                            local,
                            Binding(local, "from", sub, target=sub.module or "", symbol=alias.name),
                        )
    return bindings


class Project:
    """All scanned modules, indexed by dotted name, with symbol resolution."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        for module in modules:
            self.modules[module.name] = module
            self.by_path[module.path] = module

    def __iter__(self):
        return iter(self.modules.values())

    def module(self, name: str) -> ModuleInfo | None:
        return self.modules.get(name)

    # ------------------------------------------------------------- resolution
    def absolute_target(self, module: ModuleInfo, node: ast.ImportFrom) -> str:
        """The absolute dotted module an ``ImportFrom`` pulls from."""
        if not node.level:
            return node.module or ""
        base = module.package
        for _ in range(node.level - 1):
            base = base.rpartition(".")[0]
        if node.module:
            return f"{base}.{node.module}" if base else node.module
        return base

    def resolve(self, module_name: str, symbol: str, _seen: frozenset = frozenset()) -> Resolved:
        """Find where ``module_name.symbol`` is defined, following re-exports."""
        key = (module_name, symbol)
        if key in _seen:
            return Resolved(None, external=f"{module_name}:{symbol}")
        module = self.modules.get(module_name)
        if module is None:
            # ``symbol`` may itself be a submodule of an unscanned package —
            # or the whole thing is external. Prefer a scanned submodule.
            submodule = self.modules.get(f"{module_name}.{symbol}")
            if submodule is not None:
                return Resolved(submodule, name=None, node=submodule.tree)
            return Resolved(None, external=f"{module_name}:{symbol}")
        binding = module.bindings.get(symbol)
        if binding is None:
            submodule = self.modules.get(f"{module_name}.{symbol}")
            if submodule is not None:
                return Resolved(submodule, name=None, node=submodule.tree)
            return Resolved(None, external=f"{module_name}:{symbol}")
        if binding.kind in ("func", "class", "assign"):
            return Resolved(module, name=symbol, node=binding.node)
        if binding.kind == "from":
            assert binding.node is not None
            target = self.absolute_target(module, binding.node)  # type: ignore[arg-type]
            return self.resolve(target, binding.symbol or symbol, _seen | {key})
        if binding.kind == "import":
            target_module = self.modules.get(binding.target or "")
            if target_module is not None:
                return Resolved(target_module, name=None, node=target_module.tree)
            return Resolved(None, external=binding.target)
        return Resolved(None, external=f"{module_name}:{symbol}")

    def resolve_name(self, module: ModuleInfo, name: str) -> Resolved:
        """Resolve a bare module-scope ``name`` used inside ``module``."""
        return self.resolve(module.name, name)

    def resolve_attribute(self, module: ModuleInfo, node: ast.Attribute) -> Resolved:
        """Resolve ``alias.attr`` / ``pkg.sub.attr`` attribute references."""
        parts: list[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return Resolved(None, external=None)
        parts.append(current.id)
        parts.reverse()
        binding = module.bindings.get(parts[0])
        if binding is None or binding.kind not in ("import", "from"):
            return Resolved(None, external=None)
        if binding.kind == "import":
            base = binding.target or parts[0]
        else:  # ``from X import sub`` used as ``sub.attr``
            resolved = self.resolve(module.name, parts[0])
            if resolved.module is not None and resolved.name is None:
                base = resolved.module.name
            else:
                return resolved if len(parts) == 1 else Resolved(None, external=None)
        # Walk the dotted chain: all but the last element must be modules.
        for index, part in enumerate(parts[1:], start=1):
            is_last = index == len(parts) - 1
            if is_last:
                return self.resolve(base, part)
            base = f"{base}.{part}"
        return self.resolve(base, parts[-1])


def load_project(paths: Iterable[str | Path]) -> Project:
    """Parse ``paths`` (files, in any order) into a :class:`Project`.

    Files that do not parse are skipped — the per-file lint pass already
    reports them as C000, and a half-parsed module would only poison the
    cross-module structures.
    """
    modules: list[ModuleInfo] = []
    seen: set[str] = set()
    for path in paths:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError):
            continue
        name, is_package = _module_name_for(path)
        if name in seen:  # duplicate stem outside any package: keep the first
            name = f"{name}@{len(modules)}"
        seen.add(name)
        modules.append(
            ModuleInfo(
                name=name,
                path=str(path),
                tree=tree,
                lines=source.splitlines(),
                is_package=is_package,
                bindings=_collect_bindings(tree),
            )
        )
    return Project(modules)
