"""The D-series project rules: flow-checked runtime invariants.

====  ========  ===========================================================
id    severity  finding
====  ========  ===========================================================
D001  error     cache-key completeness: a result-affecting solver knob or
                policy field does not flow into ``solve_fingerprint`` /
                ``cache_token``
D002  error     process-pool purity: a callable submitted to
                ``run_parallel`` is not a pure top-level function
D003  error     determinism: unordered ``set`` iteration or unseeded RNG on
                a path that reaches a ``Solution``, report table, or cache
                record
D004  error     facade integrity: a ``repro.api`` export does not resolve,
                or consumer code deep-imports a blessed symbol
====  ========  ===========================================================

Unlike the per-file C-rules, these run over the whole scanned file set at
once (see :mod:`repro.analysis.flow`), so they can follow imports: D001
traces the options mapping through ``Model.solve`` into the fingerprint
call, D002 resolves the worker function a sweep submits (including through
``functools.partial``), D003 combines set-typing with call-graph
reachability to sinks, and D004 walks the facade's re-export chains.

Every rule is structural, not name-list driven: seeding a regression (e.g.
deleting the ``cache_token`` branch in ``runtime/cache.py``) turns the
corresponding rule red — that property is pinned by tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    ignored_rules_for_lines,
    node_waiver_span,
)
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.dataflow import function_origins
from repro.analysis.flow.project import ModuleInfo, Project, load_project

#: Final-name components whose definitions count as determinism sinks: a
#: value iterated in nondeterministic order in a function that can reach
#: one of these ends up in a solver result, a cache record, or a report.
SINK_NAMES = frozenset(
    {"Solution", "CacheRecord", "Table", "format_table", "solve_fingerprint", "matrix_fingerprint"}
)

#: Methods that mutate their receiver (D002 worker purity).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
    }
)


@dataclass(frozen=True)
class FlowFinding:
    """One raw rule hit, pre-waiver: where plus what."""

    module: ModuleInfo
    node: ast.AST | None
    message: str
    hint: str = ""


class ProjectRule:
    """One whole-project check; yields :class:`FlowFinding` objects."""

    rule_id: str = "D000"
    title: str = ""

    def check(self, project: Project, graph: CallGraph) -> Iterable[FlowFinding]:
        raise NotImplementedError


# --------------------------------------------------------------------- helpers
def _walk_functions(project: Project) -> Iterator[tuple[ModuleInfo, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for module in project:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield module, node


def _references_cache_token(node: ast.AST) -> bool:
    """Does ``node`` read a ``cache_token`` attribute (incl. via getattr)?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "cache_token":
            return True
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "getattr"
            and len(child.args) >= 2
            and isinstance(child.args[1], ast.Constant)
            and child.args[1].value == "cache_token"
        ):
            return True
    return False


def _self_attr_reads(node: ast.AST) -> set[str]:
    return {
        child.attr
        for child in ast.walk(node)
        if isinstance(child, ast.Attribute)
        and isinstance(child.value, ast.Name)
        and child.value.id == "self"
        and isinstance(child.ctx, ast.Load)
    }


class CacheKeyCompleteness(ProjectRule):
    """D001 — every result-affecting knob must reach the cache key.

    Three structural sub-checks, each anchored on a definition found by
    shape (so fixtures and the real tree are checked identically):

    1. **token protocol** — the module defining ``solve_fingerprint`` must,
       somewhere reachable from it, honor the option ``cache_token``
       protocol (an attribute read or ``getattr(..., "cache_token")``);
    2. **solve plumbing** — in any function that both computes a
       fingerprint and forwards a ``**options`` mapping to a backend, the
       taint roots flowing into *any* other call (the solver dispatch) must
       be a subset of the roots hashed into the key: a new solver kwarg
       that skips the fingerprint turns this red;
    3. **protocol completeness** — in a class exposing ``cache_token``
       alongside an options-producing method (``backend_options`` on a
       policy, ``request_options`` on a request), every field the producer
       reads must either land in the returned options mapping (hashed
       generically) or be read by ``cache_token``.
    """

    rule_id = "D001"
    title = "cache-key completeness (knob does not reach solve_fingerprint)"

    def check(self, project: Project, graph: CallGraph) -> Iterable[FlowFinding]:
        yield from self._check_token_protocol(project, graph)
        yield from self._check_solve_plumbing(project, graph)
        yield from self._check_policy_class(project)

    # ------------------------------------------------------- 1: token protocol
    def _check_token_protocol(self, project: Project, graph: CallGraph) -> Iterator[FlowFinding]:
        for module in project:
            binding = module.binding("solve_fingerprint")
            if binding is None or binding.kind != "func":
                continue
            qname = f"{module.name}.solve_fingerprint"
            for reached in graph.reachable(qname):
                info = graph.definitions.get(reached)
                if info is not None and _references_cache_token(info.node):
                    break
            else:
                yield FlowFinding(
                    module,
                    binding.node,
                    "solve_fingerprint ignores the option cache_token protocol: no "
                    "function reachable from it reads `.cache_token`",
                    "canonicalize option values via their cache_token() (see "
                    "repro.runtime.fingerprint.cache_token_of); without it a "
                    "SolvePolicy- or SolveRequest-valued option aliases solves "
                    "with different effective budgets",
                )

    # ------------------------------------------------------- 2: solve plumbing
    def _fingerprint_calls(
        self, project: Project, module: ModuleInfo, fn: ast.AST
    ) -> list[ast.Call]:
        calls = []
        for child in ast.walk(fn):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if isinstance(func, ast.Name):
                resolved = project.resolve_name(module, func.id)
                if resolved.name == "solve_fingerprint" or (
                    resolved.external or ""
                ).endswith(":solve_fingerprint"):
                    calls.append(child)
            elif isinstance(func, ast.Attribute) and func.attr in ("fingerprint", "solve_fingerprint"):
                calls.append(child)
        return calls

    def _check_solve_plumbing(self, project: Project, graph: CallGraph) -> Iterator[FlowFinding]:
        for module, fn in _walk_functions(project):
            fp_calls = self._fingerprint_calls(project, module, fn)
            if not fp_calls:
                continue
            origins = function_origins(fn)
            if origins.var_keyword is None:
                continue  # no catch-all knob mapping to audit here
            kwarg_root = f"param:{origins.var_keyword}"
            hashed: set[str] = set()
            for call in fp_calls:
                hashed |= origins.call_param_origins(call)
            if kwarg_root not in hashed:
                yield FlowFinding(
                    module,
                    fn,
                    f"{fn.name}() computes a cache fingerprint but its "
                    f"**{origins.var_keyword} backend options never flow into it",
                    "hash the same options mapping you forward to the backend "
                    "(solve_fingerprint(form, backend=..., options=...))",
                )
                continue
            if "policy" in origins.params and "param:policy" not in hashed:
                yield FlowFinding(
                    module,
                    fn,
                    f"{fn.name}() takes a policy but the policy does not "
                    "contribute to the cache fingerprint",
                    "fold policy.backend_options() and/or policy.cache_token() "
                    "into the hashed options mapping — a truncated solve must "
                    "never be replayed for an uncapped request",
                )
            allowed = hashed | {"param:self"}
            fp_set = set(fp_calls)
            for child in ast.walk(fn):
                if not isinstance(child, ast.Call) or child in fp_set:
                    continue
                roots = origins.call_param_origins(child)
                if kwarg_root not in roots:
                    continue
                leaked = sorted(root[len("param:"):] for root in roots - allowed)
                if leaked:
                    yield FlowFinding(
                        module,
                        child,
                        f"solver dispatch in {fn.name}() receives parameter(s) "
                        f"{leaked} that are not part of the cache fingerprint",
                        "any knob that can change what a solve returns must be "
                        "hashed into the key (add it to the options mapping "
                        "before the fingerprint is computed)",
                    )

    # ------------------------------------------------- 3: protocol completeness
    #: Methods whose self-attribute reads shape a solve and therefore must
    #: be covered by the class's ``cache_token`` (or land in the returned,
    #: generically hashed options mapping). ``backend_options`` is the
    #: policy shape, ``request_options`` the unified-request shape.
    OPTION_PRODUCERS = ("backend_options", "request_options")

    def _check_policy_class(self, project: Project) -> Iterator[FlowFinding]:
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                cache_token = methods.get("cache_token")
                if cache_token is None:
                    continue
                token_reads = _self_attr_reads(cache_token)
                for producer_name in self.OPTION_PRODUCERS:
                    producer = methods.get(producer_name)
                    if producer is None:
                        continue
                    covered = self._dict_covered_fields(producer)
                    for attr in sorted(_self_attr_reads(producer)):
                        if attr in token_reads or attr in covered:
                            continue
                        yield FlowFinding(
                            module,
                            producer,
                            f"{node.name}.{attr} shapes the solve in "
                            f"{producer_name}() but reaches neither the returned "
                            "options mapping nor cache_token()",
                            "store it into the returned options dict (hashed "
                            "generically) or add it to cache_token()",
                        )

    def _dict_covered_fields(self, method: ast.AST) -> set[str]:
        """Fields stored into a dict that the method returns."""
        returned = {
            stmt.value.id
            for stmt in ast.walk(method)
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Name)
        }
        covered: set[str] = set()
        for stmt in ast.walk(method):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Subscript)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id in returned
            ):
                covered |= _self_attr_reads(stmt.value)
        return covered


class ProcessPoolPurity(ProjectRule):
    """D002 — callables crossing the process-pool boundary must be pure.

    ``run_parallel`` pickles its worker into separate processes: the worker
    must be a *top-level* function (picklable by qualified name), must not
    write module globals (each process has its own copy — silent divergence),
    and must not be a lambda, nested function, or bound method (closures and
    instances smuggle unpicklable or mutable shared state).
    """

    rule_id = "D002"
    title = "impure or non-top-level callable submitted to the process pool"

    def check(self, project: Project, graph: CallGraph) -> Iterable[FlowFinding]:
        for module in project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and self._is_submission(project, module, node):
                    yield from self._check_submission(project, module, node)

    def _is_submission(self, project: Project, module: ModuleInfo, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = project.resolve_name(module, func.id)
        elif isinstance(func, ast.Attribute):
            resolved = project.resolve_attribute(module, func)
        else:
            return False
        if resolved.name == "run_parallel":
            return True
        return bool(resolved.external) and resolved.external.endswith(":run_parallel")

    def _worker_expr(self, call: ast.Call) -> ast.AST | None:
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return call.args[0] if call.args else None

    def _check_submission(
        self, project: Project, module: ModuleInfo, call: ast.Call
    ) -> Iterator[FlowFinding]:
        worker = self._worker_expr(call)
        if worker is None:
            return
        yield from self._check_worker(project, module, call, worker)

    def _check_worker(
        self, project: Project, module: ModuleInfo, site: ast.Call, worker: ast.AST
    ) -> Iterator[FlowFinding]:
        if isinstance(worker, ast.Lambda):
            yield FlowFinding(
                module,
                site,
                "lambda submitted to the process pool",
                "workers are pickled by qualified name; define a top-level "
                "function and pass inputs through the payload",
            )
            return
        if isinstance(worker, ast.Call):
            from repro.analysis.flow.callgraph import _is_partial

            if _is_partial(project, module, worker) and worker.args:
                yield from self._check_worker(project, module, site, worker.args[0])
                return
            yield FlowFinding(
                module,
                site,
                "process-pool worker built by a call expression is not statically "
                "resolvable to a top-level function",
                "submit a top-level function (functools.partial over one is fine)",
            )
            return
        if isinstance(worker, ast.Attribute):
            resolved = project.resolve_attribute(module, worker)
            if resolved.module is not None and isinstance(
                resolved.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from self._check_purity(resolved.module, resolved.node, module, site)
                return
            yield FlowFinding(
                module,
                site,
                f"process-pool worker `{ast.unparse(worker)}` looks like a bound "
                "method or unresolvable attribute",
                "bound methods drag their instance across the pickle boundary; "
                "submit a top-level function",
            )
            return
        if isinstance(worker, ast.Name):
            if module.binding(worker.id) is None:
                # Not a module-level name at the call site: a local variable,
                # nested def, or lambda — none are pool-safe statically.
                yield FlowFinding(
                    module,
                    site,
                    f"process-pool worker `{worker.id}` is not a top-level "
                    "function (local variable, nested def, or lambda)",
                    "define the worker at module scope so it pickles by "
                    "qualified name and cannot close over mutable state",
                )
                return
            resolved = project.resolve_name(module, worker.id)
            if resolved.module is not None and isinstance(
                resolved.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                binding = resolved.module.binding(resolved.name or "")
                if binding is not None and binding.node is resolved.node:
                    yield from self._check_purity(resolved.module, resolved.node, module, site)
            # Anything else resolved through the import table (an external
            # library function, a module-level alias) is accepted: it pickles
            # by qualified name even if we cannot audit its body.

    def _check_purity(
        self,
        def_module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        site_module: ModuleInfo,
        site: ast.Call,
    ) -> Iterator[FlowFinding]:
        local_names = {arg.arg for arg in [
            *fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs,
            *( [fn.args.vararg] if fn.args.vararg else [] ),
            *( [fn.args.kwarg] if fn.args.kwarg else [] ),
        ]}
        for child in ast.walk(fn):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                local_names.add(child.id)
        def is_module_global(name: str) -> bool:
            return name not in local_names and def_module.binding(name) is not None

        for child in ast.walk(fn):
            if isinstance(child, ast.Global):
                yield FlowFinding(
                    site_module,
                    site,
                    f"pool worker {fn.name}() declares `global "
                    f"{', '.join(child.names)}` — each worker process mutates "
                    "its own copy",
                    "pass state through the payload and return results; module "
                    "globals silently diverge across processes",
                )
            elif isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = child.targets if isinstance(child, ast.Assign) else [child.target]
                for target in targets:
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if isinstance(root, ast.Name) and is_module_global(root.id):
                        yield FlowFinding(
                            site_module,
                            site,
                            f"pool worker {fn.name}() writes module-level state "
                            f"`{root.id}`",
                            "worker processes do not share memory with the "
                            "parent; mutations are lost or diverge",
                        )
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in MUTATOR_METHODS
                and isinstance(child.func.value, ast.Name)
                and is_module_global(child.func.value.id)
            ):
                yield FlowFinding(
                    site_module,
                    site,
                    f"pool worker {fn.name}() mutates module-level container "
                    f"`{child.func.value.id}.{child.func.attr}(...)`",
                    "worker processes do not share memory with the parent; "
                    "mutations are lost or diverge",
                )


class DeterminismDiscipline(ProjectRule):
    """D003 — no unordered iteration or unseeded RNG on result paths.

    Python ``set`` iteration order depends on insertion history and (for
    strings) the per-process hash seed: two runs — or two pool workers — can
    legitimately disagree. That is harmless in a membership test, fatal in
    anything that reaches a :class:`Solution`, a report table, or a cache
    record, because the runtime layer promises those are byte-identical
    across runs. The rule infers set-typed expressions per function, flags
    order-*sensitive* consumption (``for``, comprehensions, ``list(...)``,
    ``join``) without a ``sorted(...)`` step, and only fires when the
    enclosing function can reach a sink in the call graph. Unseeded RNG
    (``make_rng()`` / ``default_rng()`` with no seed) on the same paths is
    flagged for the same reason.
    """

    rule_id = "D003"
    title = "nondeterministic set iteration / unseeded RNG reaches solver output"

    _SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference", "copy"}
    )

    def check(self, project: Project, graph: CallGraph) -> Iterable[FlowFinding]:
        sinks = {
            qname
            for qname in graph.definitions
            if qname.rpartition(".")[2] in SINK_NAMES
        }
        for module, fn in _walk_functions(project):
            qname = graph.qname_of(fn)
            if qname is None or qname in sinks:
                continue
            if not graph.reaches_any(qname, sinks):
                continue
            local_sets = self._local_sets(module, fn)
            yield from self._check_iterations(module, fn, local_sets)
            yield from self._check_rng(project, module, fn)

    # ------------------------------------------------------------ set typing
    def _module_set_constants(self, module: ModuleInfo) -> set[str]:
        constants: set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and self._is_setty(stmt.value, set(), set()):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        constants.add(target.id)
        return constants

    def _is_setty(self, expr: ast.AST, local_sets: set[str], module_sets: set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in self._SET_METHODS
                and self._is_setty(expr.func.value, local_sets, module_sets)
            ):
                return True
            return False
        if isinstance(expr, ast.Name):
            return expr.id in local_sets or expr.id in module_sets
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setty(expr.left, local_sets, module_sets) or self._is_setty(
                expr.right, local_sets, module_sets
            )
        return False

    def _local_sets(self, module: ModuleInfo, fn: ast.AST) -> set[str]:
        module_sets = self._module_set_constants(module)
        local_sets: set[str] = set()
        for _ in range(2):  # two sweeps resolve simple chains
            for child in ast.walk(fn):
                if isinstance(child, ast.Assign) and self._is_setty(
                    child.value, local_sets, module_sets
                ):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            local_sets.add(target.id)
        return local_sets | module_sets

    # ------------------------------------------------------------- iteration
    def _check_iterations(
        self, module: ModuleInfo, fn: ast.AST, sets: set[str]
    ) -> Iterator[FlowFinding]:
        module_sets: set[str] = set()  # folded into ``sets`` already
        hint = (
            "set iteration order varies with insertion history and the hash "
            "seed; wrap the set in sorted(...) before it can influence a "
            "Solution, table, or cache record"
        )

        def setty(expr: ast.AST) -> bool:
            return self._is_setty(expr, sets, module_sets)

        for child in ast.walk(fn):
            if isinstance(child, ast.For) and setty(child.iter):
                yield FlowFinding(
                    module, child, "iteration over an unordered set on a result path", hint
                )
            elif isinstance(child, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in child.generators:
                    if setty(gen.iter):
                        yield FlowFinding(
                            module,
                            child,
                            "comprehension over an unordered set on a result path",
                            hint,
                        )
            elif isinstance(child, ast.Call):
                if (
                    isinstance(child.func, ast.Name)
                    and child.func.id in ("list", "tuple")
                    and len(child.args) == 1
                    and setty(child.args[0])
                ):
                    yield FlowFinding(
                        module,
                        child,
                        f"{child.func.id}() over an unordered set on a result path",
                        hint,
                    )
                elif (
                    isinstance(child.func, ast.Attribute)
                    and child.func.attr == "join"
                    and len(child.args) == 1
                    and setty(child.args[0])
                ):
                    yield FlowFinding(
                        module,
                        child,
                        "str.join over an unordered set on a result path",
                        hint,
                    )

    # -------------------------------------------------------------------- rng
    def _check_rng(
        self, project: Project, module: ModuleInfo, fn: ast.AST
    ) -> Iterator[FlowFinding]:
        for child in ast.walk(fn):
            if not isinstance(child, ast.Call):
                continue
            name = None
            if isinstance(child.func, ast.Name):
                resolved = project.resolve_name(module, child.func.id)
                name = resolved.name or (resolved.external or "").rpartition(":")[2]
            elif isinstance(child.func, ast.Attribute):
                name = child.func.attr
            if name not in ("make_rng", "default_rng"):
                continue
            unseeded = not child.args or (
                isinstance(child.args[0], ast.Constant) and child.args[0].value is None
            )
            if unseeded and not child.keywords:
                yield FlowFinding(
                    module,
                    child,
                    f"unseeded {name}() on a path that reaches solver output",
                    "thread an explicit seed (or a caller-provided Generator) so "
                    "re-runs and cache validation reproduce bit-identical results",
                )


class FacadeIntegrity(ProjectRule):
    """D004 — the ``repro.api`` facade is complete and actually used.

    Two directions: every facade import/``__all__`` entry must resolve to a
    real definition (a renamed internal silently breaks every downstream
    consumer at import time — of the *facade*, so the break surfaces far
    from the rename), and consumer code outside the package (benchmarks,
    scripts; examples are already held by C005) must not deep-import a
    symbol the facade blesses — otherwise the facade stops being the
    compatibility surface it claims to be.
    """

    rule_id = "D004"
    title = "facade export does not resolve / consumer bypasses the facade"

    def check(self, project: Project, graph: CallGraph) -> Iterable[FlowFinding]:
        api_modules = [
            module
            for module in project
            if (module.name == "api" or module.name.endswith(".api"))
            and module.dunder_all() is not None
        ]
        for api in api_modules:
            yield from self._check_exports(project, api)
        blessed: set[str] = set()
        root_packages: set[str] = set()
        for api in api_modules:
            blessed |= set(api.dunder_all() or ())
            root = api.name.rpartition(".")[0]
            if root:
                root_packages.add(root)
        if blessed:
            yield from self._check_consumers(project, blessed, root_packages)

    def _check_exports(self, project: Project, api: ModuleInfo) -> Iterator[FlowFinding]:
        for name, binding in sorted(api.bindings.items()):
            if binding.kind == "from":
                target = project.absolute_target(api, binding.node)  # type: ignore[arg-type]
                if project.module(target) is None and not any(
                    mod.name.startswith(target + ".") for mod in project
                ):
                    continue  # source module not scanned: out of scope
                resolved = project.resolve(target, binding.symbol or name)
                if resolved.is_external:
                    yield FlowFinding(
                        api,
                        binding.node,
                        f"facade import `{binding.symbol or name}` does not resolve "
                        f"in {target!r}",
                        "the internal was moved or renamed; every repro.api "
                        "export must point at a real definition",
                    )
        exported = api.dunder_all() or []
        for name in exported:
            if name not in api.bindings:
                yield FlowFinding(
                    api,
                    None,
                    f"__all__ exports {name!r} but the facade never binds it",
                    "add the import (or drop the export) so `from repro.api "
                    f"import {name}` cannot fail",
                )

    def _is_consumer(self, module: ModuleInfo, root_packages: set[str]) -> bool:
        stem = module.name.rpartition(".")[2]
        if stem.startswith("test_") or stem == "conftest":
            return False
        if module.name.startswith("tests.") or module.name == "tests":
            return False
        for root in root_packages:
            if module.name == root or module.name.startswith(root + "."):
                return False  # package internals must use internal imports
        return True

    def _check_consumers(
        self, project: Project, blessed: set[str], root_packages: set[str]
    ) -> Iterator[FlowFinding]:
        targets = root_packages or {""}
        for module in project:
            if not self._is_consumer(module, root_packages):
                continue
            for name, binding in sorted(module.bindings.items()):
                if binding.kind != "from" or binding.symbol not in blessed:
                    continue
                target = binding.target or ""
                if not any(target == root or target.startswith(root + ".") for root in targets):
                    continue
                if target.endswith(".api"):
                    continue
                yield FlowFinding(
                    module,
                    binding.node,
                    f"deep import of blessed symbol {binding.symbol!r} from "
                    f"{target!r}",
                    f"import it from the facade instead (from "
                    f"{next(iter(sorted(root_packages)), 'repro')}.api import "
                    f"{binding.symbol}); deep imports break when internals move",
                )


#: The default flow rule set, in reporting order.
FLOW_RULES: tuple[ProjectRule, ...] = (
    CacheKeyCompleteness(),
    ProcessPoolPurity(),
    DeterminismDiscipline(),
    FacadeIntegrity(),
)


def run_project_rules(
    project: Project,
    rules: Iterable[ProjectRule] | None = None,
    graph: CallGraph | None = None,
) -> LintReport:
    """Run ``rules`` (default: all D-rules) over ``project``.

    Inline ``# lint: ignore[D00x]`` waivers apply exactly as for the
    per-file rules, honoring the full source span of the flagged statement
    (decorators and multi-line statements included).
    """
    graph = graph if graph is not None else build_call_graph(project)
    report = LintReport()
    for rule in rules if rules is not None else FLOW_RULES:
        for finding in rule.check(project, graph):
            lineno = getattr(finding.node, "lineno", 0) if finding.node is not None else 0
            diagnostic = Diagnostic(
                rule.rule_id,
                Severity.ERROR,
                f"{finding.module.path}:{lineno}",
                finding.message,
                finding.hint,
            )
            start, end = node_waiver_span(finding.node) if finding.node is not None else (0, 0)
            ignored = ignored_rules_for_lines(finding.module.lines, start, end)
            if ignored is None or rule.rule_id in ignored:
                report.waived.append(diagnostic)
            else:
                report.add(diagnostic)
    return report


def lint_project(paths: Iterable[str]) -> LintReport:
    """Load ``paths`` into a project and run every flow rule."""
    from repro.analysis.code_lint import iter_python_files

    project = load_project(iter_python_files(paths))
    return run_project_rules(project)
