"""Flow-aware static analysis over the repo's own source tree.

Where :mod:`repro.analysis.code_lint` checks one file at a time, this
package builds a *project* view — every scanned module parsed once, imports
resolved through aliases and ``__init__`` re-export chains — and derives
three cheap whole-program structures on top of it:

- :class:`~repro.analysis.flow.project.Project` — module graph with
  top-level binding tables and cross-module symbol resolution
  (:meth:`Project.resolve`), the substrate every other pass shares;
- :class:`~repro.analysis.flow.callgraph.CallGraph` — import-resolved
  call/reference edges between project functions and classes, including
  ``functools.partial`` and bare function references passed as arguments;
- :func:`~repro.analysis.flow.dataflow.function_origins` — per-function
  def-use chains reduced to *origin sets*: for every local, which
  parameters / module globals its value was derived from. This is the
  lightweight taint engine behind the cache-key completeness rule.

The D-series rules (:mod:`repro.analysis.flow.rules`) consume these to
machine-check the invariants the runtime layer only promises in prose:
cache-key completeness (D001), process-pool purity (D002), determinism
discipline (D003), and facade integrity (D004). They run automatically
from :func:`repro.analysis.code_lint.lint_paths` / ``repro lint code``.
"""

from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.dataflow import FunctionOrigins, function_origins
from repro.analysis.flow.project import ModuleInfo, Project, load_project
from repro.analysis.flow.rules import (
    FLOW_RULES,
    ProjectRule,
    lint_project,
    run_project_rules,
)

__all__ = [
    "CallGraph",
    "FLOW_RULES",
    "FunctionOrigins",
    "ModuleInfo",
    "Project",
    "ProjectRule",
    "build_call_graph",
    "function_origins",
    "lint_project",
    "load_project",
    "run_project_rules",
]
