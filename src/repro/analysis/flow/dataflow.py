"""Per-function def-use chains reduced to *origin sets* (lightweight taint).

For one function definition, :func:`function_origins` computes, for every
local name, the set of roots its value may derive from:

- ``param:<name>`` — a formal parameter (``param:**kwargs`` style roots keep
  their plain name; :attr:`FunctionOrigins.var_keyword` says which one is
  the ``**kwargs`` catch-all);
- ``global:<name>`` — a module-scope name read inside the function;
- ``self.<attr>`` loads root at ``param:self`` (the instance is the origin).

Propagation is flow-insensitive (one fixpoint over the whole body) and
*value-preserving by construction*: an expression's origins are the union
of its subexpressions' origins, calls propagate their receiver's and
arguments' origins into the result, and the mutating forms that matter for
dict plumbing — ``d[k] = v``, ``d.update(x)``, ``d.setdefault`` — fold the
value's origins back into the container. That is exactly enough to answer
the cache-key question: "is the mapping hashed into ``solve_fingerprint``
derived from the same knobs that reach the backend solver?" — without
pretending to be a real abstract interpreter.

Over-approximation is the designed failure mode: extra origins can only
make rule D001 *more* suspicious of an un-hashed knob, never less.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class FunctionOrigins:
    """Origin sets for one function's locals, plus call-site views."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    origins: dict[str, set[str]] = field(default_factory=dict)
    params: set[str] = field(default_factory=set)
    var_keyword: str | None = None

    def of_name(self, name: str) -> set[str]:
        if name in self.origins:
            roots = set(self.origins[name])
            if name in self.params:
                # A reassigned parameter keeps its param root: the rebound
                # value still derives from the caller's knob (over-approx).
                roots.add(f"param:{name}")
            return roots
        if name in self.params:
            return {f"param:{name}"}
        return {f"global:{name}"}

    def of_expr(self, expr: ast.AST) -> set[str]:
        """Union of origin roots a value computed by ``expr`` derives from."""
        result: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                result |= self.of_name(node.id)
        return result

    def param_origins(self, expr: ast.AST) -> set[str]:
        """Only the ``param:`` roots of :meth:`of_expr` (the knob view)."""
        return {root for root in self.of_expr(expr) if root.startswith("param:")}

    def call_param_origins(self, call: ast.Call) -> set[str]:
        """Param roots flowing into a call: receiver + every argument."""
        roots: set[str] = set()
        if isinstance(call.func, ast.Attribute):
            roots |= self.param_origins(call.func.value)
        for arg in call.args:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            roots |= self.param_origins(target)
        for keyword in call.keywords:
            roots |= self.param_origins(keyword.value)
        return roots


_FOLDING_METHODS = frozenset({"update", "setdefault", "append", "extend", "add", "insert"})


def function_origins(node: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionOrigins:
    """Compute the flow-insensitive origin sets for ``node``'s locals."""
    info = FunctionOrigins(node)
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        info.params.add(arg.arg)
    if args.vararg is not None:
        info.params.add(args.vararg.arg)
    if args.kwarg is not None:
        info.params.add(args.kwarg.arg)
        info.var_keyword = args.kwarg.arg

    statements = [
        stmt
        for stmt in ast.walk(node)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.withitem))
    ]
    # Fixpoint: flow-insensitive, so a couple of sweeps converge (chains are
    # short; the bound guards pathological inputs).
    for _ in range(4):
        changed = False
        for stmt in statements:
            changed |= _apply(info, stmt)
        if not changed:
            break
    return info


def _merge_into(info: FunctionOrigins, name: str, roots: set[str]) -> bool:
    current = info.origins.setdefault(name, set())
    before = len(current)
    current |= roots
    return len(current) != before


def _assign_targets(info: FunctionOrigins, target: ast.AST, roots: set[str]) -> bool:
    changed = False
    if isinstance(target, ast.Name):
        changed |= _merge_into(info, target.id, roots)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            changed |= _assign_targets(info, element, roots)
    elif isinstance(target, ast.Starred):
        changed |= _assign_targets(info, target.value, roots)
    elif isinstance(target, ast.Subscript):
        # ``container[key] = value`` folds the value into the container.
        if isinstance(target.value, ast.Name):
            changed |= _merge_into(info, target.value.id, roots)
    return changed


def _apply(info: FunctionOrigins, stmt: ast.AST) -> bool:
    changed = False
    if isinstance(stmt, ast.Assign):
        roots = info.of_expr(stmt.value)
        for target in stmt.targets:
            changed |= _assign_targets(info, target, roots)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        changed |= _assign_targets(info, stmt.target, info.of_expr(stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        changed |= _assign_targets(info, stmt.target, info.of_expr(stmt.value))
    elif isinstance(stmt, ast.withitem) and stmt.optional_vars is not None:
        changed |= _assign_targets(info, stmt.optional_vars, info.of_expr(stmt.context_expr))
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        # ``d.update(x)`` / ``items.append(x)``: fold argument origins into
        # the receiver so mutated containers keep their full provenance.
        call = stmt.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FOLDING_METHODS
            and isinstance(call.func.value, ast.Name)
        ):
            roots: set[str] = set()
            for arg in call.args:
                roots |= info.of_expr(arg)
            for keyword in call.keywords:
                roots |= info.of_expr(keyword.value)
            changed |= _merge_into(info, call.func.value.id, roots)
    return changed
