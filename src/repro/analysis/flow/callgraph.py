"""Import-resolved call graph over a :class:`~repro.analysis.flow.project.Project`.

Nodes are qualified names ``module.Class.method`` / ``module.function`` /
``module.Class`` (class construction counts as "calling" the class — that is
exactly the edge the determinism rule needs to know a function builds a
``Solution``). Edges come from three syntactic shapes, each resolved through
the module's import bindings:

- direct calls — ``fn(...)``, ``alias.fn(...)``, ``pkg.sub.fn(...)``,
  ``self.method(...)`` (same-class dispatch);
- ``functools.partial(fn, ...)`` — an edge to ``fn``, because the partial
  will eventually run it;
- bare references — a project function passed as an argument
  (``run_parallel(worker, ...)``): recorded as a (conservative) edge, since
  the callee may invoke it.

The graph is deliberately context- and flow-insensitive: it answers
reachability questions ("can this function reach a ``Solution``
constructor?") cheaply and conservatively, which is the right trade for
lint — a false edge can only widen a rule's scrutiny, never hide a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.project import ModuleInfo, Project


@dataclass
class FunctionDefInfo:
    """One function/method (or class) definition node in the graph."""

    qname: str
    module: ModuleInfo
    node: ast.AST
    class_name: str | None = None


@dataclass
class CallGraph:
    """Qualified-name adjacency plus the definition index."""

    project: Project
    definitions: dict[str, FunctionDefInfo] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: qname of the enclosing definition for every AST function node id.
    _qname_of_node: dict[int, str] = field(default_factory=dict)

    def qname_of(self, node: ast.AST) -> str | None:
        return self._qname_of_node.get(id(node))

    def callees(self, qname: str) -> set[str]:
        return self.edges.get(qname, set())

    def reachable(self, start: str) -> set[str]:
        """Every qname reachable from ``start`` (inclusive)."""
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for nxt in self.edges.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def reaches_any(self, start: str, targets: set[str]) -> bool:
        if not targets:
            return False
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current in targets:
                return True
            for nxt in self.edges.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False


def _resolved_qname(project: Project, module: ModuleInfo, expr: ast.AST) -> str | None:
    """Qualified name of the project definition ``expr`` refers to, if any."""
    if isinstance(expr, ast.Name):
        resolved = project.resolve_name(module, expr.id)
    elif isinstance(expr, ast.Attribute):
        resolved = project.resolve_attribute(module, expr)
    else:
        return None
    if resolved.module is None or resolved.name is None:
        return None
    if not isinstance(resolved.node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return None
    return f"{resolved.module.name}.{resolved.name}"


def _is_partial(project: Project, module: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "partial":
        binding = module.binding("partial")
        return binding is not None and binding.kind == "from" and binding.target == "functools"
    if isinstance(func, ast.Attribute) and func.attr == "partial":
        if isinstance(func.value, ast.Name):
            binding = module.binding(func.value.id)
            return binding is not None and binding.kind == "import" and binding.target == "functools"
    return False


class _GraphBuilder(ast.NodeVisitor):
    def __init__(self, graph: CallGraph, module: ModuleInfo):
        self.graph = graph
        self.module = module
        self.scope: list[str] = []  # qualname parts
        self.class_stack: list[str] = []

    # ------------------------------------------------------------ definitions
    def _define(self, node: ast.AST, name: str) -> str:
        qname = ".".join([self.module.name, *self.scope, name])
        self.graph.definitions[qname] = FunctionDefInfo(
            qname,
            self.module,
            node,
            class_name=self.class_stack[-1] if self.class_stack else None,
        )
        self.graph._qname_of_node[id(node)] = qname
        return qname

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._define(node, node.name)
        self.scope.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qname = self._define(node, node.name)
        self.scope.append(node.name)
        class_name = self.class_stack[-1] if self.class_stack else None
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._record_call(qname, child, class_name)
        # Bare references to project functions (callbacks handed onward).
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                for arg in [*child.args, *[kw.value for kw in child.keywords]]:
                    ref = _resolved_qname(self.graph.project, self.module, arg)
                    if ref is not None:
                        self.graph.edges.setdefault(qname, set()).add(ref)
        self.scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------ edges
    def _record_call(self, caller: str, call: ast.Call, class_name: str | None) -> None:
        edges = self.graph.edges.setdefault(caller, set())
        func = call.func
        if _is_partial(self.graph.project, self.module, call) and call.args:
            target = _resolved_qname(self.graph.project, self.module, call.args[0])
            if target is not None:
                edges.add(target)
            return
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "self" and class_name is not None:
                edges.add(f"{self.module.name}.{class_name}.{func.attr}")
                return
        target = _resolved_qname(self.graph.project, self.module, func)
        if target is not None:
            edges.add(target)


def build_call_graph(project: Project) -> CallGraph:
    graph = CallGraph(project)
    for module in project:
        _GraphBuilder(graph, module).visit(module.tree)
    return graph
