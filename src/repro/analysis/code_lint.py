"""AST-based repo-invariant lint over the ``repro`` source tree.

The library has a handful of invariants that no general-purpose linter
knows about — randomness must flow through :mod:`repro.util.rng` so
experiments stay reproducible, solver objectives are floats and must never
be compared with bare ``==`` — plus two classic Python footguns (mutable
default arguments, bare ``except``) that have bitten numerical code before.
This pass walks each file's AST once and dispatches nodes to a registry of
rule objects, so adding a rule is one class and one registry entry.

Waivers:

- inline — append ``# lint: ignore[C003]`` (or ``# lint: ignore`` for all
  rules) to the offending line;
- baseline — a checked-in ``.lint-baseline.json`` listing findings the team
  has explicitly accepted (see :func:`repro.analysis.diagnostics.load_baseline`).

Rule index:

====  ========  ===========================================================
id    severity  finding
====  ========  ===========================================================
C001  error     direct ``random`` / ``numpy.random`` use outside util/rng
C002  error     mutable default argument
C003  error     ``==`` / ``!=`` against a solver objective float
C004  error     bare ``except:``
C005  error     example code importing ``repro.*`` internals, not ``repro.api``
C006  error     ``time.perf_counter()`` / ``time.time()`` outside repro.obs/runtime
====  ========  ===========================================================

The flow-aware ``D``-series rules (cache-key completeness, process-pool
purity, determinism discipline, facade integrity) live in
:mod:`repro.analysis.flow.rules`; :func:`lint_paths` runs them over the
whole scanned file set after the per-file pass, so ``repro lint code``
reports both families in one canonicalized report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import (
    IGNORE_RE as _IGNORE_RE,  # noqa: F401  (re-exported; the regex moved)
    Diagnostic,
    LintReport,
    Severity,
    ignored_rules_for_lines,
    node_waiver_span,
)

#: Files allowed to touch the raw RNG APIs (posix path suffixes).
RNG_EXEMPT_SUFFIXES = ("util/rng.py",)

#: Path fragments whose files may read the raw clock (C006): the obs layer
#: owns the sanctioned wrapper, the runtime layer times its own workers.
CLOCK_EXEMPT_FRAGMENTS = ("repro/obs/", "repro/runtime/")

#: Attribute names that hold solver-produced floats (C003).
OBJECTIVE_ATTRS = frozenset(
    {"objective", "makespan", "best_makespan", "best_bound", "gap", "wirelength"}
)

#: Method names returning solver-produced floats (C003).
OBJECTIVE_CALLS = frozenset({"objective_value"})


@dataclass
class FileContext:
    """Per-file state handed to every rule."""

    path: str
    lines: list[str]

    @property
    def is_rng_module(self) -> bool:
        normalized = self.path.replace("\\", "/")
        return any(normalized.endswith(suffix) for suffix in RNG_EXEMPT_SUFFIXES)

    def ignored_rules(self, lineno: int) -> set[str] | None:
        """Rules waived on ``lineno`` (1-based); None means "waive all"."""
        return ignored_rules_for_lines(self.lines, lineno, lineno)

    def ignored_rules_for_node(self, node: ast.AST) -> set[str] | None:
        """Rules waived anywhere over ``node``'s source span.

        Decorated definitions accept the waiver on the decorator line or
        anywhere in a multi-line signature; other statements on any of
        their continuation lines.
        """
        start, end = node_waiver_span(node)
        return ignored_rules_for_lines(self.lines, start, end)


class CodeRule:
    """One AST check. ``node_types`` routes dispatch; ``check`` yields
    diagnostics for a matching node."""

    rule_id: str = "C000"
    title: str = ""
    node_types: tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(self, node: ast.AST, ctx: FileContext, message: str, hint: str = "") -> Diagnostic:
        location = f"{ctx.path}:{getattr(node, 'lineno', 0)}"
        return Diagnostic(self.rule_id, Severity.ERROR, location, message, hint)


class RngDiscipline(CodeRule):
    rule_id = "C001"
    title = "direct random / numpy.random use outside util/rng"
    node_types = (ast.Import, ast.ImportFrom, ast.Attribute)

    _HINT = (
        "thread a numpy Generator from repro.util.rng.make_rng/spawn instead; "
        "ad-hoc RNG breaks experiment reproducibility"
    )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.is_rng_module:
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(("random.", "numpy.random")):
                    yield self.diag(node, ctx, f"direct import of {alias.name!r}", self._HINT)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                yield self.diag(node, ctx, f"import from {module!r}", self._HINT)
            elif module == "numpy" and any(alias.name == "random" for alias in node.names):
                yield self.diag(node, ctx, "import of numpy's random submodule", self._HINT)
        elif isinstance(node, ast.Attribute):
            if (
                node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")
            ):
                yield self.diag(node, ctx, f"use of {node.value.id}.random", self._HINT)


class MutableDefaultArgument(CodeRule):
    rule_id = "C002"
    title = "mutable default argument"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in self._MUTABLE_CALLS
        )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults if d is not None]
        name = getattr(node, "name", "<lambda>")
        for default in defaults:
            if self._is_mutable(default):
                yield self.diag(
                    default,
                    ctx,
                    f"mutable default argument in {name!r}",
                    "the default is shared across calls; use None and "
                    "construct the container inside the function",
                )


class ObjectiveFloatEquality(CodeRule):
    rule_id = "C003"
    title = "== / != against a solver objective float"
    node_types = (ast.Compare,)

    def _is_objective(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr in OBJECTIVE_ATTRS:
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            return expr.func.attr in OBJECTIVE_CALLS
        return False

    def _is_tolerant(self, expr: ast.AST) -> bool:
        """``== pytest.approx(...)`` / ``math.isclose(...)`` is the fix,
        not the bug."""
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name in ("approx", "isclose")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, other in ((left, right), (right, left)):
                if not self._is_objective(side):
                    continue
                if isinstance(other, ast.Constant) and other.value is None:
                    continue  # a None-ness check, not a float comparison
                if self._is_tolerant(other):
                    continue  # pytest.approx / math.isclose already tolerant
                yield self.diag(
                    side,
                    ctx,
                    "exact equality against a solver objective float",
                    "LP round-off makes exact comparison flaky; use "
                    "math.isclose or an explicit tolerance",
                )
                break


class BareExcept(CodeRule):
    rule_id = "C004"
    title = "bare except:"
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.diag(
                node,
                ctx,
                "bare except swallows KeyboardInterrupt and SystemExit",
                "catch ReproError (or the narrowest concrete exception) instead",
            )


class ExampleFacadeImports(CodeRule):
    """Examples are the library's public-API showcase: they must import
    from the stable :mod:`repro.api` facade, never from the internal
    submodule layout (which is free to move between releases)."""

    rule_id = "C005"
    title = "example code importing repro internals instead of repro.api"
    node_types = (ast.Import, ast.ImportFrom)

    _HINT = (
        "examples must demonstrate the supported surface: import the name "
        "from repro.api (every blessed name is exported there)"
    )

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.path.replace("\\", "/")).parts
        return "examples" in parts

    def _is_internal(self, module: str) -> bool:
        if module == "repro.api":
            return False
        return module == "repro" or module.startswith("repro.")

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        if not self._applies(ctx):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if self._is_internal(alias.name):
                    yield self.diag(
                        node, ctx, f"example imports internal module {alias.name!r}", self._HINT
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if self._is_internal(module):
                yield self.diag(
                    node, ctx, f"example imports from internal module {module!r}", self._HINT
                )


class TimingDiscipline(CodeRule):
    """Wall-clock reads must flow through :func:`repro.obs.now` (or the
    runtime layer) so traced phase totals and telemetry share one clock;
    scattered ``time.perf_counter()`` calls drift out of the span tree."""

    rule_id = "C006"
    title = "raw time.perf_counter()/time.time() outside repro.obs / repro.runtime"
    node_types = (ast.Attribute, ast.ImportFrom)

    _BANNED = frozenset({"perf_counter", "time", "monotonic"})
    _HINT = (
        "use repro.obs.now() (or a Stopwatch) so timings share the tracer's "
        "clock; only repro.obs and repro.runtime may read time directly"
    )

    def _applies(self, ctx: FileContext) -> bool:
        normalized = ctx.path.replace("\\", "/")
        return not any(fragment in normalized for fragment in CLOCK_EXEMPT_FRAGMENTS)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterable[Diagnostic]:
        if not self._applies(ctx):
            return
        if isinstance(node, ast.ImportFrom):
            if (node.module or "") != "time" or node.level:
                return
            for alias in node.names:
                if alias.name in self._BANNED:
                    yield self.diag(
                        node, ctx, f"import of time.{alias.name}", self._HINT
                    )
        elif isinstance(node, ast.Attribute):
            if (
                node.attr in self._BANNED
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
            ):
                yield self.diag(node, ctx, f"use of time.{node.attr}", self._HINT)


#: The default rule set, in reporting order.
CODE_RULES: tuple[CodeRule, ...] = (
    RngDiscipline(),
    MutableDefaultArgument(),
    ObjectiveFloatEquality(),
    BareExcept(),
    ExampleFacadeImports(),
    TimingDiscipline(),
)


class _Dispatcher(ast.NodeVisitor):
    def __init__(self, rules: Iterable[CodeRule], ctx: FileContext, report: LintReport):
        self._by_type: dict[type, list[CodeRule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)
        self._ctx = ctx
        self._report = report

    def visit(self, node: ast.AST) -> None:
        for rule in self._by_type.get(type(node), ()):
            for diagnostic in rule.check(node, self._ctx):
                ignored = self._ctx.ignored_rules_for_node(node)
                if ignored is None or diagnostic.rule in ignored:
                    self._report.waived.append(diagnostic)
                else:
                    self._report.add(diagnostic)
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", rules: Iterable[CodeRule] | None = None
) -> LintReport:
    """Lint one file's source text; ``path`` only labels the diagnostics."""
    report = LintReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                "C000",
                Severity.ERROR,
                f"{path}:{exc.lineno or 0}",
                f"file does not parse: {exc.msg}",
                "fix the syntax error before linting",
            )
        )
        return report
    ctx = FileContext(path, source.splitlines())
    _Dispatcher(rules if rules is not None else CODE_RULES, ctx, report).visit(tree)
    return report


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[CodeRule] | None = None,
    flow: bool = True,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Runs the per-file C-rules, then (unless ``flow=False``, or a custom
    ``rules`` subset was requested) the whole-project D-rules over the same
    file set, and returns one canonicalized report — deduplicated and
    sorted by (path, line, rule), so output order never depends on
    traversal order or which pass fired first.
    """
    report = LintReport()
    files = iter_python_files(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        report.extend(lint_source(source, str(file_path), rules=rules))
    if flow and rules is None:
        from repro.analysis.flow.project import load_project
        from repro.analysis.flow.rules import run_project_rules

        report.extend(run_project_rules(load_project(files)))
    return report.normalize()
