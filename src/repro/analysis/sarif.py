"""SARIF 2.1.0 emitter for lint reports.

SARIF (Static Analysis Results Interchange Format) is the interchange
format GitHub code scanning, VS Code, and most CI annotators consume; one
emitter here means every rule family — per-file C-rules and flow-aware
D-rules alike — shows up as inline PR annotations without per-tool glue.

The emitter is deliberately minimal-but-valid: one ``run``, a ``tool.driver``
carrying the full rule catalog (so viewers can show titles and default
levels), one ``result`` per diagnostic, and waived findings included as
suppressed results (``suppressions: [{kind: ...}]``) so an audit can still
see what was waived and why without the findings failing the scan.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Severity → SARIF result level.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning", Severity.INFO: "note"}


def _rule_catalog() -> list[dict]:
    """Every known rule (C- and D-series) as a SARIF reportingDescriptor."""
    from repro.analysis.code_lint import CODE_RULES
    from repro.analysis.flow.rules import FLOW_RULES

    catalog = []
    for rule in [*CODE_RULES, *FLOW_RULES]:
        catalog.append(
            {
                "id": rule.rule_id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title or rule.rule_id},
                "defaultConfiguration": {"level": "error"},
            }
        )
    catalog.sort(key=lambda entry: entry["id"])
    return catalog


def _location(diag: Diagnostic) -> list[dict]:
    """Physical location from a ``<path>:<line>`` diagnostic location.

    Model-lint style locations (``constraint foo``) carry no file; those
    results are emitted without a location, which SARIF permits.
    """
    path, sep, line_text = diag.location.rpartition(":")
    if not sep or not line_text.isdigit():
        return []
    return [
        {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": max(1, int(line_text))},
            }
        }
    ]


def _result(diag: Diagnostic, rule_index: dict[str, int], suppressed: bool) -> dict:
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    result: dict = {
        "ruleId": diag.rule,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
    }
    if diag.rule in rule_index:
        result["ruleIndex"] = rule_index[diag.rule]
    locations = _location(diag)
    if locations:
        result["locations"] = locations
    if suppressed:
        # Inline waivers and baseline entries both land here; GitHub hides
        # suppressed results from the alert list but keeps them auditable.
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def report_to_sarif(report: LintReport, tool_name: str = "repro-lint") -> dict:
    """Render ``report`` as a SARIF 2.1.0 log object (a plain dict)."""
    rules = _rule_catalog()
    rule_index = {entry["id"]: index for index, entry in enumerate(rules)}
    results = [_result(diag, rule_index, suppressed=False) for diag in report.diagnostics]
    results += [_result(diag, rule_index, suppressed=True) for diag in report.waived]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://github.com/repro/repro",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def report_to_sarif_json(report: LintReport, tool_name: str = "repro-lint") -> str:
    """The SARIF log serialized deterministically (sorted keys, 2-space)."""
    return json.dumps(report_to_sarif(report, tool_name), indent=2, sort_keys=True)
