"""Structured lint diagnostics shared by every analysis pass.

A :class:`Diagnostic` is one finding: a stable rule id (``M005``, ``C001``,
...), a :class:`Severity`, a human-readable location (``constraint
pow_3_5_b1`` or ``src/repro/foo.py:12``), the message, and a remediation
hint. Passes collect them into a :class:`LintReport`, which knows how to
render text, serialize to JSON, and subtract a checked-in waiver baseline.

Severity semantics follow compiler convention:

- ``ERROR`` — the model/code is wrong; solving or merging should stop;
- ``WARNING`` — almost certainly a mistake, but not provably fatal;
- ``INFO`` — notable but legitimate (e.g. a provably redundant constraint
  kept for readability).
"""

from __future__ import annotations

import ast
import enum
import json
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Inline waiver comment: ``# lint: ignore`` (all rules) or
#: ``# lint: ignore[C001,C003]`` (specific rules, comma-separated).
IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


def ignored_rules_for_lines(lines: list[str], start: int, end: int) -> set[str] | None:
    """Rules waived anywhere on lines ``start..end`` (1-based, inclusive).

    Returns None when a bare ``# lint: ignore`` (waive everything) appears;
    otherwise the union of rule ids named in ``ignore[...]`` brackets. A
    statement's waiver may sit on any of its source lines — the decorator
    line, the ``def`` line of a multi-line signature, or a continuation.
    """
    found: set[str] = set()
    for lineno in range(max(start, 1), min(end, len(lines)) + 1):
        match = IGNORE_RE.search(lines[lineno - 1])
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            return None
        found |= {r.strip() for r in rules.split(",") if r.strip()}
    return found


def node_waiver_span(node: ast.AST) -> tuple[int, int]:
    """The line range in which a waiver comment applies to ``node``.

    For decorated definitions the span starts at the first decorator and
    ends on the line before the body (so a waiver on the decorator or on
    any line of a multi-line signature counts). For other statements it is
    simply ``lineno..end_lineno``.
    """
    lineno = getattr(node, "lineno", 0)
    end = getattr(node, "end_lineno", None) or lineno
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        decorators = [d.lineno for d in node.decorator_list]
        start = min([lineno, *decorators]) if decorators else lineno
        if node.body:
            end = max(start, node.body[0].lineno - 1)
        return start, end
    return lineno, end


class Severity(enum.Enum):
    """How bad a finding is; orderable via :attr:`rank`."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``location`` is pass-specific: model lint uses ``variable <name>`` /
    ``constraint <name>``, code lint uses ``<path>:<line>``. ``hint`` tells
    the reader what to do about it.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity.value.upper():7s} {self.rule} [{self.location}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    waived: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: LintReport) -> None:
        self.diagnostics.extend(other.diagnostics)
        self.waived.extend(other.waived)

    # ---------------------------------------------------------------- queries
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            counts[diag.severity.value] += 1
        return counts

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # ----------------------------------------------------------- normalization
    def normalize(self) -> LintReport:
        """Canonicalize: drop exact duplicates, sort by (path, line, rule).

        This is the single ordering authority for every output format
        (text, JSON, SARIF): two runs over the same tree — regardless of
        file-discovery order or which pass emitted a finding first —
        produce byte-identical reports. Exact duplicates (same rule,
        location, message) can arise when the per-file and project passes
        agree on a finding; one copy is kept.
        """
        self.diagnostics = sorted(set(self.diagnostics), key=_canonical_key)
        self.waived = sorted(set(self.waived), key=_canonical_key)
        return self

    # -------------------------------------------------------------- rendering
    def render(self, title: str | None = None) -> str:
        """Multi-line text report in canonical (path, line, rule) order."""
        lines = []
        if title:
            lines.append(title)
        ordered = sorted(self.diagnostics, key=_canonical_key)
        lines.extend(diag.render() for diag in ordered)
        counts = self.counts()
        summary = ", ".join(f"{counts[k]} {k}(s)" for k in ("error", "warning", "info"))
        if self.waived:
            summary += f", {len(self.waived)} waived by baseline"
        lines.append(summary if self.diagnostics else f"clean ({summary})")
        return "\n".join(lines)

    def to_json(self, **extra) -> str:
        payload = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "waived": len(self.waived),
            "clean": not self.has_errors,
        }
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)

    # --------------------------------------------------------------- baseline
    def apply_baseline(self, waivers: list[dict]) -> list[dict]:
        """Move findings matched by ``waivers`` into :attr:`waived`.

        Each waiver is ``{"rule": ..., "file": ..., "line": ..., "reason":
        ...}``; ``line`` is optional (omit to waive the rule for the whole
        file). ``file`` matches any location whose path component ends with
        the given posix path, so baselines survive checkouts at different
        roots.

        Returns the *stale* waivers — entries that matched nothing. A stale
        entry means the underlying finding was fixed (or the code moved):
        the baseline should shrink, and the CLI reports them so it does.
        """
        kept, waived = [], []
        used = [False] * len(waivers)
        for diag in self.diagnostics:
            matched = False
            for index, waiver in enumerate(waivers):
                if _waiver_matches(waiver, diag):
                    used[index] = True
                    matched = True
            (waived if matched else kept).append(diag)
        self.diagnostics = kept
        self.waived.extend(waived)
        return [waiver for index, waiver in enumerate(waivers) if not used[index]]


def _canonical_key(diag: Diagnostic) -> tuple:
    """Sort key: (path, line, rule, message) — the one ordering authority.

    Locations are either ``<path>:<line>`` (code lint) or free text
    (``constraint foo`` from model lint); the latter sort by their full
    text with line 0.
    """
    path, sep, rest = diag.location.rpartition(":")
    line_text = rest.split(":", 1)[0]
    if sep and line_text.isdigit():
        return (path, int(line_text), diag.rule, diag.message)
    return (diag.location, 0, diag.rule, diag.message)


def _waiver_matches(waiver: dict, diag: Diagnostic) -> bool:
    if waiver.get("rule") not in (None, diag.rule):
        return False
    path, _, line = diag.location.partition(":")
    wanted = waiver.get("file")
    if wanted is not None:
        suffix = PurePosixPath(wanted)
        actual = PurePosixPath(path.replace("\\", "/"))
        if actual != suffix and not str(actual).endswith("/" + str(suffix)):
            return False
    if waiver.get("line") is not None:
        if not line or int(line.split(":")[0]) != int(waiver["line"]):
            return False
    return True


def load_baseline(path) -> list[dict]:
    """Read a waiver baseline file (``{"waivers": [...]}``); [] if empty."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    waivers = data.get("waivers", [])
    if not isinstance(waivers, list):
        raise ValueError(f"baseline {path}: 'waivers' must be a list")
    return waivers
