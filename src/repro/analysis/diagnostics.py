"""Structured lint diagnostics shared by every analysis pass.

A :class:`Diagnostic` is one finding: a stable rule id (``M005``, ``C001``,
...), a :class:`Severity`, a human-readable location (``constraint
pow_3_5_b1`` or ``src/repro/foo.py:12``), the message, and a remediation
hint. Passes collect them into a :class:`LintReport`, which knows how to
render text, serialize to JSON, and subtract a checked-in waiver baseline.

Severity semantics follow compiler convention:

- ``ERROR`` — the model/code is wrong; solving or merging should stop;
- ``WARNING`` — almost certainly a mistake, but not provably fatal;
- ``INFO`` — notable but legitimate (e.g. a provably redundant constraint
  kept for readability).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import PurePosixPath


class Severity(enum.Enum):
    """How bad a finding is; orderable via :attr:`rank`."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``location`` is pass-specific: model lint uses ``variable <name>`` /
    ``constraint <name>``, code lint uses ``<path>:<line>``. ``hint`` tells
    the reader what to do about it.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity.value.upper():7s} {self.rule} [{self.location}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    waived: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: LintReport) -> None:
        self.diagnostics.extend(other.diagnostics)
        self.waived.extend(other.waived)

    # ---------------------------------------------------------------- queries
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            counts[diag.severity.value] += 1
        return counts

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -------------------------------------------------------------- rendering
    def render(self, title: str | None = None) -> str:
        """Multi-line text report, most severe findings first."""
        lines = []
        if title:
            lines.append(title)
        ordered = sorted(
            self.diagnostics, key=lambda d: (-d.severity.rank, d.rule, d.location)
        )
        lines.extend(diag.render() for diag in ordered)
        counts = self.counts()
        summary = ", ".join(f"{counts[k]} {k}(s)" for k in ("error", "warning", "info"))
        if self.waived:
            summary += f", {len(self.waived)} waived by baseline"
        lines.append(summary if self.diagnostics else f"clean ({summary})")
        return "\n".join(lines)

    def to_json(self, **extra) -> str:
        payload = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "waived": len(self.waived),
            "clean": not self.has_errors,
        }
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)

    # --------------------------------------------------------------- baseline
    def apply_baseline(self, waivers: list[dict]) -> None:
        """Move findings matched by ``waivers`` into :attr:`waived`.

        Each waiver is ``{"rule": ..., "file": ..., "line": ..., "reason":
        ...}``; ``line`` is optional (omit to waive the rule for the whole
        file). ``file`` matches any location whose path component ends with
        the given posix path, so baselines survive checkouts at different
        roots.
        """
        kept, waived = [], []
        for diag in self.diagnostics:
            if any(_waiver_matches(w, diag) for w in waivers):
                waived.append(diag)
            else:
                kept.append(diag)
        self.diagnostics = kept
        self.waived.extend(waived)


def _waiver_matches(waiver: dict, diag: Diagnostic) -> bool:
    if waiver.get("rule") not in (None, diag.rule):
        return False
    path, _, line = diag.location.partition(":")
    wanted = waiver.get("file")
    if wanted is not None:
        suffix = PurePosixPath(wanted)
        actual = PurePosixPath(path.replace("\\", "/"))
        if actual != suffix and not str(actual).endswith("/" + str(suffix)):
            return False
    if waiver.get("line") is not None:
        if not line or int(line.split(":")[0]) != int(waiver["line"]):
            return False
    return True


def load_baseline(path) -> list[dict]:
    """Read a waiver baseline file (``{"waivers": [...]}``); [] if empty."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    waivers = data.get("waivers", [])
    if not isinstance(waivers, list):
        raise ValueError(f"baseline {path}: 'waivers' must be a list")
    return waivers
