"""Static analysis of ILP models — catch bad formulations *before* solving.

A hand-built formulation that is subtly wrong rarely crashes: an unbounded
integer variable sends branch & bound into an infinite dive, a variable that
fell out of every constraint silently stops constraining the answer, and a
forced-pair equality chain colliding with a forbidden-pair inequality turns
"optimal" into "vacuously infeasible" three layers away from the bug. Every
rule here is a pure structural check over the model — no LP is solved.

Rules operate on a :class:`ModelView`, a normalized read-only projection
that both :class:`repro.ilp.Model` and :class:`repro.ilp.model.MatrixForm`
convert into, so ``lint_model`` accepts either. Each rule is one class;
registering a new rule means subclassing :class:`ModelRule` and adding it to
``MODEL_RULES``.

Rule index (see DESIGN.md appendix for rationale):

====  ========  ===========================================================
id    severity  finding
====  ========  ===========================================================
M001  warning   integer variable with an infinite bound
M002  warning   variable in no constraint and with no objective coefficient
M003  warn/err  constraint with no variables (trivially true / false)
M004  warning   duplicate constraint rows
M005  error     constraint infeasible under interval bound propagation
M006  info      constraint redundant under interval bound propagation
M007  error     forced-pair equality chain contradicts forbidden-pair row
M008  warning   coefficient magnitude spread beyond stability threshold
====  ========  ===========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.ilp.expr import EQ, GE, LE
from repro.ilp.model import MatrixForm, Model

_INF = math.inf

#: Ratio of largest to smallest nonzero |coefficient| above which M008 fires.
DEFAULT_COEFF_SPREAD = 1e8

#: Slack used when deciding interval-propagation verdicts.
PROPAGATION_TOL = 1e-9


# --------------------------------------------------------------------- views
@dataclass(frozen=True)
class VarView:
    """Normalized variable: name, bounds, integrality."""

    index: int
    name: str
    lb: float
    ub: float
    is_integer: bool

    @property
    def is_binary(self) -> bool:
        return self.is_integer and self.lb >= 0.0 and self.ub <= 1.0


@dataclass(frozen=True)
class RowView:
    """Normalized constraint row: sparse terms over variable indices."""

    index: int
    name: str
    terms: dict[int, float]
    sense: str
    rhs: float

    @property
    def label(self) -> str:
        return f"constraint {self.name}"


@dataclass
class ModelView:
    """Read-only projection of a model that every rule consumes."""

    name: str
    variables: list[VarView]
    rows: list[RowView]
    objective: dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_model(cls, model: Model) -> ModelView:
        variables = [
            VarView(v.index, v.name, v.lb, v.ub, v.is_integer) for v in model.variables
        ]
        rows = []
        for i, constr in enumerate(model.constraints):
            terms = {
                var.index: coef for var, coef in constr.terms.items() if coef != 0.0
            }
            rows.append(RowView(i, constr.name or f"#{i}", terms, constr.sense, constr.rhs))
        objective = {
            var.index: coef for var, coef in model.objective.terms.items() if coef != 0.0
        }
        return cls(model.name, variables, rows, objective)

    @classmethod
    def from_matrix(cls, form: MatrixForm) -> ModelView:
        variables = [
            VarView(j, f"x{j}", float(form.lb[j]), float(form.ub[j]), bool(form.integer_mask[j]))
            for j in range(form.num_vars)
        ]
        rows = []
        for i in range(form.a_ub.shape[0]):
            terms = {j: float(c) for j, c in enumerate(form.a_ub[i]) if c != 0.0}
            rows.append(RowView(len(rows), f"ub[{i}]", terms, LE, float(form.b_ub[i])))
        for i in range(form.a_eq.shape[0]):
            terms = {j: float(c) for j, c in enumerate(form.a_eq[i]) if c != 0.0}
            rows.append(RowView(len(rows), f"eq[{i}]", terms, EQ, float(form.b_eq[i])))
        objective = {j: float(c) for j, c in enumerate(form.c) if c != 0.0}
        return cls("matrix", variables, rows, objective)

    def var_name(self, index: int) -> str:
        return self.variables[index].name


def _row_interval(view: ModelView, row: RowView) -> tuple[float, float]:
    """[min, max] achievable value of the row's LHS under variable bounds."""
    lo = hi = 0.0
    for j, coef in row.terms.items():
        var = view.variables[j]
        lo += coef * var.lb if coef > 0 else coef * var.ub
        hi += coef * var.ub if coef > 0 else coef * var.lb
    return lo, hi


# --------------------------------------------------------------------- rules
class ModelRule:
    """One structural check. Subclass, set the class attributes, implement
    :meth:`check`, and append an instance to ``MODEL_RULES``."""

    rule_id: str = "M000"
    title: str = ""

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(self, severity: Severity, location: str, message: str, hint: str = "") -> Diagnostic:
        return Diagnostic(self.rule_id, severity, location, message, hint)


class UnboundedIntegerVariable(ModelRule):
    rule_id = "M001"
    title = "integer variable with an infinite bound"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        for var in view.variables:
            if not var.is_integer:
                continue
            sides = [s for s, b in (("lower", var.lb), ("upper", var.ub)) if math.isinf(b)]
            if sides:
                yield self.diag(
                    Severity.WARNING,
                    f"variable {var.name}",
                    f"integer variable has an infinite {' and '.join(sides)} bound",
                    "branch & bound may dive forever on an unbounded integer "
                    "domain; give the variable explicit finite bounds",
                )


class UnusedVariable(ModelRule):
    rule_id = "M002"
    title = "variable in no constraint and with no objective coefficient"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        used = set(view.objective)
        for row in view.rows:
            used.update(row.terms)
        for var in view.variables:
            if var.index not in used:
                yield self.diag(
                    Severity.WARNING,
                    f"variable {var.name}",
                    "variable appears in no constraint and carries no "
                    "objective coefficient; it cannot affect the solution",
                    "remove it, or check whether a constraint was meant to "
                    "reference it (a typo here is invisible at solve time)",
                )


class ConstantConstraint(ModelRule):
    rule_id = "M003"
    title = "constraint with no variables"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        for row in view.rows:
            if row.terms:
                continue
            holds = {
                LE: 0.0 <= row.rhs + PROPAGATION_TOL,
                GE: 0.0 >= row.rhs - PROPAGATION_TOL,
                EQ: abs(row.rhs) <= PROPAGATION_TOL,
            }[row.sense]
            if holds:
                yield self.diag(
                    Severity.WARNING,
                    row.label,
                    "constraint contains no variables and is trivially true",
                    "all coefficients cancelled — likely `x - x` or an "
                    "empty quicksum; drop the constraint or fix the terms",
                )
            else:
                yield self.diag(
                    Severity.ERROR,
                    row.label,
                    f"constraint contains no variables and reduces to the "
                    f"false statement 0 {row.sense} {row.rhs:g}",
                    "the model is infeasible before solving; a term set "
                    "cancelled to zero or the RHS has the wrong sign",
                )


class DuplicateConstraint(ModelRule):
    rule_id = "M004"
    title = "duplicate constraint rows"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        seen: dict[tuple, RowView] = {}
        for row in view.rows:
            key = (row.sense, row.rhs, frozenset(row.terms.items()))
            first = seen.get(key)
            if first is None:
                seen[key] = row
            elif row.terms:  # empty duplicates are M003's business
                yield self.diag(
                    Severity.WARNING,
                    row.label,
                    f"row is an exact duplicate of constraint {first.name}",
                    "duplicate rows bloat the LP basis and usually signal a "
                    "double-registered constraint family",
                )


class InfeasibleByPropagation(ModelRule):
    rule_id = "M005"
    title = "constraint infeasible under interval bound propagation"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        for row in view.rows:
            if not row.terms:
                continue
            lo, hi = _row_interval(view, row)
            dead = (
                (row.sense == LE and lo > row.rhs + PROPAGATION_TOL)
                or (row.sense == GE and hi < row.rhs - PROPAGATION_TOL)
                or (row.sense == EQ and (lo > row.rhs + PROPAGATION_TOL or hi < row.rhs - PROPAGATION_TOL))
            )
            if dead:
                yield self.diag(
                    Severity.ERROR,
                    row.label,
                    f"unsatisfiable for every point in the variable bounds: "
                    f"LHS ranges over [{lo:g}, {hi:g}] but must be "
                    f"{row.sense} {row.rhs:g}",
                    "the model is infeasible before solving; check bound "
                    "directions and the RHS sign",
                )


class RedundantByPropagation(ModelRule):
    rule_id = "M006"
    title = "constraint redundant under interval bound propagation"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        for row in view.rows:
            if not row.terms:
                continue
            lo, hi = _row_interval(view, row)
            always = (
                (row.sense == LE and hi <= row.rhs + PROPAGATION_TOL)
                or (row.sense == GE and lo >= row.rhs - PROPAGATION_TOL)
                or (row.sense == EQ and abs(hi - lo) <= PROPAGATION_TOL and abs(lo - row.rhs) <= PROPAGATION_TOL)
            )
            if always:
                yield self.diag(
                    Severity.INFO,
                    row.label,
                    f"satisfied by every point in the variable bounds "
                    f"(LHS range [{lo:g}, {hi:g}] vs {row.sense} {row.rhs:g}); "
                    "it can never bind",
                    "harmless but dead weight; either drop it or tighten it "
                    "if it was meant to constrain",
                )


class PairContradiction(ModelRule):
    """The paper's two constraint encodings colliding.

    Power forces ``x[a,j] == x[b,j]`` (equality chain: a and b share every
    bus decision); place-and-route forbids ``x[a,j] + x[b,j] <= 1``. Both at
    once fix the pair to 0 on that bus, and when this happens on every bus a
    core's assignment row ``sum_j x[a,j] == 1`` becomes unsatisfiable. The
    rule detects the collision structurally: union equality-linked binaries,
    then look for at-most-one rows inside one equality class, then for
    partition rows whose variables are all forced to zero.
    """

    rule_id = "M007"
    title = "forced-pair equality chain contradicts forbidden-pair inequality"

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        parent = list(range(len(view.variables)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        # Pass 1: equality links x == y (any scaling of x - y == 0).
        for row in view.rows:
            if row.sense == EQ and len(row.terms) == 2 and abs(row.rhs) <= PROPAGATION_TOL:
                (a, ca), (b, cb) = row.terms.items()
                if abs(ca + cb) <= PROPAGATION_TOL:
                    union(a, b)

        # Direct zero-fixes: x == 0 rows and ub == 0 bounds.
        fixed_zero: set[int] = set()
        for row in view.rows:
            if row.sense == EQ and len(row.terms) == 1 and abs(row.rhs) <= PROPAGATION_TOL:
                fixed_zero.add(next(iter(row.terms)))
        for var in view.variables:
            if var.lb == 0.0 and var.ub == 0.0:
                fixed_zero.add(var.index)

        # Pass 2: at-most-one rows whose two members sit in one equality
        # class — the collision itself. Both variables become 0.
        zero_classes: set[int] = {find(i) for i in fixed_zero}
        for row in view.rows:
            if row.sense != LE or len(row.terms) != 2:
                continue
            (a, ca), (b, cb) = row.terms.items()
            if ca <= 0 or abs(ca - cb) > PROPAGATION_TOL:
                continue
            if abs(row.rhs - ca) > PROPAGATION_TOL:  # normalized: x + y <= 1
                continue
            if not (view.variables[a].is_binary and view.variables[b].is_binary):
                continue
            if find(a) == find(b):
                zero_classes.add(find(a))
                yield self.diag(
                    Severity.ERROR,
                    row.label,
                    f"variables {view.var_name(a)} and {view.var_name(b)} are "
                    "chained equal by equality constraints but this row "
                    "forbids them from both being 1; together they force "
                    "both to 0",
                    "a forced (power) pair and a forbidden (place-and-route) "
                    "pair overlap; the instance budgets contradict — check "
                    "DesignProblem.contradictions()",
                )

        # Pass 3: partition rows fully inside zero-forced classes.
        for row in view.rows:
            if row.sense != EQ or not row.terms or abs(row.rhs - 1.0) > PROPAGATION_TOL:
                continue
            if any(abs(c - 1.0) > PROPAGATION_TOL for c in row.terms.values()):
                continue
            if all(view.variables[j].is_binary for j in row.terms) and all(
                find(j) in zero_classes for j in row.terms
            ):
                members = ", ".join(view.var_name(j) for j in sorted(row.terms))
                yield self.diag(
                    Severity.ERROR,
                    row.label,
                    f"every variable of this partition row ({members}) is "
                    "forced to 0 by equality chains colliding with "
                    "at-most-one rows; the row cannot reach 1",
                    "the constraint families jointly admit no assignment; "
                    "relax the power or the layout budget",
                )


class CoefficientSpread(ModelRule):
    rule_id = "M008"
    title = "coefficient magnitude spread beyond stability threshold"

    def __init__(self, threshold: float = DEFAULT_COEFF_SPREAD):
        self.threshold = threshold

    def check(self, view: ModelView) -> Iterable[Diagnostic]:
        smallest = largest = None
        where_small = where_large = ""
        for row in view.rows:
            for j, coef in row.terms.items():
                mag = abs(coef)
                if smallest is None or mag < smallest:
                    smallest, where_small = mag, f"{row.name}:{view.var_name(j)}"
                if largest is None or mag > largest:
                    largest, where_large = mag, f"{row.name}:{view.var_name(j)}"
        if smallest and largest and largest / smallest > self.threshold:
            yield self.diag(
                Severity.WARNING,
                "constraint matrix",
                f"coefficient magnitudes span {largest / smallest:.1e} "
                f"(smallest {smallest:g} at {where_small}, largest "
                f"{largest:g} at {where_large}), beyond the "
                f"{self.threshold:.0e} stability threshold",
                "rescale units (e.g. cycles -> kilocycles) so the simplex "
                "basis stays well-conditioned",
            )


#: The default rule set, in reporting order.
MODEL_RULES: tuple[ModelRule, ...] = (
    UnboundedIntegerVariable(),
    UnusedVariable(),
    ConstantConstraint(),
    DuplicateConstraint(),
    InfeasibleByPropagation(),
    RedundantByPropagation(),
    PairContradiction(),
    CoefficientSpread(),
)


def lint_model(
    target: Union[Model, MatrixForm, ModelView],
    rules: Iterable[ModelRule] | None = None,
) -> LintReport:
    """Run every model-lint rule over a model, matrix export, or view."""
    if isinstance(target, Model):
        view = ModelView.from_model(target)
    elif isinstance(target, MatrixForm):
        view = ModelView.from_matrix(target)
    else:
        view = target
    report = LintReport()
    for rule in rules if rules is not None else MODEL_RULES:
        for diagnostic in rule.check(view):
            report.add(diagnostic)
    return report
