"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``describe`` — print an SOC's inventory (builtin name or ``.soc`` file);
- ``design`` — solve one constrained instance and print the full report
  (``--json`` emits the result with full solver telemetry);
- ``sweep`` — find the best width distribution for a (W, NB) pin budget;
- ``minwidth`` — smallest TAM width meeting a testing-time budget;
- ``buscount`` — testing time per bus count at a fixed total width;
- ``lint`` — static analysis: ``lint model`` checks one instance's ILP
  formulation without solving, ``lint code`` enforces repo invariants over
  the source tree (both support ``--json``; exit 1 on error findings);
- ``experiments`` — run the evaluation harnesses (same as
  ``python -m repro.experiments``);
- ``serve`` — run the HTTP/JSON design service (async job queue over the
  same solve runtime; see :mod:`repro.service`).

The four solver commands all build one :class:`~repro.api.SolveRequest`
from their flags and execute it — the CLI, the library, and the service
share that single construction path, so a request fingerprints (and
caches) identically no matter which front-end produced it.

The solver commands share the runtime flags ``--jobs N`` (parallel sweep
fan-out), ``--cache [DIR]`` (memoize solved instances, in memory or on
disk), and ``--no-cache`` — plus the anytime-solve flags ``--deadline`` /
``--node-budget`` / ``--retries`` / ``--no-fallback`` that build a
:class:`~repro.api.SolvePolicy`, and the bnb solver knobs
``--no-presolve`` / ``--branching`` / ``--cuts`` / ``--no-cuts`` /
``--cut-rounds`` / ``--root-presolve`` / ``--no-root-presolve`` /
``--warm-lps`` / ``--no-warm-lps`` that ride its structured
:class:`~repro.api.SolverOptions` block (branch-and-cut, root model
presolve, and warm-started node LPs are all on by default; the
``--no-*`` forms disable them). ``design --trace [FILE]``
additionally records a span trace and prints its flame summary.

The SOC argument accepts the builtin names ``S1``/``S2``/``S3``,
``SYN<n>[:seed]`` for a synthetic system, or a path to a ``.soc`` file.

Everything here goes through :mod:`repro.api` — the CLI is a consumer of
the public facade, not of the internal layering.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from repro.api import (
    DEFAULT_CACHE_DIR,
    CutPolicy,
    DesignProblem,
    PortfolioPolicy,
    ReproError,
    Soc,
    SolutionCache,
    SolvePolicy,
    SolveRequest,
    SolverOptions,
    TamArchitecture,
    design_report,
    format_table,
    grid_place,
    resolve_soc,
    trace_solve,
    use_cache,
)

__all__ = ["main", "build_parser", "resolve_soc"]


def _parse_widths(text: str) -> TamArchitecture:
    return TamArchitecture([int(w) for w in text.split(",") if w.strip()])


def _add_common_constraints(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timing", default="serial", choices=["fixed", "serial", "flexible"],
                        help="core-to-bus test time model (default: serial)")
    parser.add_argument("--power-budget", type=float, default=None, metavar="MW",
                        help="maximum concurrent-pair test power")
    parser.add_argument("--max-distance", type=float, default=None, metavar="MM",
                        help="layout budget: cores farther apart may not share a bus "
                             "(uses the deterministic grid floorplan)")
    parser.add_argument("--backend", default="bnb", choices=["bnb", "scipy"],
                        help="exact solver backend (default: our branch & bound)")


def _add_solver_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--branching", default=None,
                        choices=["pseudocost", "most_fractional", "first"],
                        help="B&B branching rule (default: pseudocost; bnb backend only)")
    parser.add_argument("--presolve", action=argparse.BooleanOptionalAction, default=None,
                        help="node presolve: bound propagation + reduced-cost fixing "
                             "(default: on; --no-presolve restores the plain search; "
                             "bnb backend only)")
    parser.add_argument("--cuts", action=argparse.BooleanOptionalAction, default=None,
                        help="branch-and-cut separation: conflict-graph clique cuts + "
                             "lifted cover cuts (default: on; --no-cuts disables; "
                             "bnb backend only)")
    parser.add_argument("--cut-rounds", type=int, default=None, metavar="N",
                        help="separation rounds at the root node (implies --cuts; "
                             "bnb backend only)")
    parser.add_argument("--root-presolve", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="root model presolve: dual fixing, singleton "
                             "substitution, coefficient tightening, row cleanup "
                             "(default: on; --no-root-presolve searches the "
                             "original model; bnb backend only)")
    parser.add_argument("--warm-lps", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="warm-start node LPs from the parent basis via the "
                             "revised dual simplex (default: on; --no-warm-lps "
                             "cold-solves every node; bnb backend only)")
    parser.add_argument("--portfolio", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="race exact B&B against the lpt/sa heuristic rungs "
                             "under the shared budget, cross-feeding the best "
                             "heuristic incumbent as the B&B starting cutoff "
                             "(bnb backend only)")
    parser.add_argument("--portfolio-entrants", default=None, metavar="A,B,...",
                        help="portfolio entrants, comma-separated out of "
                             "lpt/sa/bnb (implies --portfolio; default lpt,sa,bnb)")
    parser.add_argument("--portfolio-seed", type=int, default=None, metavar="N",
                        help="seed for the stochastic portfolio entrants "
                             "(implies --portfolio)")


def _solver_block_from_args(args) -> SolverOptions | None:
    """The structured SolverOptions block the flags explicitly set.

    Solver knobs ride on ``SolvePolicy.solver`` — not on flat request
    options — so CLI, library, and service requests fingerprint
    identically for identical settings.
    """
    from repro.api import PresolvePolicy, ValidationError

    if getattr(args, "cuts", None) is False and getattr(args, "cut_rounds", None):
        raise ValidationError("--no-cuts and --cut-rounds contradict each other")
    cuts = None
    if getattr(args, "cuts", None) is False:
        cuts = CutPolicy.disabled()
    elif getattr(args, "cut_rounds", None) is not None:
        cuts = CutPolicy(rounds=args.cut_rounds)
    elif getattr(args, "cuts", None) is True:
        cuts = CutPolicy()
    root_presolve = None
    if getattr(args, "root_presolve", None) is False:
        root_presolve = PresolvePolicy.disabled()
    elif getattr(args, "root_presolve", None) is True:
        root_presolve = PresolvePolicy()
    portfolio = None
    entrants = getattr(args, "portfolio_entrants", None)
    seed = getattr(args, "portfolio_seed", None)
    if getattr(args, "portfolio", None) is False:
        if entrants is not None or seed is not None:
            raise ValidationError(
                "--no-portfolio contradicts --portfolio-entrants/--portfolio-seed"
            )
        portfolio = PortfolioPolicy.disabled()
    elif getattr(args, "portfolio", None) or entrants is not None or seed is not None:
        overrides = {"jobs": max(1, getattr(args, "jobs", 1) or 1)}
        if entrants is not None:
            overrides["entrants"] = tuple(
                name.strip() for name in entrants.split(",") if name.strip()
            )
        if seed is not None:
            overrides["seed"] = seed
        portfolio = PortfolioPolicy(**overrides)
    block = {}
    if getattr(args, "branching", None) is not None:
        block["branching"] = args.branching
    if getattr(args, "presolve", None) is not None:
        block["presolve"] = args.presolve
    if cuts is not None:
        block["cuts"] = cuts
    if root_presolve is not None:
        block["root_presolve"] = root_presolve
    if getattr(args, "warm_lps", None) is not None:
        block["warm_start"] = args.warm_lps
    if portfolio is not None:
        block["portfolio"] = portfolio
    if not block:
        return None
    if args.backend != "bnb":
        flags = {"branching": "--branching", "presolve": "--presolve",
                 "cuts": "--cuts/--no-cuts/--cut-rounds",
                 "root_presolve": "--root-presolve/--no-root-presolve",
                 "warm_start": "--warm-lps/--no-warm-lps",
                 "portfolio": "--portfolio/--portfolio-entrants/--portfolio-seed"}
        listed = "/".join(flags[key] for key in block)
        raise ValidationError(
            f"{listed} only apply to the bnb backend, not {args.backend!r}"
        )
    return SolverOptions(**block)


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep fan-out (default: 1, serial)")
    parser.add_argument("--cache", nargs="?", const="", default=None, metavar="DIR",
                        help="memoize solved instances; with DIR, persist them on disk "
                             f"(bare --cache stores under {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the solve cache entirely")


def _add_policy_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--deadline", type=float, default=None, metavar="SEC",
                        help="wall-clock budget per solve; on exhaustion the best "
                             "incumbent (or a heuristic fallback) is returned")
    parser.add_argument("--node-budget", type=int, default=None, metavar="N",
                        help="B&B node budget per solve (anytime mode, like --deadline)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry transient backend failures up to N times")
    parser.add_argument("--no-fallback", action="store_true",
                        help="fail instead of degrading to heuristics when a "
                             "budget is exhausted without an incumbent")


def _policy_from_args(args) -> SolvePolicy | None:
    """Build the SolvePolicy the flags describe (None = exact, uncapped)."""
    solver = _solver_block_from_args(args)
    if (args.deadline is None and args.node_budget is None
            and not args.retries and not args.no_fallback and solver is None):
        return None
    return SolvePolicy(
        deadline=args.deadline,
        node_budget=args.node_budget,
        max_retries=args.retries,
        fallback=() if args.no_fallback else SolvePolicy().fallback,
        solver=solver,
    )


def _runtime_scope(args):
    """Context manager installing the solve cache the flags ask for."""
    if getattr(args, "no_cache", False) or getattr(args, "cache", None) is None:
        return contextlib.nullcontext()
    directory = args.cache if args.cache else DEFAULT_CACHE_DIR
    return use_cache(SolutionCache(directory=directory))


def _problem_from_args(soc: Soc, arch: TamArchitecture, args) -> DesignProblem:
    floorplan = grid_place(soc) if args.max_distance is not None else None
    return DesignProblem(
        soc=soc,
        arch=arch,
        timing=args.timing,
        power_budget=args.power_budget,
        floorplan=floorplan,
        max_pair_distance=args.max_distance,
    )


def _request_from_args(kind: str, args) -> SolveRequest:
    """The unified :class:`SolveRequest` the parsed solver flags describe."""
    widths = None
    if getattr(args, "widths", None) is not None:
        widths = tuple(int(w) for w in args.widths.split(",") if w.strip())
    return SolveRequest(
        kind=kind,
        soc=args.soc,
        widths=widths,
        total_width=getattr(args, "total_width", None),
        num_buses=getattr(args, "buses", None),
        time_budget=getattr(args, "time_budget", None),
        max_buses=getattr(args, "max_buses", None),
        timing=args.timing,
        power_budget=args.power_budget,
        max_pair_distance=args.max_distance,
        backend=args.backend,
        policy=_policy_from_args(args),
        jobs=getattr(args, "jobs", 1),
    )


def cmd_describe(args) -> int:
    soc = resolve_soc(args.soc)
    print(soc.describe())
    return 0


def cmd_design(args) -> int:
    request = _request_from_args("design", args)
    tracer = None
    with _runtime_scope(args):
        if args.trace is not None:
            with trace_solve() as tracer:
                # One root span over the whole design: per-phase self times
                # then partition the traced wall time exactly.
                with tracer.span("design", soc=request.soc):
                    result = request.run()
        else:
            result = request.run()
    trace_payload = tracer.to_json() if tracer is not None else None
    if tracer is not None and args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump(trace_payload, fh, indent=2)
    if args.json:
        payload = request.result_payload(result)
        if request.policy is not None:
            payload["policy"] = request.policy.as_dict()
        if trace_payload is not None:
            payload["trace"] = trace_payload
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(design_report(result))
        if tracer is not None:
            print()
            print(tracer.flame())
            if args.trace:
                print(f"trace JSON written to {args.trace}")
    return 0


def cmd_sweep(args) -> int:
    request = _request_from_args("sweep", args)
    with _runtime_scope(args):
        sweep = request.run()
    rows = [
        ["+".join(str(w) for w in arch.widths), makespan]
        for arch, makespan in sweep.per_architecture
    ]
    print(format_table(["widths", "T* (cycles)"], rows,
                       title=f"{sweep.soc_name}: W={args.total_width} over {args.buses} buses"))
    if sweep.best is None:
        print("\nno feasible width distribution")
        return 1
    print(f"\nbest: {sweep.best.arch} at {sweep.best.makespan:.0f} cycles "
          f"({sweep.evaluated} distributions, {sweep.infeasible} infeasible, "
          f"{sweep.wall_time:.1f}s; {sweep.telemetry.render()})")
    print(design_report(sweep.best))
    return 0


def cmd_minwidth(args) -> int:
    request = _request_from_args("min_width", args)
    with _runtime_scope(args):
        result = request.run()
    print(result.describe())
    print(format_table(
        ["probed W", "T* (cycles)"],
        [[w, t] for w, t in result.evaluated_widths],
        title="binary search trace",
    ))
    return 0


def cmd_buscount(args) -> int:
    request = _request_from_args("bus_count", args)
    with _runtime_scope(args):
        points = request.run()
    rows = [
        [p.num_buses, p.makespan, "+".join(str(w) for w in p.arch_widths) if p.arch_widths else None]
        for p in points
    ]
    print(format_table(["NB", "T* (cycles)", "best widths"], rows,
                       title=f"{request.soc.upper()}: bus-count exploration at W={args.total_width}"))
    return 0


def cmd_lint_model(args) -> int:
    from repro.api import InfeasibleError, build_assignment_ilp, lint_model

    soc = resolve_soc(args.soc)
    problem = _problem_from_args(soc, _parse_widths(args.widths), args)
    report = problem.lint()
    model_summary = None
    try:
        formulation = build_assignment_ilp(problem)
    except InfeasibleError:
        # Unbuildable instances (e.g. a width-infeasible core) are already
        # reported by the problem-level pass; there is no model to lint.
        pass
    else:
        model_summary = formulation.model.summary()
        report.extend(lint_model(formulation.model))
    if args.json:
        print(report.to_json(target="model", instance=problem.constraint_summary(),
                             model=model_summary))
    else:
        print(report.render(f"lint model: {problem.constraint_summary()}"))
    return 1 if report.has_errors else 0


def cmd_lint_code(args) -> int:
    import pathlib

    from repro.api import lint_paths, load_baseline

    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
    else:
        # Default to the installed package tree so the command works from
        # any working directory.
        paths = [pathlib.Path(__file__).resolve().parent]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro lint code: no such path: {p}", file=sys.stderr)
        return 2
    report = lint_paths(paths)
    baseline_path = pathlib.Path(args.baseline) if args.baseline else _find_baseline(paths)
    stale: list[dict] = []
    if baseline_path is not None and baseline_path.exists():
        waivers = load_baseline(baseline_path)
        flow_waivers = [w for w in waivers if str(w.get("rule", "")).startswith("D")]
        if flow_waivers:
            # Flow findings assert runtime soundness (cache keys, pool
            # purity, determinism, facade integrity): they are fixed, not
            # baselined. Inline `# lint: ignore[D00x]` remains possible but
            # sits next to the code where review can see it.
            for waiver in flow_waivers:
                print(
                    f"repro lint code: baseline may not waive flow rule "
                    f"{waiver.get('rule')} ({waiver.get('file', '?')}): fix the "
                    "finding or use an inline waiver",
                    file=sys.stderr,
                )
            return 2
        stale = report.apply_baseline(waivers)
    fmt = getattr(args, "format", None) or ("json" if args.json else "text")
    if fmt == "sarif":
        from repro.analysis.sarif import report_to_sarif_json

        text = report_to_sarif_json(report)
    elif fmt == "json":
        text = report.to_json(
            target="code",
            files=[str(p) for p in paths],
            baseline=str(baseline_path) if baseline_path else None,
            stale_waivers=stale,
        )
    else:
        scanned = ", ".join(str(p) for p in paths)
        text = report.render(f"lint code: {scanned}")
    output = getattr(args, "output", None)
    if output:
        pathlib.Path(output).write_text(text + "\n", encoding="utf-8")
        print(f"repro lint code: wrote {fmt} report to {output}")
    else:
        print(text)
    for waiver in stale:
        print(
            f"repro lint code: stale baseline waiver (matched nothing): "
            f"{waiver.get('rule', '*')} {waiver.get('file', '*')}"
            + (f":{waiver['line']}" if waiver.get("line") is not None else "")
            + " — remove it from the baseline",
            file=sys.stderr,
        )
    return 1 if report.has_errors else 0


def _find_baseline(paths) -> "object | None":
    """Locate ``.lint-baseline.json`` beside/above the scanned paths or cwd."""
    import pathlib

    candidates = [pathlib.Path.cwd()]
    candidates.extend(p if p.is_dir() else p.parent for p in paths)
    for start in candidates:
        for directory in [start, *start.resolve().parents]:
            candidate = directory / ".lint-baseline.json"
            if candidate.exists():
                return candidate
    return None


def cmd_serve(args) -> int:
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=None if args.no_cache else (args.cache if args.cache else None),
        state_dir=args.state_dir,
        port_file=args.port_file,
    )


def cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded = [args.id, "--jobs", str(args.jobs)]
    if args.no_cache:
        forwarded.append("--no-cache")
    elif args.cache is not None:
        forwarded.append("--cache")
        if args.cache:
            forwarded.append(args.cache)
    return experiments_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOC test access architecture design (Chakrabarty, DAC 2000 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print an SOC inventory")
    p.add_argument("soc", help="S1 | S2 | S3 | d695 | SYN<n>[:seed] | path/to/file.soc")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("design", help="solve one instance and print the report")
    p.add_argument("soc")
    p.add_argument("--widths", required=True, metavar="W1,W2,...",
                   help="bus widths, e.g. 16,16,32")
    p.add_argument("--json", action="store_true",
                   help="emit the design + solver telemetry as JSON")
    p.add_argument("--trace", nargs="?", const="", default=None, metavar="FILE",
                   help="trace the solve: print a flame summary (and include "
                        "spans in --json); with FILE, also write the span JSON")
    _add_common_constraints(p)
    _add_solver_flags(p)
    _add_runtime_flags(p)
    _add_policy_flags(p)
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("sweep", help="best width distribution for a pin budget")
    p.add_argument("soc")
    p.add_argument("--total-width", type=int, required=True)
    p.add_argument("--buses", type=int, required=True)
    _add_common_constraints(p)
    _add_solver_flags(p)
    _add_runtime_flags(p)
    _add_policy_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("minwidth", help="smallest TAM width meeting a time budget")
    p.add_argument("soc")
    p.add_argument("--buses", type=int, required=True)
    p.add_argument("--time-budget", type=float, required=True, metavar="CYCLES")
    _add_common_constraints(p)
    _add_solver_flags(p)
    _add_runtime_flags(p)
    _add_policy_flags(p)
    p.set_defaults(func=cmd_minwidth)

    p = sub.add_parser("buscount", help="testing time per bus count at fixed W")
    p.add_argument("soc")
    p.add_argument("--total-width", type=int, required=True)
    p.add_argument("--max-buses", type=int, default=4)
    _add_common_constraints(p)
    _add_solver_flags(p)
    _add_runtime_flags(p)
    _add_policy_flags(p)
    p.set_defaults(func=cmd_buscount)

    p = sub.add_parser("lint", help="static analysis over models or source code")
    lint_sub = p.add_subparsers(dest="target", required=True)

    pm = lint_sub.add_parser("model", help="lint one instance's ILP formulation (no solve)")
    pm.add_argument("soc", help="S1 | S2 | S3 | d695 | SYN<n>[:seed] | path/to/file.soc")
    pm.add_argument("--widths", required=True, metavar="W1,W2,...",
                    help="bus widths, e.g. 16,16,32")
    _add_common_constraints(pm)
    pm.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    pm.set_defaults(func=cmd_lint_model)

    pc = lint_sub.add_parser("code", help="AST lint of the repro source tree")
    pc.add_argument("paths", nargs="*",
                    help="files/directories to scan (default: the installed repro package)")
    pc.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON (alias for --format json)")
    pc.add_argument("--format", choices=("text", "json", "sarif"), default=None,
                    help="output format (sarif targets GitHub code scanning)")
    pc.add_argument("--output", default=None, metavar="FILE",
                    help="write the report to FILE instead of stdout")
    pc.add_argument("--baseline", default=None, metavar="FILE",
                    help="waiver baseline (default: nearest .lint-baseline.json)")
    pc.set_defaults(func=cmd_lint_code)

    p = sub.add_parser("experiments", help="run evaluation harnesses (T1..T5, F1..F4, all)")
    p.add_argument("id", nargs="?", default="all")
    _add_runtime_flags(p)
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("serve", help="run the HTTP/JSON design service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8383,
                   help="TCP port (0 picks an ephemeral port; default: 8383)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="solver worker threads (default: 2)")
    p.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
                   metavar="DIR", help="persist solved instances on disk "
                                       f"(bare --cache stores under {DEFAULT_CACHE_DIR})")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shared solve cache")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="job state root for incumbent checkpoints/streams "
                        "(default: a temp directory per server)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="write the bound port to FILE once listening "
                        "(for scripts using --port 0)")
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like cat does.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
