"""From assignment to concrete test schedule.

The paper's architecture implies the schedule: each bus tests its cores
back-to-back starting at time zero, buses run in parallel. What remains free
is the *order* within each bus, which does not change the makespan but does
change the instantaneous power profile. Two policies:

- ``"lpt"`` (default) — longest test first on every bus, the conventional
  reporting order;
- ``"power_stagger"`` — a greedy peak-reduction order: buses are processed
  in descending load order and each repeatedly appends the remaining core
  whose power is largest if the bus currently starts early, smallest
  otherwise; in practice it staggers the hungry cores across time.

The schedule's true power profile (from :mod:`repro.power.profile`) is what
experiment T3 verifies against the budget — including the pairwise model's
known conservatism gap on 3+ concurrent cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import DesignProblem
from repro.power.profile import PowerProfile, profile_from_intervals
from repro.tam.assignment import Assignment
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class ScheduledTest:
    """One core's test session."""

    core_name: str
    bus: int
    start: float
    end: float
    power: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TestSchedule:
    """A complete schedule: one session per core, serial within each bus."""

    soc_name: str
    sessions: list[ScheduledTest]

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.sessions), default=0.0)

    def sessions_on_bus(self, bus: int) -> list[ScheduledTest]:
        return sorted((s for s in self.sessions if s.bus == bus), key=lambda s: s.start)

    def power_profile(self) -> PowerProfile:
        return profile_from_intervals(
            (s.core_name, s.start, s.end, s.power) for s in self.sessions
        )

    @property
    def peak_power(self) -> float:
        return self.power_profile().peak

    def concurrent_at(self, time: float) -> list[str]:
        """Cores under test at ``time`` (start-inclusive, end-exclusive)."""
        return [s.core_name for s in self.sessions if s.start <= time < s.end]

    def gantt(self, width: int = 64) -> str:
        """ASCII Gantt chart, one row per bus, time scaled to ``width`` cols."""
        if width <= 0:
            raise ValidationError(f"width must be positive, got {width}")
        span = self.makespan or 1.0
        buses = sorted({s.bus for s in self.sessions})
        lines = [f"Schedule for {self.soc_name} (makespan {span:.0f} cycles, peak {self.peak_power:.1f} mW)"]
        for bus in buses:
            row = ["."] * width
            for session in self.sessions_on_bus(bus):
                lo = int(session.start / span * (width - 1))
                hi = max(lo + 1, int(session.end / span * (width - 1)))
                letter = session.core_name[0]
                for k in range(lo, min(hi, width)):
                    row[k] = letter
            lines.append(f"  bus {bus}: {''.join(row)}")
        return "\n".join(lines)


def _order_lpt(items: list[tuple[int, float, float]]) -> list[tuple[int, float, float]]:
    """(core, time, power) descending by time."""
    return sorted(items, key=lambda item: -item[1])


def _order_power_stagger(
    per_bus: dict[int, list[tuple[int, float, float]]]
) -> dict[int, list[tuple[int, float, float]]]:
    """Alternate hungry-first / hungry-last across buses to spread peaks."""
    ordered = {}
    for rank, bus in enumerate(sorted(per_bus, key=lambda b: -sum(t for _, t, _ in per_bus[b]))):
        hungry_first = rank % 2 == 0
        ordered[bus] = sorted(per_bus[bus], key=lambda item: -item[2] if hungry_first else item[2])
    return ordered


def build_schedule(
    problem: DesignProblem, assignment: Assignment, policy: str = "lpt"
) -> TestSchedule:
    """Materialize the serial-per-bus schedule of ``assignment``.

    The schedule's makespan always equals the assignment's makespan; only
    the within-bus order (and hence the power profile) depends on ``policy``.
    """
    if policy not in ("lpt", "power_stagger"):
        raise ValidationError(f"unknown scheduling policy {policy!r}")
    per_bus: dict[int, list[tuple[int, float, float]]] = {}
    for i, core in enumerate(problem.soc):
        bus = assignment.bus_of[i]
        duration = problem.times[i][bus]
        per_bus.setdefault(bus, []).append((i, float(duration), core.test_power))

    if policy == "lpt":
        ordered = {bus: _order_lpt(items) for bus, items in per_bus.items()}
    else:
        ordered = _order_power_stagger(per_bus)

    sessions = []
    for bus, items in ordered.items():
        clock = 0.0
        for core_index, duration, power in items:
            sessions.append(
                ScheduledTest(
                    core_name=problem.soc.cores[core_index].name,
                    bus=bus,
                    start=clock,
                    end=clock + duration,
                    power=power,
                )
            )
            clock += duration
    sessions.sort(key=lambda s: (s.bus, s.start))
    return TestSchedule(problem.soc.name, sessions)
