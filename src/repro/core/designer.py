"""End-to-end architecture design: solve instances, sweep width splits.

:func:`design` solves one :class:`DesignProblem` to optimality and wraps the
result as a :class:`TamDesign` — assignment, certified makespan, wirelength
(when a floorplan is attached), and solver work counters.

:func:`design_best_architecture` reproduces the paper's outer loop: given a
total TAM width budget ``W`` and a bus count ``NB``, enumerate the width
distributions (integer partitions of W into NB parts — buses are symmetric
before assignment), solve each, and keep the best. Infeasible distributions
are recorded, not ignored: the constrained experiments need to report how
much of the design space a tight budget kills.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.formulation import build_assignment_ilp
from repro.core.problem import DesignProblem
from repro.ilp.solution import SolveStats, Status
from repro.layout.floorplan import Floorplan
from repro.layout.routing import tam_wirelength
from repro.obs import DEFAULT_CUT_POLICY, FallbackReport, SolvePolicy, get_metrics, now, span
from repro.runtime.telemetry import RunTelemetry
from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.tam.assignment import Assignment
from repro.tam.timing import TimingModel
from repro.util.errors import InfeasibleError, SolverError

if TYPE_CHECKING:  # pragma: no cover - runtime.portfolio imports back into core
    from repro.runtime.portfolio import PortfolioReport


@dataclass
class TamDesign:
    """An optimized test access architecture for one problem instance.

    ``fallback`` records the resilience path that produced this design
    (:class:`~repro.obs.FallbackReport`): ``None``/``"exact"`` for a proven
    optimum, ``"incumbent"`` for a budget-truncated best-so-far, and
    ``"lpt"``/``"sa"`` when the exact search found nothing and a heuristic
    stood in. ``portfolio`` is the race provenance
    (:class:`~repro.runtime.portfolio.PortfolioReport`) when the design
    came out of the racing portfolio, ``None`` otherwise.
    """

    problem: DesignProblem
    assignment: Assignment
    makespan: float
    bus_times: list[float]
    status: Status
    stats: SolveStats
    backend: str
    wirelength: float | None = None
    fallback: FallbackReport | None = None
    portfolio: "PortfolioReport | None" = None

    @property
    def arch(self) -> TamArchitecture:
        return self.problem.arch

    @property
    def is_proven_optimal(self) -> bool:
        return self.status is Status.OPTIMAL

    @property
    def provenance(self) -> str:
        """Where the answer came from: exact / incumbent / lpt / sa."""
        return self.fallback.source if self.fallback is not None else "exact"

    def describe(self) -> str:
        lines = [
            f"TAM design for {self.problem.soc.name} [{self.problem.constraint_summary()}]",
            self.assignment.describe(self.problem.timing),
        ]
        if self.wirelength is not None:
            lines.append(f"  TAM wirelength: {self.wirelength:.1f} wire-mm")
        cached = ", cached" if self.stats.cache_hit else ""
        lines.append(
            f"  solver: {self.backend}, status={self.status.value}, "
            f"nodes={self.stats.nodes}, LPs={self.stats.lp_solves}, "
            f"{self.stats.wall_time * 1000:.0f} ms{cached}"
        )
        if self.fallback is not None and (self.fallback.degraded or self.fallback.retries):
            lines.append(f"  resilience: {self.fallback.render()}")
        if self.portfolio is not None:
            lines.append(f"  {self.portfolio.render()}")
        return "\n".join(lines)


def design(
    problem: DesignProblem,
    backend: str = "bnb",
    wirelength_method: str = "chain",
    warm_start_heuristic: bool = False,
    cache: "object | bool | None" = None,
    policy: SolvePolicy | None = None,
    presolve: bool | None = None,
    branching: str | None = None,
    incumbent: Assignment | None = None,
    **solver_options,
) -> TamDesign:
    """Solve ``problem`` — to proven optimality, or as far as a policy allows.

    Solver knobs travel on ``policy.solver``
    (:class:`~repro.obs.SolverOptions`: presolve, branching, a
    :class:`~repro.obs.CutPolicy` cuts block, a root-model
    :class:`~repro.obs.PresolvePolicy`, the ``warm_start`` node-LP
    toggle, checkpoint interval); they
    only apply to the bnb backend and are rejected elsewhere. When nothing
    chose a cut policy, the designer turns branch-and-cut on with
    :data:`~repro.obs.DEFAULT_CUT_POLICY` — the TAM formulations are rich
    in conflict structure and separation is a no-op when they are not.
    Root presolve and warm-started node LPs are likewise on by default
    inside the solver itself (see DESIGN.md §13); disable them per request
    with ``SolverOptions(root_presolve=PresolvePolicy.disabled(),
    warm_start=False)``.
    The flat ``presolve=`` / ``branching=`` / ``checkpoint_interval=``
    kwargs still work for one release behind a
    :class:`DeprecationWarning`.

    Without a ``policy`` the solve is exact: :class:`InfeasibleError` when
    the constraints admit no assignment, :class:`SolverError` if the backend
    stops without a proof. With a :class:`~repro.obs.SolvePolicy` the path
    is *anytime*: on budget exhaustion the best incumbent is returned with
    ``Status.FEASIBLE`` provenance, and when no incumbent exists the
    policy's degradation ladder (LPT greedy, then simulated annealing by
    default) stands in — with every step recorded in the design's
    :class:`~repro.obs.FallbackReport` and the process metrics. A policy
    with an empty ladder restores the strict behavior under a budget.

    ``warm_start_heuristic`` feeds the LPT greedy solution to the branch &
    bound as its initial incumbent (bnb backend only): the optimum is
    unchanged, pruning just starts earlier. ``incumbent`` injects an
    arbitrary known-good :class:`~repro.tam.assignment.Assignment` the same
    way — the channel the racing portfolio cross-feeds heuristic winners
    through.

    When ``policy.solver.portfolio`` is an enabled
    :class:`~repro.obs.PortfolioPolicy` (and the backend is ``bnb``), the
    solve is dispatched to :func:`repro.runtime.portfolio.run_portfolio`:
    the heuristic rungs race on the process pool, their best incumbent is
    cross-fed to the exact search, and the returned design carries a
    :class:`~repro.runtime.portfolio.PortfolioReport` in ``.portfolio``.

    ``cache`` is forwarded to :meth:`Model.solve`: a
    :class:`~repro.runtime.cache.SolutionCache` memoizes this solve, ``None``
    defers to the active context cache, ``False`` bypasses caching.
    """
    if presolve is not None or branching is not None:
        warnings.warn(
            "the flat presolve=/branching= kwargs of design() are deprecated "
            "and will be removed next release; pass "
            "policy=SolvePolicy(solver=SolverOptions(presolve=..., branching=...)) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if backend != "bnb":
            raise ValueError(
                "presolve/branching are branch-and-bound knobs; "
                f"backend {backend!r} does not accept them"
            )
        if presolve is not None:
            solver_options.setdefault("presolve", presolve)
        if branching is not None:
            solver_options.setdefault("branching", branching)
    if "checkpoint_interval" in solver_options:
        warnings.warn(
            "passing checkpoint_interval= to design() directly is deprecated "
            "and will be removed next release; pass policy=SolvePolicy("
            "solver=SolverOptions(checkpoint_interval=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    portfolio = (
        policy.solver.portfolio
        if policy is not None and policy.solver is not None
        else None
    )
    if portfolio is not None and portfolio.enabled:
        if backend != "bnb":
            raise ValueError(
                f"portfolio racing only applies to the bnb backend, got {backend!r}"
            )
        if incumbent is not None:
            raise ValueError(
                "incumbent= cannot be combined with an enabled portfolio "
                "(the race supplies its own cross-fed incumbent)"
            )
        from repro.runtime.portfolio import run_portfolio

        return run_portfolio(
            problem,
            policy,
            cache=cache,
            wirelength_method=wirelength_method,
            **solver_options,
        )
    contradictions = problem.contradictions()
    if contradictions:
        names = problem.soc.core_names
        listed = ", ".join(f"({names[a]}, {names[b]})" for a, b in contradictions[:4])
        raise InfeasibleError(
            f"power budget forces and layout budget forbids the same pair(s): {listed}",
            reason="forced/forbidden contradiction",
        )

    with span("formulate", soc=problem.soc.name):
        formulation = build_assignment_ilp(problem)
    if backend == "bnb" and "gap_tol" not in solver_options and (
        policy is None or policy.gap_tol is None
    ):
        # Test times are integral cycle counts: stop once the bound is
        # within one cycle of the incumbent.
        solver_options["gap_tol"] = 1.0 - 1e-6
    if (
        backend == "bnb"
        and "cut_policy" not in solver_options
        and "root_cuts" not in solver_options
        and (policy is None or policy.solver is None or policy.solver.cuts is None)
    ):
        # Branch-and-cut by default: separation only ever strengthens the
        # relaxation (never the optimum) and no-ops on instances without
        # conflict/knapsack structure. CutPolicy.disabled() opts out.
        solver_options["cut_policy"] = DEFAULT_CUT_POLICY
    if incumbent is not None and backend == "bnb" and "warm_start" not in solver_options:
        violations = problem.validate(incumbent)
        if violations:
            raise ValueError(
                "incumbent= must be feasible for the problem; violations: "
                + "; ".join(violations)
            )
        values = {
            var: 1.0 if incumbent.bus_of[i] == j else 0.0
            for (i, j), var in formulation.x.items()
        }
        values[formulation.makespan_var] = incumbent.makespan(problem.timing)
        solver_options["warm_start"] = values
    elif warm_start_heuristic and backend == "bnb" and "warm_start" not in solver_options:
        from repro.core.baselines import lpt_assignment

        try:
            baseline = lpt_assignment(problem)
        except InfeasibleError:
            pass  # greedy failed; B&B starts cold and still proves the answer
        else:
            values = {
                var: 1.0 if baseline.assignment.bus_of[i] == j else 0.0
                for (i, j), var in formulation.x.items()
            }
            values[formulation.makespan_var] = baseline.makespan
            solver_options["warm_start"] = values
    with span("solve", backend=backend):
        solution = formulation.model.solve(
            backend=backend, cache=cache, policy=policy, **solver_options
        )

    if solution.status is Status.INFEASIBLE:
        raise InfeasibleError(
            f"no feasible assignment for {problem.constraint_summary()}",
            reason="ILP infeasible",
        )

    report = FallbackReport(retries=solution.stats.retries)
    if not solution.is_feasible:
        # Budget exhausted with no incumbent: walk the degradation ladder.
        return _degrade(problem, solution, backend, policy, report, wirelength_method)
    if solution.status is Status.FEASIBLE:
        report.source = "incumbent"
        report.reason = f"budget exhausted after {solution.stats.nodes} nodes"
        report.record_step("exact", "incumbent", nodes=solution.stats.nodes)

    with span("decode"):
        assignment = formulation.decode(solution)
        violations = problem.validate(assignment)
        if violations:
            raise SolverError(
                "solver returned an assignment violating the problem constraints: "
                + "; ".join(violations)
            )
        bus_times = assignment.bus_times(problem.timing)
        makespan = max(bus_times)
        wirelength = None
        if problem.floorplan is not None:
            wirelength = tam_wirelength(problem.floorplan, assignment, method=wirelength_method)
    if report.degraded:
        get_metrics().counter("design.fallbacks").inc()
    return TamDesign(
        problem=problem,
        assignment=assignment,
        makespan=makespan,
        bus_times=bus_times,
        status=solution.status,
        stats=solution.stats,
        backend=solution.backend,
        wirelength=wirelength,
        fallback=report,
    )


def _degrade(
    problem: DesignProblem,
    solution,
    backend: str,
    policy: SolvePolicy | None,
    report: FallbackReport,
    wirelength_method: str,
) -> TamDesign:
    """Budget exhausted without an incumbent: heuristics stand in.

    Walks ``policy.fallback`` (default LPT greedy, then simulated
    annealing). Each rung's outcome lands in the report; if every rung
    fails — or the policy forbids degradation — the original strict
    :class:`SolverError` is raised.
    """
    ladder = policy.fallback if policy is not None else ()
    report.reason = (
        f"backend {backend!r} stopped with status {solution.status.value} "
        f"after {solution.stats.nodes} nodes"
    )
    report.record_step("exact", "no_incumbent", nodes=solution.stats.nodes)
    assignment = None
    with span("fallback", ladder=list(ladder)):
        for rung in ladder:
            try:
                if rung == "lpt":
                    from repro.core.baselines import lpt_assignment

                    candidate = lpt_assignment(problem)
                else:  # "sa" — the only other registered rung
                    from repro.core.baselines import simulated_annealing

                    seed = policy.fallback_seed if policy is not None else 0
                    candidate = simulated_annealing(problem, seed=seed)
            except InfeasibleError as exc:
                report.record_step(rung, "infeasible", detail=str(exc.reason or exc))
                continue
            report.record_step(rung, "ok", makespan=candidate.makespan)
            report.source = rung
            assignment = candidate.assignment
            break
    if assignment is None:
        raise SolverError(report.reason)

    get_metrics().counter("design.fallbacks").inc()
    bus_times = assignment.bus_times(problem.timing)
    wirelength = None
    if problem.floorplan is not None:
        wirelength = tam_wirelength(problem.floorplan, assignment, method=wirelength_method)
    return TamDesign(
        problem=problem,
        assignment=assignment,
        makespan=max(bus_times),
        bus_times=bus_times,
        status=Status.FEASIBLE,
        stats=solution.stats,
        backend=solution.backend,
        wirelength=wirelength,
        fallback=report,
    )


@dataclass
class ArchitectureSweepResult:
    """Outcome of sweeping width distributions for one (W, NB) budget.

    ``pruned`` counts distributions skipped because a cheap certified lower
    bound already matched or exceeded the incumbent best — they cannot
    improve the sweep and are not solved. ``telemetry`` aggregates the
    solver work (and cache hits) over every distribution actually solved.
    """

    soc_name: str
    total_width: int
    num_buses: int
    best: TamDesign | None
    per_architecture: list[tuple[TamArchitecture, float | None]] = field(default_factory=list)
    evaluated: int = 0
    infeasible: int = 0
    pruned: int = 0
    wall_time: float = 0.0
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)

    @property
    def best_makespan(self) -> float:
        return self.best.makespan if self.best else math.inf


def design_best_architecture(
    soc: Soc,
    total_width: int,
    num_buses: int,
    timing: TimingModel | str = "fixed",
    power_budget: float | None = None,
    floorplan: Floorplan | None = None,
    max_pair_distance: float | None = None,
    backend: str = "bnb",
    clamp_useless_width: bool = False,
    policy: SolvePolicy | None = None,
    **solver_options,
) -> ArchitectureSweepResult:
    """Optimal width distribution + assignment for a total width budget.

    Enumerates integer partitions of ``total_width`` into ``num_buses``
    positive parts (symmetric permutations deduplicated), solves each to
    optimality, and returns the best design along with the full sweep trace.

    With ``clamp_useless_width`` the enumeration caps each bus at the timing
    model's :meth:`~repro.tam.timing.TimingModel.max_useful_bus_width` and
    shrinks the budget to ``num_buses x cap`` when it exceeds it — wider
    buses cannot improve any core, so the clamped sweep reaches the same
    optimum over a far smaller space (used by the dual width-minimization
    search, where budgets can be large).
    """
    from repro.tam.timing import make_timing_model

    start = now()
    result = ArchitectureSweepResult(soc.name, total_width, num_buses, best=None)
    max_bus_width = None
    if clamp_useless_width:
        timing_model = make_timing_model(timing) if isinstance(timing, str) else timing
        max_bus_width = timing_model.max_useful_bus_width(soc)
        total_width = min(total_width, num_buses * max_bus_width)
        timing = timing_model
    for arch in TamArchitecture.enumerate_distributions(
        total_width, num_buses, max_bus_width=max_bus_width
    ):
        problem = DesignProblem(
            soc=soc,
            arch=arch,
            timing=timing,
            power_budget=power_budget,
            floorplan=floorplan,
            max_pair_distance=max_pair_distance,
        )
        # Certified lower bounds that hold under any constraint set: the
        # slowest core on its fastest bus, and total work spread perfectly
        # over the buses. An infinite bound means some core fits no bus
        # (provably infeasible, recorded without solving); a finite bound
        # matching the incumbent cannot strictly improve the sweep.
        per_core_best = np.min(problem.times, axis=1)
        if not np.isfinite(per_core_best).all():
            result.evaluated += 1
            result.infeasible += 1
            result.per_architecture.append((arch, None))
            continue
        if result.best is not None:
            singleton_bound = float(np.max(per_core_best))
            work_bound = float(np.sum(per_core_best)) / num_buses
            if max(singleton_bound, work_bound) >= result.best.makespan - 1e-9:
                result.pruned += 1
                continue
        result.evaluated += 1
        try:
            candidate = design(problem, backend=backend, policy=policy, **solver_options)
        except InfeasibleError:
            result.infeasible += 1
            result.per_architecture.append((arch, None))
            continue
        result.telemetry.record(candidate.stats)
        result.telemetry.record_fallback(candidate.fallback)
        result.telemetry.record_portfolio(candidate.portfolio)
        result.per_architecture.append((arch, candidate.makespan))
        if result.best is None or candidate.makespan < result.best.makespan:
            result.best = candidate
    result.wall_time = now() - start
    return result
