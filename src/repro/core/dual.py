"""Dual formulations of the design problem.

The DAC 2000 paper minimizes testing time under a fixed TAM width budget;
its companion ILP paper also poses the dual: the tester interface is the
scarce resource, so **minimize the TAM pin count subject to a testing-time
budget**. Two search drivers:

- :func:`minimize_width` — smallest total width W (and its best architecture)
  whose optimal testing time meets the budget, for a fixed bus count;
- :func:`explore_bus_counts` — the NB axis: optimal testing time for every
  bus count at a fixed total width, exposing the knee where extra buses stop
  helping (the largest core's test pins the makespan).

Both reuse the exact designer, so every reported point is a certified
optimum, and both honor the full constraint set (power / layout).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.designer import ArchitectureSweepResult, TamDesign, design_best_architecture
from repro.layout.floorplan import Floorplan
from repro.obs import SolvePolicy
from repro.runtime.parallel import run_parallel
from repro.runtime.telemetry import RunTelemetry
from repro.soc.system import Soc
from repro.tam.timing import TimingModel
from repro.util.errors import InfeasibleError, ValidationError


@dataclass
class WidthMinimization:
    """Result of :func:`minimize_width`."""

    time_budget: float
    num_buses: int
    min_width: int
    design: TamDesign
    evaluated_widths: list[tuple[int, float | None]]

    def describe(self) -> str:
        return (
            f"min TAM width for T <= {self.time_budget:g} cycles with "
            f"{self.num_buses} buses: W = {self.min_width} on {self.design.arch} "
            f"(T* = {self.design.makespan:.0f})"
        )


def minimize_width(
    soc: Soc,
    num_buses: int,
    time_budget: float,
    timing: TimingModel | str = "serial",
    power_budget: float | None = None,
    floorplan: Floorplan | None = None,
    max_pair_distance: float | None = None,
    max_width: int = 128,
    backend: str = "bnb",
    policy: SolvePolicy | None = None,
    **solver_options,
) -> WidthMinimization:
    """Smallest total TAM width meeting a testing-time budget.

    The optimal testing time is non-increasing in total width (any W-wire
    design embeds in W+1 wires), so a binary search over W is sound. Each
    probe runs the full width-distribution enumeration at that W. Raises
    :class:`InfeasibleError` if even ``max_width`` wires cannot meet the
    budget. Extra keyword options (``presolve``, ``branching``, ``gap_tol``,
    ...) are forwarded to every probe's solves.
    """
    if time_budget <= 0:
        raise ValidationError(f"time budget must be positive, got {time_budget}")
    if max_width < num_buses:
        raise ValidationError(
            f"max_width {max_width} cannot host {num_buses} one-wire buses"
        )

    trace: list[tuple[int, float | None]] = []

    def probe(width: int) -> ArchitectureSweepResult:
        sweep = design_best_architecture(
            soc,
            width,
            num_buses,
            timing=timing,
            power_budget=power_budget,
            floorplan=floorplan,
            max_pair_distance=max_pair_distance,
            backend=backend,
            clamp_useless_width=True,
            policy=policy,
            **solver_options,
        )
        trace.append((width, sweep.best.makespan if sweep.best else None))
        return sweep

    # Establish a feasible ceiling first.
    ceiling = probe(max_width)
    if ceiling.best is None or ceiling.best.makespan > time_budget:
        achieved = "infeasible" if ceiling.best is None else f"{ceiling.best.makespan:.0f}"
        raise InfeasibleError(
            f"time budget {time_budget:g} unreachable with {num_buses} buses "
            f"and up to {max_width} wires (best: {achieved})",
            reason="time budget too tight",
        )

    low, high = num_buses, max_width
    best_sweep = ceiling
    while low < high:
        mid = (low + high) // 2
        sweep = probe(mid)
        if sweep.best is not None and sweep.best.makespan <= time_budget:
            best_sweep = sweep
            high = mid
        else:
            low = mid + 1
    assert best_sweep.best is not None
    trace.sort()
    return WidthMinimization(
        time_budget=time_budget,
        num_buses=num_buses,
        min_width=high,
        design=best_sweep.best,
        evaluated_widths=trace,
    )


@dataclass
class BusCountPoint:
    """One row of :func:`explore_bus_counts`.

    ``telemetry`` carries the solver work behind the point (None when the
    point was rejected before any solve, e.g. ``W < NB``).
    """

    num_buses: int
    makespan: float | None
    arch_widths: tuple[int, ...] | None
    telemetry: "RunTelemetry | None" = None


def _bus_count_point(payload: tuple) -> BusCountPoint:
    """Worker: one bus count of :func:`explore_bus_counts`."""
    (soc, total_width, num_buses, timing, power_budget, floorplan,
     max_pair_distance, backend, policy, solver_options) = payload
    if total_width < num_buses:
        return BusCountPoint(num_buses, None, None)
    sweep = design_best_architecture(
        soc,
        total_width,
        num_buses,
        timing=timing,
        power_budget=power_budget,
        floorplan=floorplan,
        max_pair_distance=max_pair_distance,
        backend=backend,
        policy=policy,
        **solver_options,
    )
    if sweep.best is None:
        return BusCountPoint(num_buses, None, None, telemetry=sweep.telemetry)
    return BusCountPoint(
        num_buses, sweep.best.makespan, sweep.best.arch.widths, telemetry=sweep.telemetry
    )


def explore_bus_counts(
    soc: Soc,
    total_width: int,
    max_buses: int,
    timing: TimingModel | str = "serial",
    power_budget: float | None = None,
    floorplan: Floorplan | None = None,
    max_pair_distance: float | None = None,
    backend: str = "bnb",
    jobs: int = 1,
    policy: SolvePolicy | None = None,
    **solver_options,
) -> list[BusCountPoint]:
    """Optimal testing time for every bus count 1..max_buses at fixed W.

    More buses add concurrency but thin each bus's wires — under the
    serialization model the optimum is not monotone in NB, which is exactly
    why the paper treats NB as a design parameter. ``jobs > 1`` sweeps the
    bus counts in parallel, preserving NB order. Extra keyword options
    (``presolve``, ``branching``, ...) are forwarded to every point's
    solves — they must be picklable.
    """
    if max_buses <= 0:
        raise ValidationError(f"max_buses must be positive, got {max_buses}")
    payloads = [
        (soc, total_width, num_buses, timing, power_budget, floorplan,
         max_pair_distance, backend, policy, solver_options)
        for num_buses in range(1, max_buses + 1)
    ]
    return run_parallel(_bus_count_point, payloads, max_workers=jobs)
