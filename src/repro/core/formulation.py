"""The DAC 2000 integer linear program.

Decision variables: binary ``x[i][j]`` — core *i* is assigned to test bus
*j* — created only for the (i, j) pairs the timing model allows, and the
continuous makespan ``T``.

    minimize   T
    subject to sum_j x[i][j] = 1                      (every core gets a bus)
               sum_i t[i][j] * x[i][j] <= T           (bus serial time)
               x[a][j] + x[b][j] <= 1   for all j     (forbidden pair a,b)
               x[a][j] = x[b][j]        for all j     (forced pair a,b)

The forced-pair equalities are the paper's conservative power encoding; the
forbidden-pair inequalities are its place-and-route encoding. Both are
linear, so the augmented problem remains an ILP. Width-infeasible (i, j)
combinations simply have no variable, which both shrinks the model and makes
the fixed-width rule unviolable by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import DesignProblem
from repro.ilp import BINARY, Model, Solution, Variable, quicksum
from repro.tam.assignment import Assignment
from repro.util.errors import InfeasibleError


@dataclass
class IlpFormulation:
    """A built model plus the handles needed to decode its solutions."""

    problem: DesignProblem
    model: Model
    x: dict[tuple[int, int], Variable]
    makespan_var: Variable

    def decode(self, solution: Solution, tol: float = 1e-6) -> Assignment:
        """Turn a feasible solution into an :class:`Assignment`.

        Accepts slightly-fractional binaries (LP round-off) and verifies
        each core lands on exactly one bus.
        """
        if not solution.is_feasible:
            raise InfeasibleError(
                f"cannot decode a solution with status {solution.status.value}"
            )
        num_cores = len(self.problem.soc)
        bus_of: list[int | None] = [None] * num_cores
        for (i, j), var in self.x.items():
            if solution[var] > 1.0 - tol:
                if bus_of[i] is not None:
                    raise InfeasibleError(
                        f"solver assigned core {i} to two buses", reason="decode error"
                    )
                bus_of[i] = j
        missing = [i for i, b in enumerate(bus_of) if b is None]
        if missing:
            raise InfeasibleError(
                f"solver left cores {missing} unassigned", reason="decode error"
            )
        return Assignment(self.problem.soc, self.problem.arch, tuple(bus_of))  # type: ignore[arg-type]


def build_assignment_ilp(problem: DesignProblem) -> IlpFormulation:
    """Encode ``problem`` as the paper's ILP.

    Raises :class:`InfeasibleError` immediately when some core has no
    width-feasible bus at all (no variable could be created for it) — the
    one infeasibility mode detectable before solving.
    """
    soc = problem.soc
    arch = problem.arch
    times = problem.times
    num_cores = len(soc)
    num_buses = arch.num_buses

    model = Model(f"tam-{soc.name}-{arch}")
    x: dict[tuple[int, int], Variable] = {}
    for i in range(num_cores):
        feasible_buses = [j for j in range(num_buses) if np.isfinite(times[i][j])]
        if not feasible_buses:
            raise InfeasibleError(
                f"core {soc.cores[i].name!r} (width {soc.cores[i].test_width}) fits no bus of {arch}",
                reason="width-infeasible core",
            )
        for j in feasible_buses:
            x[i, j] = model.add_var(f"x_{soc.cores[i].name}_b{j}", vartype=BINARY)
        model.add_constr(
            quicksum(x[i, j] for j in feasible_buses) == 1,
            name=f"assign_{soc.cores[i].name}",
        )

    # Makespan definition. Lower-bound T by the best single core to tighten
    # the LP relaxation slightly (harmless, often saves B&B nodes).
    makespan = model.add_var("T", lb=problem.makespan_lower_bound())
    for j in range(num_buses):
        members = [(i, jj) for (i, jj) in x if jj == j]
        if not members:
            continue
        model.add_constr(
            quicksum(times[i][j] * x[i, j] for i, _ in members) <= makespan,
            name=f"bus{j}_time",
        )

    # Place-and-route: distant cores may not share any bus.
    for a, b in problem.forbidden_pairs:
        for j in range(num_buses):
            if (a, j) in x and (b, j) in x:
                model.add_constr(
                    x[a, j] + x[b, j] <= 1, name=f"far_{a}_{b}_b{j}"
                )

    # Power: incompatible cores must serialize on a common bus. Where one
    # core of the pair cannot use bus j at all, the other must avoid j too.
    # Zero-fixes are deduplicated: two forced pairs sharing a core would
    # otherwise emit identical x == 0 rows (flagged by model-lint M004).
    zero_fixed: set[tuple[int, int]] = set()
    for a, b in problem.forced_pairs:
        for j in range(num_buses):
            a_has = (a, j) in x
            b_has = (b, j) in x
            if a_has and b_has:
                model.add_constr(x[a, j] == x[b, j], name=f"pow_{a}_{b}_b{j}")
            elif a_has and (a, j) not in zero_fixed:
                zero_fixed.add((a, j))
                model.add_constr(x[a, j] == 0, name=f"pow_{a}_{b}_b{j}")
            elif b_has and (b, j) not in zero_fixed:
                zero_fixed.add((b, j))
                model.add_constr(x[b, j] == 0, name=f"pow_{a}_{b}_b{j}")

    model.minimize(makespan)
    return IlpFormulation(problem, model, x, makespan)
