"""The paper's contribution: constrained test access architecture design.

Pipeline:

1. Describe the instance as a :class:`DesignProblem` — SOC, bus widths, a
   timing model, and optional power budget / layout distance budget;
2. :func:`build_assignment_ilp` encodes it exactly as the DAC 2000 ILP
   (assignment binaries, makespan variable, power equalities, layout
   conflict inequalities);
3. :func:`design` solves it (our branch & bound or HiGHS) and returns a
   certified :class:`TamDesign`;
4. :func:`design_best_architecture` additionally sweeps the width
   distributions of a total-TAM-width budget;
5. :mod:`repro.core.baselines` supplies the heuristic comparators and
   :mod:`repro.core.pareto` the sweep drivers behind the evaluation's
   figures;
6. :mod:`repro.core.scheduler` turns an assignment into a concrete test
   schedule whose true power profile is verified against the budget.
"""

from repro.core.problem import DesignProblem
from repro.core.formulation import build_assignment_ilp, IlpFormulation
from repro.core.designer import design, design_best_architecture, TamDesign, ArchitectureSweepResult
from repro.core.scheduler import TestSchedule, ScheduledTest, build_schedule
from repro.core.baselines import (
    BaselineResult,
    lpt_assignment,
    random_assignment,
    local_search,
    simulated_annealing,
    run_all_baselines,
)
from repro.core.pareto import width_sweep, power_budget_sweep, distance_budget_sweep, pareto_front
from repro.core.dual import minimize_width, explore_bus_counts, WidthMinimization, BusCountPoint
from repro.core.power_schedule import schedule_with_power_cap, CappedScheduleResult
from repro.core.report import design_report
from repro.core.request import REQUEST_KINDS, SolveRequest, resolve_soc

__all__ = [
    "DesignProblem",
    "build_assignment_ilp",
    "IlpFormulation",
    "design",
    "design_best_architecture",
    "TamDesign",
    "ArchitectureSweepResult",
    "TestSchedule",
    "ScheduledTest",
    "build_schedule",
    "BaselineResult",
    "lpt_assignment",
    "random_assignment",
    "local_search",
    "simulated_annealing",
    "run_all_baselines",
    "width_sweep",
    "power_budget_sweep",
    "distance_budget_sweep",
    "pareto_front",
    "minimize_width",
    "explore_bus_counts",
    "WidthMinimization",
    "BusCountPoint",
    "schedule_with_power_cap",
    "CappedScheduleResult",
    "design_report",
    "REQUEST_KINDS",
    "SolveRequest",
    "resolve_soc",
]
