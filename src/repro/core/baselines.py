"""Heuristic baselines the ILP is compared against.

The paper's case for ILP is optimality at acceptable runtime; the harness
quantifies it against the heuristics a practitioner would otherwise reach
for:

- :func:`lpt_assignment` — longest-processing-time greedy list scheduling,
  extended to respect width feasibility and both pair-constraint families;
- :func:`random_assignment` — best of N random feasible assignments;
- :func:`local_search` — steepest-descent move/swap improvement;
- :func:`simulated_annealing` — SA over assignments with constraint-aware
  moves.

Every baseline returns a :class:`BaselineResult` whose assignment has been
re-validated against the problem; a baseline that cannot find a feasible
assignment raises :class:`InfeasibleError` (they are heuristics — the ILP
may still prove the instance feasible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.core.problem import DesignProblem
from repro.obs import now
from repro.tam.assignment import Assignment, evaluate_makespan
from repro.util.errors import InfeasibleError, ValidationError
from repro.util.rng import RngLike, make_rng


@dataclass
class BaselineResult:
    """A heuristic solution with provenance."""

    name: str
    assignment: Assignment
    makespan: float
    wall_time: float
    evaluations: int = 0


def _pair_maps(problem: DesignProblem) -> tuple[list[set[int]], list[set[int]]]:
    n = len(problem.soc)
    forbid: list[set[int]] = [set() for _ in range(n)]
    for a, b in problem.forbidden_pairs:
        forbid[a].add(b)
        forbid[b].add(a)
    force: list[set[int]] = [set() for _ in range(n)]
    for a, b in problem.forced_pairs:
        force[a].add(b)
        force[b].add(a)
    return forbid, force


def _merge_power_groups(problem: DesignProblem) -> list[list[int]]:
    """Treat each forced component as one super-core for greedy purposes."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(len(problem.soc)))
    graph.add_edges_from(problem.forced_pairs)
    return [sorted(c) for c in nx.connected_components(graph)]


def _finish(problem: DesignProblem, name: str, bus_of: list[int], start: float, evaluations: int) -> BaselineResult:
    assignment = Assignment(problem.soc, problem.arch, tuple(bus_of))
    violations = problem.validate(assignment)
    if violations:
        raise InfeasibleError(
            f"{name} produced an invalid assignment", reason="; ".join(violations)
        )
    return BaselineResult(
        name=name,
        assignment=assignment,
        makespan=assignment.makespan(problem.timing),
        wall_time=now() - start,
        evaluations=evaluations,
    )


def lpt_assignment(problem: DesignProblem) -> BaselineResult:
    """Greedy LPT over power-merged groups.

    Groups (forced components) are placed largest-total-time-first onto the
    feasible bus with the smallest resulting load, skipping buses that hold
    a forbidden partner. On the unconstrained uniform-width problem this is
    Graham's LPT with its 4/3 - 1/(3m) guarantee; with constraints it is a
    best-effort heuristic that may fail where the ILP succeeds.
    """
    start = now()
    times = problem.times
    forbid, _ = _pair_maps(problem)
    groups = _merge_power_groups(problem)

    def group_time_on(group: list[int], bus: int) -> float:
        return float(sum(times[i][bus] for i in group))

    order = sorted(
        groups,
        key=lambda group: -min(
            (group_time_on(group, j) for j in range(problem.arch.num_buses)),
            default=math.inf,
        ),
    )
    load = [0.0] * problem.arch.num_buses
    bus_of = [-1] * len(problem.soc)
    for group in order:
        best_bus = None
        best_load = math.inf
        for j in range(problem.arch.num_buses):
            group_time = group_time_on(group, j)
            if not math.isfinite(group_time):
                continue
            blocked = any(
                bus_of[partner] == j for member in group for partner in forbid[member]
            )
            if blocked:
                continue
            if load[j] + group_time < best_load:
                best_load = load[j] + group_time
                best_bus = j
        if best_bus is None:
            raise InfeasibleError(
                "LPT could not place a power group", reason="no feasible bus for a group"
            )
        for member in group:
            bus_of[member] = best_bus
        load[best_bus] = best_load
    return _finish(problem, "lpt", bus_of, start, evaluations=len(groups))


def random_assignment(
    problem: DesignProblem, seed: RngLike = 0, attempts: int = 200
) -> BaselineResult:
    """Best feasible assignment out of ``attempts`` uniform draws.

    Groups are kept intact and buses drawn uniformly among width-feasible
    ones; draws violating a forbidden pair are discarded. The asymptotically
    dumb baseline that calibrates how structured the problem is.
    """
    if attempts <= 0:
        raise ValidationError(f"attempts must be positive, got {attempts}")
    start = now()
    rng = make_rng(seed)
    times = problem.times
    groups = _merge_power_groups(problem)
    forbid, _ = _pair_maps(problem)
    num_buses = problem.arch.num_buses

    feasible_buses_of_group = []
    for group in groups:
        buses = [
            j
            for j in range(num_buses)
            if all(math.isfinite(times[i][j]) for i in group)
        ]
        if not buses:
            raise InfeasibleError(
                "a power group fits no bus", reason="width-infeasible group"
            )
        feasible_buses_of_group.append(buses)

    best_vector: list[int] | None = None
    best_span = math.inf
    for _ in range(attempts):
        bus_of = [-1] * len(problem.soc)
        ok = True
        for group, buses in zip(groups, feasible_buses_of_group):
            bus = int(buses[int(rng.integers(len(buses)))])
            if any(bus_of[p] == bus for member in group for p in forbid[member]):
                ok = False
                break
            for member in group:
                bus_of[member] = bus
        if not ok:
            continue
        span = evaluate_makespan(times, bus_of, num_buses)
        if span < best_span:
            best_span = span
            best_vector = bus_of
    if best_vector is None:
        raise InfeasibleError(
            f"no feasible random assignment in {attempts} attempts",
            reason="random search exhausted",
        )
    return _finish(problem, "random", best_vector, start, evaluations=attempts)


def _neighbors(problem: DesignProblem, bus_of: list[int], groups, feasible, forbid):
    """Yield (vector, description) move/swap neighbors keeping feasibility."""
    num_groups = len(groups)
    for g, group in enumerate(groups):
        current = bus_of[group[0]]
        for bus in feasible[g]:
            if bus == current:
                continue
            trial = list(bus_of)
            for member in group:
                trial[member] = bus
            if any(trial[p] == bus for member in group for p in forbid[member]):
                continue
            yield trial
    for g1 in range(num_groups):
        for g2 in range(g1 + 1, num_groups):
            b1 = bus_of[groups[g1][0]]
            b2 = bus_of[groups[g2][0]]
            if b1 == b2 or b2 not in feasible[g1] or b1 not in feasible[g2]:
                continue
            trial = list(bus_of)
            for member in groups[g1]:
                trial[member] = b2
            for member in groups[g2]:
                trial[member] = b1
            bad = any(
                trial[p] == trial[member]
                for g in (g1, g2)
                for member in groups[g]
                for p in forbid[member]
            )
            if not bad:
                yield trial


def local_search(
    problem: DesignProblem,
    start_from: Assignment | None = None,
    max_rounds: int = 100,
) -> BaselineResult:
    """Steepest-descent improvement over group moves and swaps.

    Starts from LPT unless given a seed assignment; stops at a local
    optimum or after ``max_rounds`` improvement rounds.
    """
    start = now()
    times = problem.times
    groups = _merge_power_groups(problem)
    forbid, _ = _pair_maps(problem)
    num_buses = problem.arch.num_buses
    feasible = [
        [j for j in range(num_buses) if all(math.isfinite(times[i][j]) for i in group)]
        for group in groups
    ]

    if start_from is None:
        bus_of = list(lpt_assignment(problem).assignment.bus_of)
    else:
        bus_of = list(start_from.bus_of)
    span = evaluate_makespan(times, bus_of, num_buses)
    evaluations = 0
    for _ in range(max_rounds):
        best_trial = None
        best_span = span
        for trial in _neighbors(problem, bus_of, groups, feasible, forbid):
            evaluations += 1
            trial_span = evaluate_makespan(times, trial, num_buses)
            if trial_span < best_span:
                best_span = trial_span
                best_trial = trial
        if best_trial is None:
            break
        bus_of = best_trial
        span = best_span
    return _finish(problem, "local_search", bus_of, start, evaluations)


def simulated_annealing(
    problem: DesignProblem,
    seed: RngLike = 0,
    iterations: int = 5000,
    initial_temperature: float | None = None,
) -> BaselineResult:
    """SA over constraint-respecting group moves.

    Random restarts are unnecessary: the move set is connected over the
    feasible region reachable from the LPT start, and annealing escapes the
    local optima the paper's instances produce.
    """
    if iterations < 0:
        raise ValidationError(f"iterations must be non-negative, got {iterations}")
    start = now()
    rng = make_rng(seed)
    times = problem.times
    groups = _merge_power_groups(problem)
    forbid, _ = _pair_maps(problem)
    num_buses = problem.arch.num_buses
    feasible = [
        [j for j in range(num_buses) if all(math.isfinite(times[i][j]) for i in group)]
        for group in groups
    ]

    bus_of = list(lpt_assignment(problem).assignment.bus_of)
    span = evaluate_makespan(times, bus_of, num_buses)
    best_vector = list(bus_of)
    best_span = span
    temperature = initial_temperature if initial_temperature is not None else max(span * 0.05, 1.0)
    evaluations = 0

    for _ in range(iterations):
        g = int(rng.integers(len(groups)))
        options = feasible[g]
        if len(options) <= 1:
            continue
        bus = int(options[int(rng.integers(len(options)))])
        group = groups[g]
        if bus == bus_of[group[0]]:
            continue
        if any(bus_of[p] == bus for member in group for p in forbid[member]):
            continue
        trial = list(bus_of)
        for member in group:
            trial[member] = bus
        evaluations += 1
        trial_span = evaluate_makespan(times, trial, num_buses)
        delta = trial_span - span
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            bus_of = trial
            span = trial_span
            if span < best_span:
                best_span = span
                best_vector = list(bus_of)
        temperature *= 0.999
    return _finish(problem, "sa", best_vector, start, evaluations)


def run_all_baselines(problem: DesignProblem, seed: RngLike = 0) -> list[BaselineResult]:
    """Run every baseline that succeeds on ``problem`` (failures are skipped)."""
    results = []
    for runner in (
        lambda: lpt_assignment(problem),
        lambda: random_assignment(problem, seed=seed),
        lambda: local_search(problem),
        lambda: simulated_annealing(problem, seed=seed),
    ):
        try:
            results.append(runner())
        except InfeasibleError:
            continue
    return results
