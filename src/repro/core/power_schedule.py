"""Power-capped schedule construction.

The paper's pairwise power encoding guarantees every concurrent *pair*
stays within budget, but three or more mutually-compatible cores may still
overlap and jointly exceed it (experiment T3 measures this gap). This
module closes the gap at schedule level: keep the ILP's optimal assignment,
but insert idle time so that the *instantaneous* power never exceeds a hard
cap — the natural post-2000 extension (power-constrained test scheduling).

Greedy list scheduling: buses stay serial and non-preemptive; at every
event time, free buses try to launch their next test (longest remaining
work first) and a launch is allowed only if the running power plus the
core's power fits under the cap. The result may be slower than the
assignment's makespan — that delta is the measured *price of true peak
compliance*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import DesignProblem
from repro.core.scheduler import ScheduledTest, TestSchedule
from repro.tam.assignment import Assignment
from repro.util.errors import InfeasibleError, ValidationError


@dataclass
class CappedScheduleResult:
    """Outcome of power-capped scheduling."""

    schedule: TestSchedule
    cap: float
    base_makespan: float

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def slowdown(self) -> float:
        """Relative time paid for hard peak compliance (0.0 = free)."""
        return self.makespan / self.base_makespan - 1.0


def schedule_with_power_cap(
    problem: DesignProblem, assignment: Assignment, cap: float
) -> CappedScheduleResult:
    """Build a schedule of ``assignment`` whose instantaneous power <= cap.

    Raises :class:`InfeasibleError` when some single core already exceeds
    the cap (no schedule can fix that) and :class:`ValidationError` for a
    non-positive cap.
    """
    if cap <= 0:
        raise ValidationError(f"power cap must be positive, got {cap}")
    hungriest = max(core.test_power for core in problem.soc)
    if hungriest > cap + 1e-9:
        raise InfeasibleError(
            f"core power {hungriest:g} mW exceeds the cap {cap:g} mW",
            reason="cap below max single-core power",
        )

    # Per-bus queues, longest test first (the serial order is free to pick).
    queues: dict[int, list[tuple[int, float, float]]] = {}
    for i, core in enumerate(problem.soc):
        bus = assignment.bus_of[i]
        duration = float(problem.times[i][bus])
        queues.setdefault(bus, []).append((i, duration, core.test_power))
    for bus in queues:
        queues[bus].sort(key=lambda item: -item[1])

    base_makespan = assignment.makespan(problem.timing)
    sessions: list[ScheduledTest] = []
    bus_free_at = {bus: 0.0 for bus in queues}
    running: list[tuple[float, float]] = []  # (end, power)
    now = 0.0

    def running_power(t: float) -> float:
        return sum(p for end, p in running if end > t + 1e-12)

    while any(queues.values()):
        launched = False
        # Longest remaining work first across buses, deterministic tie-break.
        ready = sorted(
            (bus for bus in queues if queues[bus] and bus_free_at[bus] <= now + 1e-12),
            key=lambda bus: (-sum(d for _, d, _ in queues[bus]), bus),
        )
        for bus in ready:
            core_index, duration, power = queues[bus][0]
            if running_power(now) + power <= cap + 1e-9:
                queues[bus].pop(0)
                end = now + duration
                sessions.append(
                    ScheduledTest(
                        core_name=problem.soc.cores[core_index].name,
                        bus=bus,
                        start=now,
                        end=end,
                        power=power,
                    )
                )
                running.append((end, power))
                bus_free_at[bus] = end
                launched = True
        if launched:
            continue
        # Nothing launchable now: advance to the next completion event.
        future_ends = [end for end, _ in running if end > now + 1e-12]
        pending_frees = [t for t in bus_free_at.values() if t > now + 1e-12]
        horizon = future_ends + pending_frees
        if not horizon:
            # No test running, none launchable — impossible given the
            # single-core cap check above.
            raise InfeasibleError(
                "scheduler stalled below the cap", reason="internal stall"
            )
        now = min(horizon)
        running = [(end, p) for end, p in running if end > now + 1e-12]

    sessions.sort(key=lambda s: (s.bus, s.start))
    schedule = TestSchedule(problem.soc.name, sessions)
    return CappedScheduleResult(schedule=schedule, cap=cap, base_makespan=base_makespan)
