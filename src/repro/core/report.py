"""Full-text design reports.

Bundles everything a test engineer would want from one design run — the
constraint summary, per-bus assignment and times, schedule Gantt, true power
profile, TAM wirelength, and solver provenance — into one plain-text report.
Used by the CLI (``python -m repro design ...``) and handy in notebooks.
"""

from __future__ import annotations

from repro.core.designer import TamDesign
from repro.core.scheduler import build_schedule


def design_report(result: TamDesign, gantt_width: int = 64) -> str:
    """Render a complete report for a finished design."""
    problem = result.problem
    lines = [
        "=" * 72,
        f"TAM design report — {problem.soc.name}",
        "=" * 72,
        f"instance:  {problem.constraint_summary()}",
        f"solver:    {result.backend} ({result.status.value}), "
        f"{result.stats.nodes} nodes, {result.stats.lp_solves} LPs, "
        f"{result.stats.wall_time * 1000:.0f} ms",
        f"makespan:  {result.makespan:.0f} cycles "
        f"(lower bound {problem.makespan_lower_bound():.0f})",
        "",
        "assignment:",
    ]
    for bus in range(result.arch.num_buses):
        members = result.assignment.cores_on_bus(bus)
        names = ", ".join(problem.soc.cores[i].name for i in members) or "(empty)"
        lines.append(
            f"  bus {bus} (w={result.arch.width_of(bus)}): "
            f"{result.bus_times[bus]:8.0f} cycles  [{names}]"
        )

    schedule = build_schedule(problem, result.assignment)
    lines += ["", schedule.gantt(gantt_width)]

    profile = schedule.power_profile()
    lines += [
        "",
        f"power:     true peak {profile.peak:.1f} mW, "
        f"energy {profile.energy():.0f} mW-cycles",
    ]
    if problem.power_budget is not None:
        worst_pair = 0.0
        sessions = schedule.sessions
        for i, a in enumerate(sessions):
            for b in sessions[i + 1 :]:
                if a.bus != b.bus and a.start < b.end and b.start < a.end:
                    worst_pair = max(worst_pair, a.power + b.power)
        verdict = "OK" if worst_pair <= problem.power_budget + 1e-9 else "VIOLATION"
        lines.append(
            f"           worst concurrent pair {worst_pair:.1f} mW "
            f"vs budget {problem.power_budget:g} mW -> {verdict}"
        )
    if result.wirelength is not None:
        lines.append(f"routing:   {result.wirelength:.1f} wire-mm (width-weighted, chain estimator)")
    if result.portfolio is not None:
        lines.append(f"race:      {result.portfolio.render()}")
    if problem.forbidden_pairs or problem.forced_pairs:
        lines.append("")
        lines.append(
            f"constraints honored: {len(problem.forced_pairs)} forced pair(s), "
            f"{len(problem.forbidden_pairs)} forbidden pair(s); "
            f"independent re-validation: "
            f"{'clean' if not problem.validate(result.assignment) else 'VIOLATED'}"
        )
    return "\n".join(lines)
