"""The one request surface every entry point constructs solves through.

Three request shapes had accreted by PR 6: the library's ``design(problem,
policy=..., **solver_options)`` kwarg plumbing, the CLI's flag bundles, and
the experiment harnesses' :class:`~repro.experiments.base.ExperimentConfig`.
A :class:`SolveRequest` unifies them: one frozen, picklable, JSON-round-
trippable description of *what to solve and how hard to try*, with

- **validation** per job kind (``design`` / ``sweep`` / ``min_width`` /
  ``bus_count``) at construction time, so malformed requests fail before
  they reach a queue or a worker;
- **one fingerprint** — :meth:`cache_token` (the shared protocol of
  :mod:`repro.runtime.fingerprint`, also implemented by
  :class:`~repro.obs.SolvePolicy`) canonicalizes exactly the
  result-affecting fields, and :meth:`fingerprint` hashes it. The service
  dedupes concurrent identical submissions by this fingerprint; N clients
  asking for the same solve trigger exactly one run;
- **one execution path** — :meth:`run` dispatches to the exact design flow
  (:func:`~repro.core.designer.design`,
  :func:`~repro.core.designer.design_best_architecture`,
  :func:`~repro.core.dual.minimize_width`,
  :func:`~repro.core.dual.explore_bus_counts`), and :meth:`run_payload`
  returns the JSON shape the CLI ``--json`` output and the HTTP service
  both serve.

``jobs`` (worker fan-out) is deliberately *not* part of the cache token:
parallelism never changes what a solve returns, so requests differing only
in ``jobs`` dedupe onto one result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.designer import TamDesign, design, design_best_architecture
from repro.core.dual import explore_bus_counts, minimize_width
from repro.core.problem import DesignProblem
from repro.layout.placers import grid_place
from repro.obs import SolvePolicy
from repro.runtime.fingerprint import cache_token_of, token_digest
from repro.soc.builders import build_s1, build_s2, build_s3
from repro.soc.catalog import corpus_names, corpus_soc
from repro.soc.generator import generate_synthetic_soc
from repro.soc.itc02 import build_d695
from repro.soc.io import load_soc
from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.util.errors import ValidationError

#: The job kinds the unified surface knows how to run.
REQUEST_KINDS = ("design", "sweep", "min_width", "bus_count")

#: Fields a request kind requires beyond ``soc`` (validated at construction).
_REQUIRED: dict[str, tuple[str, ...]] = {
    "design": ("widths",),
    "sweep": ("total_width", "num_buses"),
    "min_width": ("num_buses", "time_budget"),
    "bus_count": ("total_width", "max_buses"),
}

_TIMINGS = ("fixed", "serial", "flexible")


def resolve_soc(spec: str) -> Soc:
    """Turn an SOC spec string into a system (builtin / synthetic / file).

    Accepts the builtin names ``S1``/``S2``/``S3``/``D695``, any registered
    stress-corpus name (``p93791``, ``t512505``, ``scale200``, … — see
    :func:`repro.soc.catalog.corpus_names`), ``SYN<n>[:seed]`` for a seeded
    synthetic system, ``ITC<n>[:seed]`` for the heavy-tailed ITC'02-class
    generator mode, or a path to a ``.soc`` file. This is the one resolver
    the CLI, the service, and request payloads share — a spec string is the
    portable, fingerprintable name of a system.
    """
    builtin = {"S1": build_s1, "S2": build_s2, "S3": build_s3, "D695": build_d695}
    if spec.upper() in builtin:
        return builtin[spec.upper()]()
    if spec.lower() in corpus_names():
        return corpus_soc(spec)
    if spec.upper().startswith("SYN") or spec.upper().startswith("ITC"):
        mode = "catalog" if spec.upper().startswith("SYN") else "itc02"
        body = spec[3:]
        count, _, seed = body.partition(":")
        try:
            return generate_synthetic_soc(
                int(count), seed=int(seed) if seed else 0, mode=mode
            )
        except ValueError as exc:
            raise ValidationError(f"bad synthetic SOC spec {spec!r}: {exc}") from exc
    return load_soc(spec)


@dataclass(frozen=True)
class SolveRequest:
    """One validated, fingerprintable description of a solve job.

    ``soc`` is a spec string (see :func:`resolve_soc`), not a live object:
    requests must be picklable, serializable, and content-addressable.
    ``options`` holds extra JSON-scalar solver kwargs (``gap_tol``, ...)
    as a sorted tuple of pairs so equal requests compare and hash equal
    regardless of construction order; structured solver settings
    (presolve, branching, the branch-and-cut :class:`~repro.obs.CutPolicy`,
    the root-model :class:`~repro.obs.PresolvePolicy`, and the
    ``warm_start`` node-LP toggle)
    belong on ``policy.solver`` (:class:`~repro.obs.SolverOptions`), which
    serializes with the policy and reaches the fingerprint through its
    cache token.
    """

    kind: str
    soc: str
    widths: tuple[int, ...] | None = None
    total_width: int | None = None
    num_buses: int | None = None
    time_budget: float | None = None
    max_buses: int | None = None
    timing: str = "serial"
    power_budget: float | None = None
    max_pair_distance: float | None = None
    backend: str = "bnb"
    policy: SolvePolicy | None = None
    jobs: int = 1
    options: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValidationError(
                f"unknown request kind {self.kind!r}; expected one of {list(REQUEST_KINDS)}"
            )
        if not self.soc or not isinstance(self.soc, str):
            raise ValidationError(f"soc must be a non-empty spec string, got {self.soc!r}")
        if self.timing not in _TIMINGS:
            raise ValidationError(
                f"unknown timing model {self.timing!r}; expected one of {list(_TIMINGS)}"
            )
        if self.widths is not None:
            object.__setattr__(self, "widths", tuple(int(w) for w in self.widths))
        if isinstance(self.options, Mapping):
            object.__setattr__(self, "options", tuple(sorted(self.options.items())))
        else:
            object.__setattr__(self, "options", tuple(sorted(tuple(self.options))))
        if self.policy is not None and not isinstance(self.policy, SolvePolicy):
            raise ValidationError(
                f"policy must be a SolvePolicy or None, got {type(self.policy).__name__}"
            )
        missing = [
            name for name in _REQUIRED[self.kind] if getattr(self, name) is None
        ]
        if missing:
            raise ValidationError(
                f"{self.kind} request is missing required field(s): {', '.join(missing)}"
            )
        for name in ("total_width", "num_buses", "max_buses", "jobs"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValidationError(f"{name} must be positive, got {value}")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValidationError(f"time_budget must be positive, got {self.time_budget}")
        if self.widths is not None and (
            not self.widths or any(w <= 0 for w in self.widths)
        ):
            raise ValidationError(f"widths must be positive, got {self.widths}")

    # ------------------------------------------------------------ fingerprint
    def cache_token(self) -> str:
        """Canonical text of every result-affecting field (the protocol).

        ``jobs`` is excluded: fan-out affects wall time, never the answer.
        """
        fields = (
            ("kind", self.kind),
            ("soc", self.soc),
            ("widths", self.widths),
            ("total_width", self.total_width),
            ("num_buses", self.num_buses),
            ("time_budget", self.time_budget),
            ("max_buses", self.max_buses),
            ("timing", self.timing),
            ("power_budget", self.power_budget),
            ("max_pair_distance", self.max_pair_distance),
            ("options", dict(self.options)),
            ("backend", self.backend),
            ("policy", self.policy),
        )
        body = ",".join(f"{name}={cache_token_of(value)}" for name, value in fields)
        return f"request({body})"

    def fingerprint(self) -> str:
        """Content hash identifying this request for dedupe and caching."""
        return token_digest("repro-request-v1", self.cache_token())

    # -------------------------------------------------------------- execution
    def request_options(self) -> dict[str, Any]:
        """The solve-shaping knobs :meth:`run` forwards to the design flow.

        Everything in this mapping is covered by :meth:`cache_token` —
        flow rule D001 audits that a new knob added here cannot silently
        skip the fingerprint.
        """
        options: dict[str, Any] = dict(self.options)
        options["backend"] = self.backend
        if self.policy is not None:
            options["policy"] = self.policy
        return options

    def resolve(self) -> Soc:
        """The live :class:`~repro.soc.system.Soc` this request names."""
        return resolve_soc(self.soc)

    def problem(self) -> DesignProblem:
        """The single :class:`DesignProblem` of a ``design`` request."""
        if self.kind != "design":
            raise ValidationError(f"{self.kind} request does not define a single problem")
        soc = self.resolve()
        floorplan = grid_place(soc) if self.max_pair_distance is not None else None
        assert self.widths is not None
        return DesignProblem(
            soc=soc,
            arch=TamArchitecture(list(self.widths)),
            timing=self.timing,
            power_budget=self.power_budget,
            floorplan=floorplan,
            max_pair_distance=self.max_pair_distance,
        )

    def run(self):
        """Execute the request through the exact design flow.

        Returns the kind's native result object: :class:`TamDesign`,
        :class:`~repro.core.designer.ArchitectureSweepResult`,
        :class:`~repro.core.dual.WidthMinimization`, or a list of
        :class:`~repro.core.dual.BusCountPoint`.
        """
        options = self.request_options()
        backend = options.pop("backend")
        policy = options.pop("policy", None)
        if self.kind == "design":
            return design(self.problem(), backend=backend, policy=policy, **options)
        soc = self.resolve()
        floorplan = grid_place(soc) if self.max_pair_distance is not None else None
        if self.kind == "sweep":
            return design_best_architecture(
                soc,
                self.total_width,
                self.num_buses,
                timing=self.timing,
                power_budget=self.power_budget,
                floorplan=floorplan,
                max_pair_distance=self.max_pair_distance,
                backend=backend,
                policy=policy,
                **options,
            )
        if self.kind == "min_width":
            return minimize_width(
                soc,
                self.num_buses,
                self.time_budget,
                timing=self.timing,
                power_budget=self.power_budget,
                floorplan=floorplan,
                max_pair_distance=self.max_pair_distance,
                backend=backend,
                policy=policy,
                **options,
            )
        return explore_bus_counts(
            soc,
            self.total_width,
            self.max_buses,
            timing=self.timing,
            power_budget=self.power_budget,
            floorplan=floorplan,
            max_pair_distance=self.max_pair_distance,
            backend=backend,
            jobs=self.jobs,
            policy=policy,
            **options,
        )

    def run_payload(self) -> dict[str, Any]:
        """Execute and return the JSON-ready result the CLI and service emit."""
        return self.result_payload(self.run())

    def result_payload(self, result) -> dict[str, Any]:
        """JSON-ready view of ``result`` for this request's kind."""
        if self.kind == "design":
            return self._design_payload(result)
        if self.kind == "sweep":
            payload = {
                "kind": "sweep",
                "soc": result.soc_name,
                "total_width": result.total_width,
                "num_buses": result.num_buses,
                "evaluated": result.evaluated,
                "infeasible": result.infeasible,
                "pruned": result.pruned,
                "per_architecture": [
                    [list(arch.widths), makespan]
                    for arch, makespan in result.per_architecture
                ],
                "telemetry": result.telemetry.as_dict(),
                "best": self._design_payload(result.best) if result.best else None,
            }
            return payload
        if self.kind == "min_width":
            return {
                "kind": "min_width",
                "time_budget": result.time_budget,
                "num_buses": result.num_buses,
                "min_width": result.min_width,
                "evaluated_widths": [list(pair) for pair in result.evaluated_widths],
                "design": self._design_payload(result.design),
            }
        return {
            "kind": "bus_count",
            "points": [
                {
                    "num_buses": point.num_buses,
                    "makespan": point.makespan,
                    "widths": list(point.arch_widths) if point.arch_widths else None,
                }
                for point in result
            ],
        }

    def _design_payload(self, result: TamDesign) -> dict[str, Any]:
        soc = result.problem.soc
        payload = {
            "kind": "design",
            "soc": soc.name,
            "widths": list(result.arch.widths),
            "timing": self.timing,
            "constraints": result.problem.constraint_summary(),
            "status": result.status.value,
            "makespan": result.makespan,
            "bus_times": result.bus_times,
            "wirelength": result.wirelength,
            "backend": result.backend,
            "provenance": result.provenance,
            "assignment": {
                core.name: int(bus)
                for core, bus in zip(soc.cores, result.assignment.bus_of)
            },
            "stats": result.stats.as_dict(),
        }
        if result.fallback is not None:
            payload["fallback"] = result.fallback.as_dict()
        if result.portfolio is not None:
            payload["portfolio"] = result.portfolio.as_dict()
        return payload

    # ------------------------------------------------------------- transport
    def with_overrides(self, **changes) -> "SolveRequest":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def as_payload(self) -> dict[str, Any]:
        """JSON-ready wire form (see :meth:`from_payload`)."""
        payload: dict[str, Any] = {"kind": self.kind, "soc": self.soc}
        for name in (
            "widths",
            "total_width",
            "num_buses",
            "time_budget",
            "max_buses",
            "power_budget",
            "max_pair_distance",
        ):
            value = getattr(self, name)
            if value is not None:
                payload[name] = list(value) if isinstance(value, tuple) else value
        if self.timing != "serial":
            payload["timing"] = self.timing
        if self.backend != "bnb":
            payload["backend"] = self.backend
        if self.jobs != 1:
            payload["jobs"] = self.jobs
        if self.options:
            payload["options"] = dict(self.options)
        if self.policy is not None:
            payload["policy"] = self.policy.as_dict()
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SolveRequest":
        """Parse the wire form, rejecting unknown keys loudly."""
        if not isinstance(payload, Mapping):
            raise ValidationError(
                f"request payload must be a JSON object, got {type(payload).__name__}"
            )
        data = dict(payload)
        known = {
            "kind",
            "soc",
            "widths",
            "total_width",
            "num_buses",
            "time_budget",
            "max_buses",
            "timing",
            "power_budget",
            "max_pair_distance",
            "backend",
            "policy",
            "jobs",
            "options",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(f"unknown request field(s): {', '.join(unknown)}")
        if "kind" not in data or "soc" not in data:
            raise ValidationError("request payload requires 'kind' and 'soc'")
        policy = data.get("policy")
        if isinstance(policy, Mapping):
            data["policy"] = SolvePolicy.from_dict(policy)
        options = data.get("options")
        if options is not None and not isinstance(options, Mapping):
            raise ValidationError("options must be a JSON object of solver kwargs")
        if "widths" in data and data["widths"] is not None:
            data["widths"] = tuple(data["widths"])
        if options is None:
            data.pop("options", None)
        return cls(**data)
