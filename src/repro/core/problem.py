"""The constrained design problem specification.

A :class:`DesignProblem` bundles everything the DAC 2000 formulation needs
and resolves the two constraint families into explicit core-pair sets:

- **forced pairs** (must share a bus) from the power budget: every pair with
  ``p_i + p_k > P_max``;
- **forbidden pairs** (must not share a bus) from the floorplan: every pair
  with Manhattan distance above the layout budget ``delta``.

Callers may add further pairs of either kind directly (e.g. a hard IP whose
test bus is predetermined). ``validate(assignment)`` independently checks a
candidate solution against every rule — the experiment harness certifies all
solver output through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.layout.constraints import forbidden_pairs_by_distance
from repro.layout.floorplan import Floorplan
from repro.power.model import conflict_pairs
from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.tam.assignment import Assignment
from repro.tam.timing import TimingModel, make_timing_model
from repro.util.errors import ValidationError

Pair = tuple[int, int]


def _normalize_pairs(pairs, num_cores: int, label: str) -> tuple[Pair, ...]:
    seen = set()
    for a, b in pairs:
        if not (0 <= a < num_cores and 0 <= b < num_cores):
            raise ValidationError(f"{label} pair ({a}, {b}) references a core outside 0..{num_cores - 1}")
        if a == b:
            raise ValidationError(f"{label} pair ({a}, {b}) relates a core to itself")
        seen.add((min(a, b), max(a, b)))
    return tuple(sorted(seen))


@dataclass
class DesignProblem:
    """One instance of the constrained TAM design problem.

    Parameters
    ----------
    soc / arch / timing:
        The system, the candidate bus architecture, and the ``t_ij`` model
        (a :class:`TimingModel` or its short name).
    power_budget:
        ``P_max`` in mW, or None for no power constraints.
    floorplan / max_pair_distance:
        Physical placement and the layout budget ``delta`` (mm). Both must
        be given for layout constraints to apply; a floorplan alone is used
        only for wirelength reporting.
    extra_forbidden / extra_forced:
        Additional explicit pair constraints (core indices).
    """

    soc: Soc
    arch: TamArchitecture
    timing: TimingModel | str = "fixed"
    power_budget: float | None = None
    floorplan: Floorplan | None = None
    max_pair_distance: float | None = None
    extra_forbidden: tuple[Pair, ...] = field(default_factory=tuple)
    extra_forced: tuple[Pair, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if isinstance(self.timing, str):
            self.timing = make_timing_model(self.timing)
        if self.power_budget is not None and self.power_budget <= 0:
            raise ValidationError(f"power budget must be positive, got {self.power_budget}")
        if self.max_pair_distance is not None:
            if self.max_pair_distance < 0:
                raise ValidationError(
                    f"distance budget must be non-negative, got {self.max_pair_distance}"
                )
            if self.floorplan is None:
                raise ValidationError("max_pair_distance requires a floorplan")
        if self.floorplan is not None and self.floorplan.soc is not self.soc:
            if self.floorplan.soc.core_names != self.soc.core_names:
                raise ValidationError("floorplan belongs to a different SOC")
        n = len(self.soc)
        self.extra_forbidden = _normalize_pairs(self.extra_forbidden, n, "forbidden")
        self.extra_forced = _normalize_pairs(self.extra_forced, n, "forced")

    # ------------------------------------------------------------- resolved
    @cached_property
    def times(self) -> np.ndarray:
        """The dense ``t_ij`` matrix (inf where a core cannot use a bus)."""
        return self.timing.matrix(self.soc, self.arch)

    @cached_property
    def forbidden_pairs(self) -> tuple[Pair, ...]:
        """Must-not-share pairs: layout-derived plus explicit extras."""
        pairs = list(self.extra_forbidden)
        if self.floorplan is not None and self.max_pair_distance is not None:
            pairs.extend(forbidden_pairs_by_distance(self.floorplan, self.max_pair_distance))
        return _normalize_pairs(pairs, len(self.soc), "forbidden")

    @cached_property
    def forced_pairs(self) -> tuple[Pair, ...]:
        """Must-share pairs: power-derived plus explicit extras."""
        pairs = list(self.extra_forced)
        if self.power_budget is not None:
            pairs.extend(conflict_pairs(self.soc, self.power_budget))
        return _normalize_pairs(pairs, len(self.soc), "forced")

    def contradictions(self) -> list[Pair]:
        """Pairs that are simultaneously forced and forbidden.

        Any such pair makes the instance infeasible outright: the power
        budget demands the cores serialize on one bus while the layout
        budget forbids them from sharing one. (Forced pairs are also closed
        transitively before intersecting, since sharing is transitive.)
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.soc)))
        graph.add_edges_from(self.forced_pairs)
        closure = set()
        for component in nx.connected_components(graph):
            members = sorted(component)
            for idx, a in enumerate(members):
                for b in members[idx + 1 :]:
                    closure.add((a, b))
        return sorted(closure & set(self.forbidden_pairs))

    def lint(self):
        """Static pre-formulation checks (rules ``P0xx``); returns a
        :class:`~repro.analysis.diagnostics.LintReport`.

        Catches instance pathologies — contradictory pair budgets, cores
        that fit no bus, single cores hotter than the power budget — in
        core/bus vocabulary before an ILP row is ever built.
        """
        from repro.analysis.problem_lint import check_problem

        return check_problem(self)

    # ------------------------------------------------------------ validation
    def validate(self, assignment: Assignment) -> list[str]:
        """Return human-readable violations of ``assignment`` (empty = valid)."""
        problems = []
        if assignment.soc is not self.soc and assignment.soc.core_names != self.soc.core_names:
            problems.append("assignment covers a different SOC")
            return problems
        if assignment.arch != self.arch:
            problems.append(f"assignment uses {assignment.arch}, problem uses {self.arch}")
            return problems
        names = self.soc.core_names
        for i, core in enumerate(self.soc):
            bus = assignment.bus_of[i]
            if not np.isfinite(self.times[i][bus]):
                problems.append(
                    f"core {core.name} on bus {bus} (w={self.arch.width_of(bus)}) "
                    f"is width-infeasible under the {self.timing.name} model"
                )
        for a, b in self.forbidden_pairs:
            if assignment.shares_bus(a, b):
                problems.append(f"forbidden pair ({names[a]}, {names[b]}) shares bus {assignment.bus_of[a]}")
        for a, b in self.forced_pairs:
            if not assignment.shares_bus(a, b):
                problems.append(
                    f"forced pair ({names[a]}, {names[b]}) split across buses "
                    f"{assignment.bus_of[a]} and {assignment.bus_of[b]}"
                )
        return problems

    def is_feasible_assignment(self, assignment: Assignment) -> bool:
        return not self.validate(assignment)

    # -------------------------------------------------------------- reporting
    def constraint_summary(self) -> str:
        parts = [f"{len(self.soc)} cores on {self.arch}", f"timing={self.timing.name}"]
        if self.power_budget is not None:
            parts.append(f"P_max={self.power_budget:g}mW ({len(self.forced_pairs)} forced pairs)")
        if self.max_pair_distance is not None:
            parts.append(
                f"delta={self.max_pair_distance:g}mm ({len(self.forbidden_pairs)} forbidden pairs)"
            )
        return ", ".join(parts)

    def makespan_lower_bound(self) -> float:
        """Simple certified bound: max over cores of their fastest bus time."""
        per_core_best = np.min(self.times, axis=1)
        return float(np.max(per_core_best))
