"""Tradeoff sweeps behind the evaluation's figures.

Each sweep drives the exact designer across one budget axis and returns
plain row records ready for tabulation:

- :func:`width_sweep` — testing time vs total TAM width (figure F1);
- :func:`power_budget_sweep` — testing time vs ``P_max`` (figure F2);
- :func:`distance_budget_sweep` — testing time and TAM wirelength vs the
  layout budget ``delta`` (figure F3), including the Pareto frontier.

Infeasible budget points are kept in the output with ``makespan=None`` so
the harness can report where the feasible region ends.

Every sweep accepts ``jobs``: points are independent instances, so they fan
out across worker processes via :func:`repro.runtime.run_parallel` while
the returned list keeps budget order (``jobs=1``, the default, is the
deterministic serial path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.designer import design, design_best_architecture
from repro.core.problem import DesignProblem
from repro.obs import SolvePolicy
from repro.layout.constraints import distance_sweep_points
from repro.layout.floorplan import Floorplan
from repro.power.model import budget_sweep_points
from repro.runtime.parallel import run_parallel
from repro.runtime.telemetry import RunTelemetry
from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.tam.timing import TimingModel
from repro.util.errors import InfeasibleError


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample. ``budget`` is W, P_max, or delta depending on axis.

    ``telemetry`` carries the solver work behind the point (None for points
    rejected before any solve, e.g. ``W < NB``).
    """

    budget: float
    makespan: float | None
    wirelength: float | None = None
    detail: str = ""
    telemetry: RunTelemetry | None = field(default=None, compare=False)

    @property
    def feasible(self) -> bool:
        return self.makespan is not None


def _width_point(payload: tuple) -> SweepPoint:
    """Worker: one width budget of :func:`width_sweep` (module-level for pickling)."""
    soc, width, num_buses, timing, backend, policy, solver_options = payload
    if width < num_buses:
        return SweepPoint(width, None, detail="W < NB")
    sweep = design_best_architecture(
        soc, width, num_buses, timing=timing, backend=backend, policy=policy,
        **solver_options,
    )
    if sweep.best is None:
        return SweepPoint(
            width, None, detail="all distributions infeasible", telemetry=sweep.telemetry
        )
    return SweepPoint(
        width, sweep.best_makespan, detail=str(sweep.best.arch), telemetry=sweep.telemetry
    )


def width_sweep(
    soc: Soc,
    num_buses: int,
    total_widths: list[int],
    timing: TimingModel | str = "serial",
    backend: str = "bnb",
    jobs: int = 1,
    policy: SolvePolicy | None = None,
    **solver_options,
) -> list[SweepPoint]:
    """Best achievable testing time for each total TAM width budget.

    Uses the full width-distribution enumeration per budget, so each point
    is the true optimum for (W, NB). ``jobs > 1`` fans the budgets across
    worker processes; the returned points keep the input width order.
    ``policy`` (a :class:`~repro.obs.SolvePolicy`) caps each point's solve.
    Extra keyword options (``presolve``, ``branching``, ``gap_tol``, ...)
    are forwarded to every point's solve — they must be picklable.
    """
    payloads = [
        (soc, width, num_buses, timing, backend, policy, solver_options)
        for width in total_widths
    ]
    return run_parallel(_width_point, payloads, max_workers=jobs)


def _power_point(payload: tuple) -> SweepPoint:
    """Worker: one power budget of :func:`power_budget_sweep`."""
    soc, arch, timing, budget, backend, policy, solver_options = payload
    problem = DesignProblem(soc=soc, arch=arch, timing=timing, power_budget=budget)
    try:
        result = design(problem, backend=backend, policy=policy, **solver_options)
    except InfeasibleError as exc:
        return SweepPoint(budget, None, detail=str(exc.reason or "infeasible"))
    telemetry = RunTelemetry()
    telemetry.record(result.stats)
    telemetry.record_fallback(result.fallback)
    return SweepPoint(
        budget,
        result.makespan,
        detail=f"{len(problem.forced_pairs)} forced pairs",
        telemetry=telemetry,
    )


def power_budget_sweep(
    soc: Soc,
    arch: TamArchitecture,
    timing: TimingModel | str = "fixed",
    budgets: list[float] | None = None,
    backend: str = "bnb",
    jobs: int = 1,
    policy: SolvePolicy | None = None,
    **solver_options,
) -> list[SweepPoint]:
    """Optimal testing time as the power budget tightens.

    Defaults to sweeping exactly the budgets where the conflict-pair set
    changes (plus the unconstrained endpoint), tracing the full staircase.
    ``jobs > 1`` solves the budgets in parallel, preserving sorted order.
    """
    if budgets is None:
        budgets = budget_sweep_points(soc)
        top = budgets[-1] if budgets else 0.0
        budgets = budgets + [top * 1.1 + 1.0]
    payloads = [
        (soc, arch, timing, budget, backend, policy, solver_options)
        for budget in sorted(budgets)
    ]
    return run_parallel(_power_point, payloads, max_workers=jobs)


def _distance_point(payload: tuple) -> SweepPoint:
    """Worker: one layout budget of :func:`distance_budget_sweep`."""
    (soc, arch, floorplan, timing, delta, backend,
     wirelength_method, policy, solver_options) = payload
    problem = DesignProblem(
        soc=soc,
        arch=arch,
        timing=timing,
        floorplan=floorplan,
        max_pair_distance=delta,
    )
    try:
        result = design(
            problem, backend=backend, wirelength_method=wirelength_method, policy=policy,
            **solver_options,
        )
    except InfeasibleError as exc:
        return SweepPoint(delta, None, detail=str(exc.reason or "infeasible"))
    telemetry = RunTelemetry()
    telemetry.record(result.stats)
    telemetry.record_fallback(result.fallback)
    return SweepPoint(
        delta,
        result.makespan,
        wirelength=result.wirelength,
        detail=f"{len(problem.forbidden_pairs)} forbidden pairs",
        telemetry=telemetry,
    )


def distance_budget_sweep(
    soc: Soc,
    arch: TamArchitecture,
    floorplan: Floorplan,
    timing: TimingModel | str = "fixed",
    deltas: list[float] | None = None,
    backend: str = "bnb",
    wirelength_method: str = "chain",
    jobs: int = 1,
    policy: SolvePolicy | None = None,
    **solver_options,
) -> list[SweepPoint]:
    """Testing time and TAM wirelength as the layout budget tightens.

    Defaults to the floorplan's own distance change points (descending).
    Returned wirelength is the width-weighted routing cost of the optimal
    design at each budget. ``jobs > 1`` solves the budgets in parallel,
    preserving delta order.
    """
    if deltas is None:
        sweep = distance_sweep_points(floorplan)
        top = floorplan.spread()
        deltas = [top * 1.01] + sweep
    payloads = [
        (soc, arch, floorplan, timing, delta, backend, wirelength_method, policy,
         solver_options)
        for delta in deltas
    ]
    return run_parallel(_distance_point, payloads, max_workers=jobs)


def pareto_front(points: list[SweepPoint]) -> list[SweepPoint]:
    """Non-dominated (makespan, wirelength) subset of a distance sweep.

    A point dominates another if it is no worse on both axes and strictly
    better on one. Returned sorted by makespan ascending.
    """
    feasible = [p for p in points if p.feasible and p.wirelength is not None]
    front = []
    for p in feasible:
        dominated = any(
            (q.makespan <= p.makespan and q.wirelength <= p.wirelength)
            and (q.makespan < p.makespan or q.wirelength < p.wirelength)
            for q in feasible
        )
        if not dominated:
            front.append(p)
    unique = {}
    for p in sorted(front, key=lambda q: (q.makespan, q.wirelength)):
        unique.setdefault((p.makespan, p.wirelength), p)
    return list(unique.values())
