"""Test power modeling and power-compatibility analysis.

The paper's power constraint: cores tested **concurrently** (i.e. assigned
to different test buses) must never jointly exceed the system test power
budget ``P_max``. Its conservative linear encoding forces every
*incompatible pair* (``p_i + p_k > P_max``) onto the same bus, where the
serial schedule separates them in time.

This subpackage provides the analysis around that encoding:

- conflict pairs / conflict graph / merged power groups;
- bounds on meaningful budgets (below ``max_i p_i`` nothing is schedulable;
  above ``max pairwise sum`` the constraint never binds — with the pairwise
  encoding, higher-order sums are intentionally out of scope, as in the
  paper);
- instantaneous power profiles of concrete schedules, used to *verify* that
  designed architectures actually respect the budget over time.
"""

from repro.power.model import (
    conflict_pairs,
    conflict_graph,
    power_groups,
    min_meaningful_budget,
    max_meaningful_budget,
    budget_sweep_points,
    max_clique_power,
)
from repro.power.profile import PowerProfile, profile_from_intervals

__all__ = [
    "conflict_pairs",
    "conflict_graph",
    "power_groups",
    "min_meaningful_budget",
    "max_meaningful_budget",
    "budget_sweep_points",
    "max_clique_power",
    "PowerProfile",
    "profile_from_intervals",
]
