"""Instantaneous power profiles of concrete test schedules.

The ILP's pairwise encoding is conservative in one direction (it may forbid
concurrency that a clever schedule could allow) and optimistic in another
(three mutually compatible cores can jointly exceed the budget). The
experiment harness therefore *verifies* every designed schedule by sweeping
its actual power-over-time profile, reporting the true peak.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.util.errors import ValidationError

#: (label, start_cycle, end_cycle, power_mW)
Interval = tuple[str, float, float, float]


@dataclass(frozen=True)
class PowerProfile:
    """A piecewise-constant power waveform.

    ``steps`` holds ``(time, power)`` change points sorted by time: the
    system dissipates ``power`` from that time until the next step.
    """

    steps: tuple[tuple[float, float], ...]

    @property
    def peak(self) -> float:
        """Maximum instantaneous power."""
        return max((power for _, power in self.steps), default=0.0)

    @property
    def end_time(self) -> float:
        return self.steps[-1][0] if self.steps else 0.0

    def power_at(self, time: float) -> float:
        """Instantaneous power at ``time`` (0 before the first step)."""
        current = 0.0
        for step_time, power in self.steps:
            if step_time > time:
                break
            current = power
        return current

    def energy(self) -> float:
        """Integral of power over time (mW x cycles)."""
        total = 0.0
        for (t0, p0), (t1, _) in zip(self.steps, self.steps[1:]):
            total += p0 * (t1 - t0)
        return total

    def violations(self, budget: float) -> list[tuple[float, float]]:
        """Return ``(time, power)`` steps where power exceeds ``budget``."""
        return [(t, p) for t, p in self.steps if p > budget + 1e-9]

    def respects(self, budget: float) -> bool:
        return not self.violations(budget)


def profile_from_intervals(intervals: Iterable[Interval]) -> PowerProfile:
    """Build the power waveform of overlapping test intervals.

    Each interval contributes its power between start and end. Zero-length
    intervals are ignored; negative durations are rejected.
    """
    events: list[tuple[float, float]] = []
    for label, start, end, power in intervals:
        if end < start:
            raise ValidationError(f"interval {label!r} ends before it starts ({start} > {end})")
        if power < 0:
            raise ValidationError(f"interval {label!r} has negative power {power}")
        if end == start:
            continue
        events.append((start, power))
        events.append((end, -power))
    if not events:
        return PowerProfile(())
    events.sort()
    steps: list[tuple[float, float]] = []
    current = 0.0
    index = 0
    while index < len(events):
        time = events[index][0]
        while index < len(events) and events[index][0] == time:
            current += events[index][1]
            index += 1
        # Clamp float residue so profiles of exactly-cancelling intervals end at 0.
        if abs(current) < 1e-9:
            current = 0.0
        steps.append((time, current))
    return PowerProfile(tuple(steps))
