"""Pairwise power-compatibility analysis."""

from __future__ import annotations

import itertools

import networkx as nx

from repro.soc.system import Soc
from repro.util.errors import ValidationError


def _check_budget(p_max: float) -> None:
    if p_max <= 0:
        raise ValidationError(f"power budget must be positive, got {p_max}")


def conflict_pairs(soc: Soc, p_max: float) -> list[tuple[int, int]]:
    """Core index pairs whose joint power exceeds ``p_max``.

    These are exactly the pairs the paper's ILP forces onto a common bus.
    """
    _check_budget(p_max)
    pairs = []
    for i, j in itertools.combinations(range(len(soc)), 2):
        if soc.cores[i].test_power + soc.cores[j].test_power > p_max:
            pairs.append((i, j))
    return pairs


def conflict_graph(soc: Soc, p_max: float) -> nx.Graph:
    """Graph over core indices with an edge per incompatible pair."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(soc)))
    graph.add_edges_from(conflict_pairs(soc, p_max))
    return graph


def power_groups(soc: Soc, p_max: float) -> list[set[int]]:
    """Connected components of the conflict graph with 2+ cores.

    Forcing each conflicting pair onto one bus transitively merges whole
    components: every core in a returned group must end up on the same bus.
    The groups bound how much concurrency a budget leaves available.
    """
    graph = conflict_graph(soc, p_max)
    return [comp for comp in nx.connected_components(graph) if len(comp) > 1]


def min_meaningful_budget(soc: Soc) -> float:
    """Smallest budget any schedule can respect: the hungriest single core.

    At some instant that core is under test by itself, so no architecture
    can meet a budget below its power.
    """
    return max(core.test_power for core in soc.cores)


def max_meaningful_budget(soc: Soc) -> float:
    """Budget above which the pairwise constraint never binds.

    Equal to the largest pairwise power sum; any ``P_max`` at or above it
    yields the unconstrained problem. (With the paper's pairwise encoding,
    triple-and-higher sums are deliberately not constrained.)
    """
    if len(soc) < 2:
        return min_meaningful_budget(soc)
    powers = sorted((core.test_power for core in soc.cores), reverse=True)
    return powers[0] + powers[1]


def budget_sweep_points(soc: Soc, include_endpoints: bool = True) -> list[float]:
    """Budgets at which the conflict-pair set changes (sorted ascending).

    The constraint set is a step function of ``P_max`` that changes exactly
    at the pairwise sums; sweeping these points traces the full testing-time
    versus budget staircase with no redundant solves.
    """
    # Exact float sums: at budget == sum the pair is compatible (strict >),
    # so each sweep point is the first budget at which that pair relaxes.
    sums = {
        soc.cores[i].test_power + soc.cores[j].test_power
        for i, j in itertools.combinations(range(len(soc)), 2)
    }
    points = sorted(sums)
    if include_endpoints:
        low = min_meaningful_budget(soc)
        points = [p for p in points if p >= low]
        if not points or points[0] > low:
            points.insert(0, low)
    return points


def max_clique_power(soc: Soc, p_max: float) -> float:
    """Largest joint power over cliques of the *compatibility* graph.

    A clique of pairwise-compatible cores is a candidate concurrent set; its
    total power can exceed ``p_max`` even though every pair is fine — the
    known conservatism gap of the pairwise model. Experiment T3 reports this
    to quantify the gap. Exponential in principle; fine at benchmark sizes.
    """
    _check_budget(p_max)
    compat = nx.complement(conflict_graph(soc, p_max))
    best = min_meaningful_budget(soc)
    for clique in nx.find_cliques(compat):
        total = sum(soc.cores[i].test_power for i in clique)
        best = max(best, total)
    return best
