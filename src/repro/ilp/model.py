"""The MILP model container.

A :class:`Model` owns variables and constraints, exports the matrix form used
by the LP/B&B machinery, and fronts the solver backends:

- ``model.solve()`` — our branch and bound (default), pure Python + numpy;
- ``model.solve(backend="scipy")`` — ``scipy.optimize.milp`` (HiGHS), used to
  cross-validate results in the test suite;
- ``model.solve_relaxation()`` — the LP relaxation only.

Objectives are always stored internally as *minimization*; ``maximize``
negates on the way in and the solution objective is reported in the caller's
original sense.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ilp.expr import (
    BINARY,
    EQ,
    GE,
    LE,
    Constraint,
    LinExpr,
    Variable,
    VarType,
)
from repro.ilp.solution import Solution
from repro.obs import SolvePolicy, get_metrics, span
from repro.util.errors import TransientSolverError, ValidationError

_INF = math.inf

#: Solver backends by name. Each entry is ``fn(model, **options) -> Solution``;
#: :func:`register_backend` adds custom entries (fault-injection harnesses,
#: external solvers) without touching this module.
_BACKENDS: dict[str, Callable[..., Solution]] = {}


def _solve_bnb(model: "Model", **options) -> Solution:
    from repro.ilp.branch_and_bound import BranchAndBoundSolver

    return BranchAndBoundSolver(model, **options).solve()


def _solve_scipy(model: "Model", **options) -> Solution:
    from repro.ilp.scipy_backend import solve_with_scipy

    return solve_with_scipy(model, **options)


_BACKENDS["bnb"] = _solve_bnb
_BACKENDS["scipy"] = _solve_scipy


def register_backend(name: str, solver: Callable[..., Solution]) -> None:
    """Register a custom solver backend under ``name``.

    ``solver`` is called as ``solver(model, **options)`` and must return a
    :class:`~repro.ilp.solution.Solution`. The built-in names ``"bnb"`` and
    ``"scipy"`` cannot be replaced — shadowing the exact backends would
    silently change every experiment's answers.
    """
    if name in ("bnb", "scipy"):
        raise ValueError(f"cannot replace built-in backend {name!r}")
    if not callable(solver):
        raise TypeError(f"solver for backend {name!r} must be callable")
    _BACKENDS[name] = solver


def unregister_backend(name: str) -> None:
    """Remove a custom backend registered via :func:`register_backend`."""
    if name in ("bnb", "scipy"):
        raise ValueError(f"cannot remove built-in backend {name!r}")
    _BACKENDS.pop(name, None)


def _reject_legacy_limits(options: dict) -> None:
    """The PR-3 ``node_limit``/``time_limit`` shims are gone: a
    :class:`SolvePolicy` is the only way to bound a solve's effort. Direct
    kwargs are rejected (not forwarded) so the budget can never bypass the
    policy cache-token in the solve fingerprint."""
    legacy = [name for name in ("node_limit", "time_limit") if name in options]
    if legacy:
        raise TypeError(
            f"{'/'.join(legacy)} kwargs were removed; pass "
            "policy=SolvePolicy(node_budget=..., deadline=...) instead"
        )


@dataclass
class MatrixForm:
    """Dense matrix export of a model, in minimization sense.

    ``A_ub x <= b_ub``, ``A_eq x = b_eq``, ``lb <= x <= ub``; ``c`` is the
    objective vector and ``c0`` its constant offset. ``integer_mask`` flags
    integer-constrained columns.
    """

    c: np.ndarray
    c0: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integer_mask: np.ndarray

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective = LinExpr()
        self._sense = "min"
        self._var_names: set[str] = set()

    # ------------------------------------------------------------------ vars
    def add_var(
        self,
        name: str | None = None,
        lb: float = 0.0,
        ub: float = _INF,
        vartype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a decision variable.

        Binary variables get implied bounds [0, 1]; explicit tighter bounds
        are honoured (e.g. fixing a binary with ``lb=1``).
        """
        index = len(self.variables)
        if name is None:
            name = f"x{index}"
        if name in self._var_names:
            raise ValidationError(f"duplicate variable name {name!r} in model {self.name!r}")
        if vartype is VarType.BINARY:
            lb = max(lb, 0.0)
            ub = min(ub, 1.0)
        if lb > ub:
            raise ValidationError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(name, index, float(lb), float(ub), vartype, id(self))
        self.variables.append(var)
        self._var_names.add(name)
        return var

    def add_vars(self, count: int, prefix: str = "x", **kwargs) -> list[Variable]:
        """Create ``count`` variables named ``prefix0 .. prefix{count-1}``."""
        return [self.add_var(f"{prefix}{i}", **kwargs) for i in range(count)]

    def add_binary(self, name: str | None = None) -> Variable:
        """Shorthand for a 0/1 variable."""
        return self.add_var(name, vartype=BINARY)

    # ----------------------------------------------------------- constraints
    def add_constr(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (built from a comparison of "
                f"linear expressions); got {type(constraint).__name__}"
            )
        for var in constraint.terms:
            self._check_ownership(var)
        if name is not None:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints, prefix: str | None = None) -> list[Constraint]:
        """Register an iterable of constraints, optionally auto-naming them."""
        added = []
        for i, constr in enumerate(constraints):
            name = f"{prefix}{i}" if prefix else None
            added.append(self.add_constr(constr, name=name))
        return added

    # -------------------------------------------------------------- objective
    def minimize(self, expr: LinExpr | Variable) -> None:
        self._set_objective(expr, "min")

    def maximize(self, expr: LinExpr | Variable) -> None:
        self._set_objective(expr, "max")

    def _set_objective(self, expr: LinExpr | Variable, sense: str) -> None:
        expr = LinExpr._coerce(expr)
        for var in expr.terms:
            self._check_ownership(var)
        self._objective = expr
        self._sense = sense

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def sense(self) -> str:
        return self._sense

    def _check_ownership(self, var: Variable) -> None:
        if var._model_id != id(self):
            raise ValidationError(
                f"variable {var.name!r} belongs to a different model; "
                "expressions cannot mix variables across models"
            )

    # ------------------------------------------------------------------ stats
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def summary(self) -> str:
        """One-line description used in experiment logs."""
        return (
            f"{self.name}: {self.num_vars} vars "
            f"({self.num_integer_vars} integer), {self.num_constraints} constraints"
        )

    # --------------------------------------------------------------- export
    def to_matrix_form(self) -> MatrixForm:
        """Export dense arrays in minimization sense for the LP machinery."""
        n = self.num_vars
        sign = 1.0 if self._sense == "min" else -1.0
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            c[var.index] = sign * coef
        c0 = sign * self._objective.constant

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for constr in self.constraints:
            row = np.zeros(n)
            for var, coef in constr.terms.items():
                row[var.index] = coef
            if constr.sense == LE:
                ub_rows.append(row)
                ub_rhs.append(constr.rhs)
            elif constr.sense == GE:
                ub_rows.append(-row)
                ub_rhs.append(-constr.rhs)
            elif constr.sense == EQ:
                eq_rows.append(row)
                eq_rhs.append(constr.rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        integer_mask = np.array([v.is_integer for v in self.variables])
        return MatrixForm(
            c=c,
            c0=c0,
            a_ub=a_ub,
            b_ub=np.array(ub_rhs, dtype=float),
            a_eq=a_eq,
            b_eq=np.array(eq_rhs, dtype=float),
            lb=lb,
            ub=ub,
            integer_mask=integer_mask,
        )

    # ---------------------------------------------------------------- solving
    def lint(self):
        """Run the structural model linter (no solve); returns a LintReport."""
        from repro.analysis.model_lint import lint_model

        return lint_model(self)

    def solve(
        self,
        backend: str = "bnb",
        lint: str = "off",
        cache: "object | bool | None" = None,
        policy: SolvePolicy | None = None,
        **options,
    ) -> Solution:
        """Solve the model, exactly or under a bounded-effort policy.

        ``backend="bnb"`` uses :class:`~repro.ilp.branch_and_bound.
        BranchAndBoundSolver`; ``backend="scipy"`` uses HiGHS via
        ``scipy.optimize.milp``; other names resolve through
        :func:`register_backend`. Options are forwarded to the backend
        (``gap_tol``, ``dive``, ``cut_policy``, ``warm_start`` for bnb; the
        legacy ``root_cuts=N`` spelling still works one release behind a
        :class:`DeprecationWarning`).

        ``policy`` is a :class:`~repro.obs.SolvePolicy` bounding the solve:
        its deadline / node budget / gap tolerance map onto the backend's
        limits, and transient backend failures
        (:class:`~repro.util.errors.TransientSolverError`) are retried up
        to ``policy.max_retries`` times with exponential backoff. A capped
        solve can return ``Status.FEASIBLE`` (best incumbent) or
        ``Status.NODE_LIMIT`` (no incumbent found); the degradation ladder
        for the latter lives one level up in :func:`repro.core.design`.
        The removed legacy ``node_limit=`` / ``time_limit=`` kwargs raise
        :class:`TypeError` — a policy is the only effort path.

        ``lint`` gates the solve on the static model linter
        (:mod:`repro.analysis.model_lint`): ``"warn"`` prints findings to
        stderr and proceeds, ``"error"`` additionally raises
        :class:`~repro.util.errors.LintError` when any error-severity
        finding exists, ``"off"`` (default) skips the pass entirely.

        ``cache`` routes the solve through the runtime solution cache
        (:mod:`repro.runtime.cache`): a
        :class:`~repro.runtime.cache.SolutionCache` uses that store, ``None``
        (default) consults the process-active cache installed via
        ``use_cache``/``set_solve_cache`` (no caching if none is active), and
        ``False`` bypasses caching even when a cache is active. Cached
        solutions are bit-identical to the original solve and carry
        ``cache_hit=True``. The cache key covers the *effective* policy
        budgets, so a truncated solve never masquerades as an uncapped one.
        """
        if lint not in ("off", "warn", "error"):
            raise ValueError(f"lint must be 'off', 'warn' or 'error', got {lint!r}")
        if lint != "off":
            report = self.lint()
            if len(report):
                import sys

                print(report.render(f"lint: model {self.name!r}"), file=sys.stderr)
            if lint == "error" and report.has_errors:
                from repro.util.errors import LintError

                raise LintError(
                    f"model {self.name!r} failed lint with "
                    f"{len(report.errors)} error(s); first: "
                    f"{report.errors[0].render()}",
                    report=report,
                )
        _reject_legacy_limits(options)
        effective = dict(options)
        if policy is not None:
            # Policy budgets win over ad-hoc options: the policy is the one
            # authoritative statement of how hard this solve may try.
            effective.update(policy.backend_options(backend))

        from repro.runtime.cache import resolve_cache

        store = resolve_cache(cache)
        key = None
        if store is not None:
            key_options = dict(effective)
            if policy is not None and policy.is_capped:
                key_options["_policy"] = policy.cache_token()
            with span("cache_lookup"):
                key = store.fingerprint(
                    self.to_matrix_form(), backend=backend, options=key_options
                )
                cached = store.get_solution(key, self)
            if cached is not None:
                return cached

        solver = _BACKENDS.get(backend)
        if solver is None:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
            )
        solution = self._solve_with_retries(solver, backend, effective, policy)
        if store is not None and key is not None:
            store.put_solution(key, solution, self.num_vars)
        return solution

    def _solve_with_retries(
        self,
        solver: Callable[..., Solution],
        backend: str,
        options: dict,
        policy: SolvePolicy | None,
    ) -> Solution:
        """Run the backend, retrying transient failures per the policy."""
        max_retries = policy.max_retries if policy is not None else 0
        backoff = policy.retry_backoff if policy is not None else 0.0
        attempt = 0
        while True:
            try:
                solution = solver(self, **options)
            except TransientSolverError:
                metrics = get_metrics()
                metrics.counter("solve.transient_errors").inc()
                if attempt >= max_retries:
                    raise
                if backoff > 0:
                    time.sleep(backoff * (2**attempt))
                attempt += 1
                metrics.counter("solve.retries").inc()
                continue
            solution.stats.retries = attempt
            return solution

    def solve_relaxation(self, method: str = "scipy") -> Solution:
        """Solve the LP relaxation (integrality dropped).

        ``method="scipy"`` uses HiGHS; ``method="simplex"`` uses our own
        two-phase simplex (slower, used for validation).
        """
        from repro.ilp.lp import solve_relaxation

        return solve_relaxation(self, method=method)

    def check_solution(self, values: dict[Variable, float], tol: float = 1e-6) -> list[str]:
        """Return a list of violation descriptions (empty = feasible).

        Checks bounds, integrality, and every constraint; used by tests and
        by experiment harnesses to certify solver output independently.
        """
        problems = []
        for var in self.variables:
            val = values.get(var)
            if val is None:
                problems.append(f"variable {var.name} has no value")
                continue
            if val < var.lb - tol or val > var.ub + tol:
                problems.append(f"variable {var.name}={val} outside [{var.lb}, {var.ub}]")
            if var.is_integer and abs(val - round(val)) > tol:
                problems.append(f"variable {var.name}={val} is not integral")
        for i, constr in enumerate(self.constraints):
            if not constr.is_satisfied(values, tol=tol):
                label = constr.name or f"#{i}"
                problems.append(
                    f"constraint {label} violated by {constr.violation(values):g}"
                )
        return problems

    def objective_value(self, values: dict[Variable, float]) -> float:
        """Evaluate the objective (in the model's original sense)."""
        return self._objective.value(values)

    def __repr__(self) -> str:
        return f"Model({self.summary()})"
