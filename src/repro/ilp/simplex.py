"""From-scratch LP engines: a tableau simplex and a revised dual simplex.

Two engines live here, promised in DESIGN.md so the whole reproduction can
run with zero reliance on external solver behaviour:

- :func:`solve_lp_simplex` — a dense two-phase *tableau* simplex with
  Bland's anti-cycling rule. Cold-start only; it reduces the bounded form
  to standard form (shift/split variables, explicit slack rows) and is the
  fully inspectable reference engine, cross-checked against
  ``scipy.optimize.linprog`` on randomized instances.

- :class:`RevisedSimplex` — a bounded-variable *revised dual* simplex that
  exposes and accepts a :class:`Basis`. Branch and bound re-solves a child
  node's LP warm from the parent basis: a child differs from its parent by
  bound tightenings only, which leave the parent's reduced costs (and
  therefore dual feasibility) intact, so reoptimization typically takes a
  handful of dual pivots instead of a cold solve. An objective ``cutoff``
  turns the monotone dual bound into an early node prune. Anything
  numerically doubtful — singular basis, dual infeasibility that status
  flips cannot repair, tiny pivots, iteration cap — returns a ``fallback``
  result and the caller re-solves cold (see DESIGN.md §13).

Both engines accept the general bounded form

    min c'x   s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  lb <= x <= ub
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ilp.model import MatrixForm

_TOL = 1e-9


@dataclass
class SimplexResult:
    """Outcome of a simplex solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: np.ndarray | None
    objective: float | None
    iterations: int


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau on (row, col), updating the basis in place."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_phase(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    num_cols: int,
    max_iter: int,
) -> tuple[str, int]:
    """Run simplex iterations on ``tableau`` for the given cost vector.

    The last tableau row is rebuilt as the reduced-cost row for ``cost``.
    Returns (status, iterations). Bland's rule (smallest entering index,
    smallest-basis-index ratio ties) guarantees termination on degenerate
    instances, which our assignment ILPs produce in abundance.
    """
    m = tableau.shape[0] - 1
    # Rebuild the objective row: z_j - c_j for the current basis.
    tableau[-1, :] = 0.0
    tableau[-1, :num_cols] = cost[:num_cols]
    for r in range(m):
        coef = cost[basis[r]]
        if coef != 0.0:
            tableau[-1, :] -= coef * tableau[r, :]

    iterations = 0
    while iterations < max_iter:
        reduced = tableau[-1, :num_cols]
        entering = -1
        for j in range(num_cols):
            if reduced[j] > _TOL:  # row stores c_B B^-1 A - c; positive => improving
                entering = j
                break
        if entering < 0:
            return "optimal", iterations

        column = tableau[:m, entering]
        best_ratio = np.inf
        leaving = -1
        for r in range(m):
            if column[r] > _TOL:
                ratio = tableau[r, -1] / column[r]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return "unbounded", iterations

        _pivot(tableau, basis, leaving, entering)
        iterations += 1
    return "iteration_limit", iterations


def _solve_standard(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int
) -> SimplexResult:
    """Solve min c'x s.t. a x = b, x >= 0 via the two-phase method."""
    m, n = a.shape
    a = a.copy()
    b = b.copy()
    # Normalize to b >= 0 so the artificial basis is feasible.
    for r in range(m):
        if b[r] < 0:
            a[r] *= -1.0
            b[r] *= -1.0

    total_cols = n + m  # original + artificial
    tableau = np.zeros((m + 1, total_cols + 1))
    tableau[:m, :n] = a
    tableau[:m, n:total_cols] = np.eye(m)
    tableau[:m, -1] = b
    basis = np.arange(n, total_cols)

    # Phase 1: minimize the sum of artificials. We store the negated reduced
    # costs (z_j - c_j), so "improving" entries are positive.
    phase1_cost = np.zeros(total_cols)
    phase1_cost[n:] = -1.0
    status, it1 = _run_phase(tableau, basis, phase1_cost, total_cols, max_iter)
    if status == "iteration_limit":
        return SimplexResult("iteration_limit", None, None, it1)
    phase1_obj = tableau[-1, -1]
    if phase1_obj > 1e-7:
        return SimplexResult("infeasible", None, None, it1)

    # Drive any artificial still in the basis out (or drop its row if the
    # row is entirely zero over the original columns — a redundant row).
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[r, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
            # else: redundant row, the artificial stays basic at value 0.

    # Phase 2: original objective over original columns only. Artificial
    # columns are excluded from pricing by passing num_cols=n; basic
    # artificials (redundant rows) stay pinned at zero.
    phase2_cost = np.zeros(total_cols)
    phase2_cost[:n] = -c  # negate: row convention stores z_j - c_j
    status, it2 = _run_phase(tableau, basis, phase2_cost, n, max_iter - it1)
    iterations = it1 + it2
    if status == "iteration_limit":
        return SimplexResult("iteration_limit", None, None, iterations)
    if status == "unbounded":
        return SimplexResult("unbounded", None, None, iterations)

    x = np.zeros(n)
    for r in range(m):
        if basis[r] < n:
            x[basis[r]] = tableau[r, -1]
    return SimplexResult("optimal", x, float(c @ x), iterations)


def solve_lp_simplex(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iter: int = 20000,
) -> SimplexResult:
    """Solve a bounded-form LP with the two-phase tableau simplex.

    Bound handling: finite lower bounds are shifted to zero; free variables
    (``lb = -inf``) are split into positive and negative parts; finite upper
    bounds become explicit slack rows. The returned ``x`` is in the original
    variable space.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1)

    for j in range(n):
        if lb[j] > ub[j]:
            return SimplexResult("infeasible", None, None, 0)

    # Column construction: each original variable maps to one or two standard
    # columns. mapping[j] = (kind, col, shift) with kind in {"shift", "split"}.
    col_of: list[tuple[str, int, float]] = []
    num_std = 0
    for j in range(n):
        if np.isfinite(lb[j]):
            col_of.append(("shift", num_std, lb[j]))
            num_std += 1
        else:
            col_of.append(("split", num_std, 0.0))  # x = pos - neg
            num_std += 2

    def expand_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(num_std)
        for j in range(n):
            kind, col, _shift = col_of[j]
            out[col] = row[j]
            if kind == "split":
                out[col + 1] = -row[j]
        return out

    def shift_offset(row: np.ndarray) -> float:
        total = 0.0
        for j in range(n):
            kind, _col, shift = col_of[j]
            if kind == "shift":
                total += row[j] * shift
        return total

    rows, rhs, senses = [], [], []
    for r in range(a_ub.shape[0]):
        rows.append(expand_row(a_ub[r]))
        rhs.append(b_ub[r] - shift_offset(a_ub[r]))
        senses.append("<=")
    for r in range(a_eq.shape[0]):
        rows.append(expand_row(a_eq[r]))
        rhs.append(b_eq[r] - shift_offset(a_eq[r]))
        senses.append("==")
    # Finite upper bounds become rows x_shifted <= ub - lb.
    for j in range(n):
        kind, col, shift = col_of[j]
        if np.isfinite(ub[j]):
            row = np.zeros(num_std)
            row[col] = 1.0
            if kind == "split":
                row[col + 1] = -1.0
            rows.append(row)
            rhs.append(ub[j] - shift)
            senses.append("<=")

    num_rows = len(rows)
    num_slacks = sum(1 for s in senses if s == "<=")
    a_std = np.zeros((num_rows, num_std + num_slacks))
    b_std = np.array(rhs, dtype=float)
    slack = 0
    for r in range(num_rows):
        a_std[r, :num_std] = rows[r]
        if senses[r] == "<=":
            a_std[r, num_std + slack] = 1.0
            slack += 1

    c_std = np.zeros(num_std + num_slacks)
    obj_offset = 0.0
    for j in range(n):
        kind, col, shift = col_of[j]
        c_std[col] = c[j]
        if kind == "split":
            c_std[col + 1] = -c[j]
        else:
            obj_offset += c[j] * shift

    result = _solve_standard(a_std, b_std, c_std, max_iter)
    if result.status != "optimal":
        return result

    x = np.zeros(n)
    assert result.x is not None
    for j in range(n):
        kind, col, shift = col_of[j]
        if kind == "shift":
            x[j] = result.x[col] + shift
        else:
            x[j] = result.x[col] - result.x[col + 1]
    return SimplexResult("optimal", x, float(result.objective + obj_offset), result.iterations)


# --------------------------------------------------------------------------
# Revised dual simplex with bound handling and basis warm starts.

#: Nonbasic-at-lower / nonbasic-at-upper / nonbasic-free / basic.
NB_LOWER, NB_UPPER, NB_FREE, IN_BASIS = 0, 1, 2, 3

#: Dual-feasibility / pivot-eligibility tolerance.
_DTOL = 1e-9
#: Primal feasibility tolerance for basic values.
_PTOL = 1e-7


@dataclass
class Basis:
    """A simplex basis snapshot, shareable between parent and child nodes.

    ``basic[r]`` is the column (structural then slack) basic in row ``r``;
    ``status`` tags every column. ``generation`` identifies the constraint
    matrix the basis was factorized against — cut rounds rebuild the matrix
    and bump the engine's generation, which invalidates stale bases.
    """

    basic: np.ndarray
    status: np.ndarray
    generation: int = 0


@dataclass
class WarmLpResult:
    """Outcome of a :class:`RevisedSimplex` solve.

    ``status`` is ``"optimal"``, ``"infeasible"``, ``"cutoff"`` (the dual
    bound crossed the caller's objective cutoff — a proven node prune), or
    ``"fallback"`` (numerical trouble; re-solve cold).
    """

    status: str
    x: np.ndarray | None
    objective: float | None
    iterations: int = 0
    reduced_costs: np.ndarray | None = None
    basis: Basis | None = None


class RevisedSimplex:
    """Bounded-variable revised dual simplex over one constraint matrix.

    Built once per ``MatrixForm``: the working matrix is ``W = [A | I]``
    with one slack per row (``<=`` rows get a ``[0, inf)`` slack, equality
    rows a ``[0, 0]`` one), so only the variable bounds change between
    solves. ``solve`` accepts per-node ``lb``/``ub`` overrides plus an
    optional parent :class:`Basis`; the basis inverse is kept explicitly
    and updated by product-form pivots with periodic refactorization.
    """

    def __init__(
        self,
        form: MatrixForm,
        generation: int = 0,
        max_iter: int = 5000,
        refactor_every: int = 40,
    ):
        n = form.num_vars
        m_ub = form.a_ub.shape[0] if form.a_ub.size else 0
        m_eq = form.a_eq.shape[0] if form.a_eq.size else 0
        m = m_ub + m_eq
        blocks = []
        rhs = []
        if m_ub:
            blocks.append(form.a_ub)
            rhs.append(form.b_ub)
        if m_eq:
            blocks.append(form.a_eq)
            rhs.append(form.b_eq)
        a = np.vstack(blocks) if blocks else np.zeros((0, n))
        self.w = np.hstack([a, np.eye(m)]) if m else np.zeros((0, n))
        self.b = np.concatenate(rhs) if rhs else np.zeros(0)
        self.c = np.concatenate([form.c.astype(float), np.zeros(m)])
        self.c0 = float(form.c0)
        self.n = n
        self.m = m
        self.slack_lb = np.zeros(m)
        self.slack_ub = np.concatenate([np.full(m_ub, math.inf), np.zeros(m_eq)])
        self.generation = generation
        self.max_iter = max_iter
        self.refactor_every = refactor_every

    # ------------------------------------------------------------------ basis
    def initial_basis(self, lb: np.ndarray, ub: np.ndarray) -> Basis | None:
        """The all-slack basis with dual-feasible nonbasic statuses.

        With every slack basic the dual prices are zero and each structural
        reduced cost equals its objective coefficient, so dual feasibility
        is a matter of parking each column at the right bound: positive
        cost at the lower bound, negative at the upper. A column that needs
        an infinite bound for that cannot be made dual feasible here —
        returns ``None`` and the caller solves cold.
        """
        n, m = self.n, self.m
        status = np.empty(n + m, dtype=np.int8)
        c = self.c[:n]
        lo_ok = np.isfinite(lb)
        up_ok = np.isfinite(ub)
        status[:n] = np.where(
            c > _DTOL,
            NB_LOWER,
            np.where(
                c < -_DTOL,
                NB_UPPER,
                np.where(lo_ok, NB_LOWER, np.where(up_ok, NB_UPPER, NB_FREE)),
            ),
        )
        bad = ((status[:n] == NB_LOWER) & ~lo_ok) | ((status[:n] == NB_UPPER) & ~up_ok)
        if bad.any():
            return None
        status[n:] = IN_BASIS
        return Basis(
            basic=np.arange(n, n + m), status=status, generation=self.generation
        )

    # ------------------------------------------------------------------ solve
    def solve(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: Basis | None = None,
        cutoff: float | None = None,
    ) -> WarmLpResult:
        """Reoptimize under new bounds, warm from ``basis`` when possible.

        A stale-generation (or absent) basis falls back to the all-slack
        start. ``cutoff`` is an objective value (including the constant
        offset): the dual objective is a monotone lower bound, so the solve
        stops with ``"cutoff"`` as soon as it crosses — the caller prunes
        the node without finishing the LP.
        """
        n, m = self.n, self.m
        if np.any(lb > ub):
            return WarmLpResult("infeasible", None, None)
        if m == 0:
            return self._solve_unconstrained(lb, ub)
        if basis is None or basis.generation != self.generation:
            basis = self.initial_basis(lb, ub)
            if basis is None:
                return WarmLpResult("fallback", None, None)
        bas = basis.basic.copy()
        status = basis.status.copy()
        status[bas] = IN_BASIS
        big_l = np.concatenate([lb, self.slack_lb])
        big_u = np.concatenate([ub, self.slack_ub])
        try:
            binv = np.linalg.inv(self.w[:, bas])
        except np.linalg.LinAlgError:
            return WarmLpResult("fallback", None, None)

        # Repair dual feasibility by bound flips; unfixable columns bail.
        d = self.c - (self.c[bas] @ binv) @ self.w
        fixed = big_u - big_l <= _DTOL
        bad_lo = (status == NB_LOWER) & ~fixed & (d < -_DTOL * 10)
        flip = bad_lo & np.isfinite(big_u)
        status[flip] = NB_UPPER
        if np.any(bad_lo & ~flip):
            return WarmLpResult("fallback", None, None)
        bad_up = (status == NB_UPPER) & ~fixed & (d > _DTOL * 10)
        flip = bad_up & np.isfinite(big_l)
        status[flip] = NB_LOWER
        if np.any(bad_up & ~flip):
            return WarmLpResult("fallback", None, None)
        if np.any((status == NB_FREE) & (np.abs(d) > _DTOL * 10)):
            return WarmLpResult("fallback", None, None)

        nb_value = np.where(status == NB_LOWER, big_l, np.where(status == NB_UPPER, big_u, 0.0))
        nb_value[bas] = 0.0
        if not np.all(np.isfinite(nb_value)):
            return WarmLpResult("fallback", None, None)

        iterations = 0
        since_refactor = 0
        while iterations < self.max_iter:
            z = nb_value.copy()
            z[bas] = 0.0
            xb = binv @ (self.b - self.w @ z)
            z[bas] = xb
            objective = float(self.c @ z) + self.c0
            if cutoff is not None and objective > cutoff + 1e-9:
                return WarmLpResult("cutoff", None, objective, iterations)

            below = big_l[bas] - xb
            above = xb - big_u[bas]
            viol = np.maximum(below, above)
            r = int(np.argmax(viol))
            if viol[r] <= _PTOL * (1.0 + abs(xb[r])):
                d = self.c - (self.c[bas] @ binv) @ self.w
                return WarmLpResult(
                    "optimal",
                    z[:n].copy(),
                    objective,
                    iterations,
                    reduced_costs=d[:n].copy(),
                    basis=Basis(basic=bas, status=status, generation=self.generation),
                )

            leaving_low = below[r] >= above[r]
            sigma = 1.0 if leaving_low else -1.0
            alpha = binv[r] @ self.w
            atil = sigma * alpha
            d = self.c - (self.c[bas] @ binv) @ self.w
            eligible = (
                ~fixed
                & (
                    ((status == NB_LOWER) & (atil < -_DTOL))
                    | ((status == NB_UPPER) & (atil > _DTOL))
                    | ((status == NB_FREE) & (np.abs(atil) > _DTOL))
                )
            )
            eligible[bas] = False
            if not eligible.any():
                return WarmLpResult("infeasible", None, None, iterations)
            cand = np.flatnonzero(eligible)
            ratios = np.abs(d[cand]) / np.abs(atil[cand])
            q = int(cand[int(np.argmin(ratios))])
            pivot = alpha[q]
            if abs(pivot) < 1e-11:
                return WarmLpResult("fallback", None, None, iterations)

            leaving = int(bas[r])
            status[leaving] = NB_LOWER if leaving_low else NB_UPPER
            nb_value[leaving] = big_l[leaving] if leaving_low else big_u[leaving]
            status[q] = IN_BASIS
            nb_value[q] = 0.0
            bas[r] = q
            col = binv @ self.w[:, q]
            binv[r] /= pivot
            rows = np.arange(m) != r
            binv[rows] -= np.outer(col[rows], binv[r])
            iterations += 1
            since_refactor += 1
            if since_refactor >= self.refactor_every:
                try:
                    binv = np.linalg.inv(self.w[:, bas])
                except np.linalg.LinAlgError:
                    return WarmLpResult("fallback", None, None, iterations)
                since_refactor = 0
        return WarmLpResult("fallback", None, None, iterations)

    def _solve_unconstrained(self, lb: np.ndarray, ub: np.ndarray) -> WarmLpResult:
        """No rows: each column sits at whichever bound its cost prefers."""
        c = self.c[: self.n]
        x = np.where(c > 0.0, lb, np.where(c < 0.0, ub, np.where(np.isfinite(lb), lb, 0.0)))
        if not np.all(np.isfinite(x)):
            return WarmLpResult("unbounded" if np.any(c != 0.0) else "fallback", None, None)
        status = np.where(x == lb, NB_LOWER, NB_UPPER).astype(np.int8)
        return WarmLpResult(
            "optimal",
            x.astype(float),
            float(c @ x) + self.c0,
            0,
            reduced_costs=c.copy(),
            basis=Basis(basic=np.zeros(0, dtype=int), status=status, generation=self.generation),
        )
