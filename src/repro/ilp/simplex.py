"""A dense two-phase tableau simplex with Bland's anti-cycling rule.

This is the from-scratch LP engine promised in DESIGN.md. It is not meant to
beat HiGHS; it exists so the whole reproduction can run with zero reliance on
external solver behaviour, and so the branch-and-bound solver has a fully
inspectable fallback. The test suite cross-checks it against
``scipy.optimize.linprog`` on randomized instances.

The entry point :func:`solve_lp_simplex` accepts the general bounded form

    min c'x   s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  lb <= x <= ub

and internally reduces it to standard form (equalities over non-negative
variables) by shifting finite lower bounds, splitting free variables, and
adding slack rows for upper bounds and inequalities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_TOL = 1e-9


@dataclass
class SimplexResult:
    """Outcome of a simplex solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: np.ndarray | None
    objective: float | None
    iterations: int


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau on (row, col), updating the basis in place."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_phase(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    num_cols: int,
    max_iter: int,
) -> tuple[str, int]:
    """Run simplex iterations on ``tableau`` for the given cost vector.

    The last tableau row is rebuilt as the reduced-cost row for ``cost``.
    Returns (status, iterations). Bland's rule (smallest entering index,
    smallest-basis-index ratio ties) guarantees termination on degenerate
    instances, which our assignment ILPs produce in abundance.
    """
    m = tableau.shape[0] - 1
    # Rebuild the objective row: z_j - c_j for the current basis.
    tableau[-1, :] = 0.0
    tableau[-1, :num_cols] = cost[:num_cols]
    for r in range(m):
        coef = cost[basis[r]]
        if coef != 0.0:
            tableau[-1, :] -= coef * tableau[r, :]

    iterations = 0
    while iterations < max_iter:
        reduced = tableau[-1, :num_cols]
        entering = -1
        for j in range(num_cols):
            if reduced[j] > _TOL:  # row stores c_B B^-1 A - c; positive => improving
                entering = j
                break
        if entering < 0:
            return "optimal", iterations

        column = tableau[:m, entering]
        best_ratio = np.inf
        leaving = -1
        for r in range(m):
            if column[r] > _TOL:
                ratio = tableau[r, -1] / column[r]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return "unbounded", iterations

        _pivot(tableau, basis, leaving, entering)
        iterations += 1
    return "iteration_limit", iterations


def _solve_standard(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int
) -> SimplexResult:
    """Solve min c'x s.t. a x = b, x >= 0 via the two-phase method."""
    m, n = a.shape
    a = a.copy()
    b = b.copy()
    # Normalize to b >= 0 so the artificial basis is feasible.
    for r in range(m):
        if b[r] < 0:
            a[r] *= -1.0
            b[r] *= -1.0

    total_cols = n + m  # original + artificial
    tableau = np.zeros((m + 1, total_cols + 1))
    tableau[:m, :n] = a
    tableau[:m, n:total_cols] = np.eye(m)
    tableau[:m, -1] = b
    basis = np.arange(n, total_cols)

    # Phase 1: minimize the sum of artificials. We store the negated reduced
    # costs (z_j - c_j), so "improving" entries are positive.
    phase1_cost = np.zeros(total_cols)
    phase1_cost[n:] = -1.0
    status, it1 = _run_phase(tableau, basis, phase1_cost, total_cols, max_iter)
    if status == "iteration_limit":
        return SimplexResult("iteration_limit", None, None, it1)
    phase1_obj = tableau[-1, -1]
    if phase1_obj > 1e-7:
        return SimplexResult("infeasible", None, None, it1)

    # Drive any artificial still in the basis out (or drop its row if the
    # row is entirely zero over the original columns — a redundant row).
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[r, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
            # else: redundant row, the artificial stays basic at value 0.

    # Phase 2: original objective over original columns only. Artificial
    # columns are excluded from pricing by passing num_cols=n; basic
    # artificials (redundant rows) stay pinned at zero.
    phase2_cost = np.zeros(total_cols)
    phase2_cost[:n] = -c  # negate: row convention stores z_j - c_j
    status, it2 = _run_phase(tableau, basis, phase2_cost, n, max_iter - it1)
    iterations = it1 + it2
    if status == "iteration_limit":
        return SimplexResult("iteration_limit", None, None, iterations)
    if status == "unbounded":
        return SimplexResult("unbounded", None, None, iterations)

    x = np.zeros(n)
    for r in range(m):
        if basis[r] < n:
            x[basis[r]] = tableau[r, -1]
    return SimplexResult("optimal", x, float(c @ x), iterations)


def solve_lp_simplex(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iter: int = 20000,
) -> SimplexResult:
    """Solve a bounded-form LP with the two-phase tableau simplex.

    Bound handling: finite lower bounds are shifted to zero; free variables
    (``lb = -inf``) are split into positive and negative parts; finite upper
    bounds become explicit slack rows. The returned ``x`` is in the original
    variable space.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1)

    for j in range(n):
        if lb[j] > ub[j]:
            return SimplexResult("infeasible", None, None, 0)

    # Column construction: each original variable maps to one or two standard
    # columns. mapping[j] = (kind, col, shift) with kind in {"shift", "split"}.
    col_of: list[tuple[str, int, float]] = []
    num_std = 0
    for j in range(n):
        if np.isfinite(lb[j]):
            col_of.append(("shift", num_std, lb[j]))
            num_std += 1
        else:
            col_of.append(("split", num_std, 0.0))  # x = pos - neg
            num_std += 2

    def expand_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(num_std)
        for j in range(n):
            kind, col, _shift = col_of[j]
            out[col] = row[j]
            if kind == "split":
                out[col + 1] = -row[j]
        return out

    def shift_offset(row: np.ndarray) -> float:
        total = 0.0
        for j in range(n):
            kind, _col, shift = col_of[j]
            if kind == "shift":
                total += row[j] * shift
        return total

    rows, rhs, senses = [], [], []
    for r in range(a_ub.shape[0]):
        rows.append(expand_row(a_ub[r]))
        rhs.append(b_ub[r] - shift_offset(a_ub[r]))
        senses.append("<=")
    for r in range(a_eq.shape[0]):
        rows.append(expand_row(a_eq[r]))
        rhs.append(b_eq[r] - shift_offset(a_eq[r]))
        senses.append("==")
    # Finite upper bounds become rows x_shifted <= ub - lb.
    for j in range(n):
        kind, col, shift = col_of[j]
        if np.isfinite(ub[j]):
            row = np.zeros(num_std)
            row[col] = 1.0
            if kind == "split":
                row[col + 1] = -1.0
            rows.append(row)
            rhs.append(ub[j] - shift)
            senses.append("<=")

    num_rows = len(rows)
    num_slacks = sum(1 for s in senses if s == "<=")
    a_std = np.zeros((num_rows, num_std + num_slacks))
    b_std = np.array(rhs, dtype=float)
    slack = 0
    for r in range(num_rows):
        a_std[r, :num_std] = rows[r]
        if senses[r] == "<=":
            a_std[r, num_std + slack] = 1.0
            slack += 1

    c_std = np.zeros(num_std + num_slacks)
    obj_offset = 0.0
    for j in range(n):
        kind, col, shift = col_of[j]
        c_std[col] = c[j]
        if kind == "split":
            c_std[col + 1] = -c[j]
        else:
            obj_offset += c[j] * shift

    result = _solve_standard(a_std, b_std, c_std, max_iter)
    if result.status != "optimal":
        return result

    x = np.zeros(n)
    assert result.x is not None
    for j in range(n):
        kind, col, shift = col_of[j]
        if kind == "shift":
            x[j] = result.x[col] + shift
        else:
            x[j] = result.x[col] - result.x[col + 1]
    return SimplexResult("optimal", x, float(result.objective + obj_offset), result.iterations)
