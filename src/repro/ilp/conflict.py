"""Conflict graph over binary columns + maximal-clique cut separation.

Two binary variables *conflict* when no integer-feasible point sets both
to 1. The graph is derived structurally from ``MatrixForm`` rows whose
support is pure non-negative binary: for such a row ``sum a_j x_j <= b``
(or ``= b``), the pair ``(j, k)`` conflicts whenever ``a_j + a_k > b`` —
setting both to 1 already overshoots the right-hand side, because every
other support coefficient is non-negative over [0, 1] bounds. The
layout-forbidden pairs of the TAM formulation (``x_aj + x_bj <= 1``) are
exactly the ``1 + 1 > 1`` case, so each such row contributes one edge.

Any clique K of the conflict graph yields the valid inequality
``sum_{j in K} x_j <= 1`` — at most one member of a pairwise-conflicting
set can be 1 in any integer point. Maximal cliques dominate: a clique
cut over a sub-clique is implied by the maximal one, and extending a
violated clique with zero-valued vertices is free lifting (the violation
is unchanged while the cut tightens). Separation is the standard greedy:
seed on high-``x*`` vertices, grow by descending ``x*``, then extend to
maximality with whatever still fits.
"""

from __future__ import annotations

import numpy as np

from repro.ilp.model import MatrixForm

_TOL = 1e-9


def _row_conflicts(
    row: np.ndarray,
    b: float,
    support: np.ndarray,
    adjacency: dict[int, set[int]],
    tol: float,
) -> None:
    """Add every pair of ``support`` with ``a_j + a_k > b`` to ``adjacency``."""
    order = sorted((int(j) for j in support), key=lambda j: (-row[j], j))
    coefs = [float(row[j]) for j in order]
    for p in range(len(order)):
        for q in range(p + 1, len(order)):
            if coefs[p] + coefs[q] <= b + tol:
                break  # coefs descend: later q only get smaller
            adjacency.setdefault(order[p], set()).add(order[q])
            adjacency.setdefault(order[q], set()).add(order[p])


class ConflictGraph:
    """Pairwise-exclusion structure of a ``MatrixForm``'s binary columns."""

    def __init__(self, num_vars: int, adjacency: dict[int, set[int]]):
        self.num_vars = num_vars
        self.adjacency = {j: frozenset(nbrs) for j, nbrs in adjacency.items() if nbrs}

    @classmethod
    def from_matrix_form(cls, form: MatrixForm, tol: float = _TOL) -> "ConflictGraph":
        """Derive conflicts from the pure-binary non-negative rows of ``form``.

        Both inequality (``a_ub``) and equality (``a_eq``) rows
        participate: an equality over non-negative binaries forbids any
        pair whose coefficients alone exceed its right-hand side.
        """
        binary = form.integer_mask & (form.lb == 0.0) & (form.ub == 1.0)
        adjacency: dict[int, set[int]] = {}
        for matrix, rhs in ((form.a_ub, form.b_ub), (form.a_eq, form.b_eq)):
            if matrix is None or matrix.size == 0:
                continue
            for r in range(matrix.shape[0]):
                row = matrix[r]
                support = np.flatnonzero(row)
                if len(support) < 2:
                    continue
                if not np.all(binary[support]) or np.any(row[support] <= 0):
                    continue
                _row_conflicts(row, float(rhs[r]), support, adjacency, tol)
        return cls(form.num_vars, adjacency)

    # ------------------------------------------------------------- structure
    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.adjacency.values()) // 2

    def neighbors(self, j: int) -> frozenset[int]:
        return self.adjacency.get(j, frozenset())

    def are_adjacent(self, j: int, k: int) -> bool:
        return k in self.adjacency.get(j, frozenset())

    def maximal_cliques(self, max_cliques: int | None = None) -> list[tuple[int, ...]]:
        """Greedily enumerated maximal cliques, deterministic order.

        One clique is grown from every vertex (highest degree first, index
        as tie-break), then deduplicated — a cheap cover of the clique
        structure rather than an exhaustive Bron–Kerbosch enumeration,
        which is all cut separation needs.
        """
        by_priority = sorted(self.adjacency, key=lambda j: (-len(self.adjacency[j]), j))
        seen: set[frozenset[int]] = set()
        cliques: list[tuple[int, ...]] = []
        for seed in by_priority:
            clique = self._grow(seed, sorted(self.adjacency[seed]))
            key = frozenset(clique)
            if key in seen:
                continue
            seen.add(key)
            cliques.append(tuple(sorted(clique)))
            if max_cliques is not None and len(cliques) >= max_cliques:
                break
        return cliques

    def _grow(self, seed: int, candidates: list[int]) -> list[int]:
        """Extend ``seed`` with candidates adjacent to every current member."""
        clique = [seed]
        for u in candidates:
            if all(self.are_adjacent(u, w) for w in clique):
                clique.append(u)
        return clique

    # ------------------------------------------------------------ separation
    def separate(
        self,
        x: np.ndarray,
        max_cliques: int = 32,
        min_violation: float = 1e-4,
    ) -> list[tuple[tuple[int, ...], float]]:
        """Violated maximal-clique cuts at the LP point ``x``.

        Returns ``(columns, violation)`` pairs with
        ``sum_{j in columns} x_j = 1 + violation > 1``; each clique is
        maximal, so zero-valued members are already lifted in. Seeds are
        tried by descending ``x*`` and growth prefers heavy vertices, the
        standard greedy heuristic.
        """
        weight_order = sorted(
            self.adjacency, key=lambda j: (-float(x[j]), j)
        )
        seen: set[frozenset[int]] = set()
        cuts: list[tuple[tuple[int, ...], float]] = []
        for seed in weight_order:
            if float(x[seed]) <= min_violation:
                break  # all remaining seeds are lighter still
            candidates = sorted(
                self.adjacency[seed], key=lambda j: (-float(x[j]), j)
            )
            clique = self._grow(seed, candidates)
            violation = float(sum(x[j] for j in clique)) - 1.0
            if violation <= min_violation:
                continue
            key = frozenset(clique)
            if key in seen:
                continue
            seen.add(key)
            cuts.append((tuple(sorted(clique)), violation))
            if len(cuts) >= max_cliques:
                break
        return cuts
