"""Root presolve: whole-model reductions before the branch-and-bound search.

Where :mod:`repro.ilp.presolve` tightens *bounds* per node, this module
shrinks the *model* once at the root, in up to ``PresolvePolicy.rounds``
passes of five reductions (each individually gated by the policy):

- **Bound tightening** — the node propagator (:func:`propagate_bounds`)
  run over the whole model, so later reductions see the tightest box.
- **Dual fixing** — a column whose objective coefficient and every
  ``A_ub`` coefficient share a sign, and which is absent from ``A_eq``,
  can be pushed to its cheap bound without losing any optimum: moving it
  that way never costs feasibility and never costs objective.
- **Singleton-column substitution** — a free continuous column appearing
  in exactly one row, an equality, is determined by that row:
  ``x_j = (b_r - sum_k a_rk x_k) / a_rj``. The column and the row both
  leave the model; the objective folds through the substitution.
- **Coefficient tightening** — for a unit-width integer column in a
  ``<=`` row, when the row's maximum activity exceeds the rhs by less
  than the column's contribution range, the coefficient (and rhs) shrink
  to the point where the row is exactly as strong at both integer values
  but strictly stronger at fractional LP points.
- **Row cleanup** — empty rows are dropped (or prove infeasibility),
  rows whose maximum activity already satisfies the rhs are dropped, and
  coefficient-identical duplicate rows collapse to the strongest copy
  (equality duplicates with different rhs prove infeasibility).

Every reduction preserves at least one optimal solution of the *integer*
program, and :class:`Postsolve` maps any reduced-space point back to an
exactly feasible original-space point — fixed columns get their recorded
values, substituted columns are recomputed from their defining row. The
branch-and-bound solver keeps its cache keys, checkpoints, and matrix
fingerprints in original space, so presolve settings never leak into
stored artifacts (see DESIGN.md §13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.ilp.model import MatrixForm
from repro.ilp.presolve import PropagationTables, propagate_bounds

if TYPE_CHECKING:
    from repro.obs.policy import PresolvePolicy

_TOL = 1e-6

#: Bounds beyond this magnitude are treated as infinite in activity sums.
_ACT_BIG = 1e14


@dataclass
class Postsolve:
    """Maps reduced-space solutions back to the original variable space.

    ``kept[r]`` is the original index of reduced column ``r``. ``records``
    is the reduction stack in the order the engine applied it; ``restore``
    replays it in reverse, so a column substituted *after* another fix is
    recomputed from already-restored values.
    """

    num_vars: int
    kept: np.ndarray
    records: list[tuple] = field(default_factory=list)

    @property
    def identity(self) -> bool:
        """True when presolve removed nothing (restore is a copy)."""
        return not self.records and self.kept.size == self.num_vars

    def restore(self, x_reduced: np.ndarray) -> np.ndarray:
        """An original-space vector whose objective equals the reduced one."""
        x = np.full(self.num_vars, np.nan)
        if self.kept.size:
            x[self.kept] = x_reduced
        for record in reversed(self.records):
            if record[0] == "fix":
                _, j, value = record
                x[j] = value
            else:  # ("subst", j, idx, coefs, rhs, pivot)
                _, j, idx, coefs, rhs, pivot = record
                x[j] = (rhs - float(coefs @ x[idx])) / pivot
        if np.isnan(x).any():  # pragma: no cover - internal invariant
            missing = np.flatnonzero(np.isnan(x))
            raise RuntimeError(f"postsolve left columns unrestored: {missing.tolist()}")
        return x

    def reduce(self, x_full: np.ndarray) -> np.ndarray:
        """Project an original-space point (e.g. a warm incumbent) down."""
        return np.asarray(x_full, dtype=float)[self.kept]


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve_root`.

    ``status`` is ``"reduced"`` (possibly an identity reduction) or
    ``"infeasible"`` when a reduction proved the model has no feasible
    point — in which case ``form`` is the partially reduced model and must
    not be solved.
    """

    status: str
    form: MatrixForm
    postsolve: Postsolve
    stats: dict[str, int]


class _Reducer:
    """Mutable working copy of a model while reductions run.

    Columns compact eagerly (``orig`` tracks reduced → original indices);
    row removals batch per cleanup step. All scans run in index order so
    the reduction sequence — and therefore the reduced model — is
    deterministic for a given input.
    """

    def __init__(self, form: MatrixForm):
        self.c = form.c.astype(float).copy()
        self.c0 = float(form.c0)
        self.a_ub = form.a_ub.astype(float).copy() if form.a_ub.size else np.zeros((0, form.num_vars))
        self.b_ub = form.b_ub.astype(float).copy() if form.b_ub.size else np.zeros(0)
        self.a_eq = form.a_eq.astype(float).copy() if form.a_eq.size else np.zeros((0, form.num_vars))
        self.b_eq = form.b_eq.astype(float).copy() if form.b_eq.size else np.zeros(0)
        self.lb = form.lb.astype(float).copy()
        self.ub = form.ub.astype(float).copy()
        self.integer_mask = form.integer_mask.copy()
        self.orig = np.arange(form.num_vars)
        self.records: list[tuple] = []
        self.stats = {
            "rounds": 0,
            "bounds_tightened": 0,
            "dual_fixed": 0,
            "singleton_cols": 0,
            "coeffs_tightened": 0,
            "rows_removed": 0,
            "cols_removed": 0,
        }
        self.infeasible = False

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    def snapshot(self) -> MatrixForm:
        return MatrixForm(
            c=self.c,
            c0=self.c0,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            lb=self.lb,
            ub=self.ub,
            integer_mask=self.integer_mask,
        )

    # ------------------------------------------------------------ primitives
    def _fix_columns(self, cols: np.ndarray, values: np.ndarray) -> None:
        """Remove ``cols`` (reduced indices) at the given values."""
        if cols.size == 0:
            return
        for j, value in zip(cols.tolist(), values.tolist()):
            self.records.append(("fix", int(self.orig[j]), float(value)))
        if self.a_ub.size:
            self.b_ub -= self.a_ub[:, cols] @ values
        if self.a_eq.size:
            self.b_eq -= self.a_eq[:, cols] @ values
        self.c0 += float(self.c[cols] @ values)
        keep = np.ones(self.num_vars, dtype=bool)
        keep[cols] = False
        self._keep_columns(keep)
        self.stats["cols_removed"] += int(cols.size)

    def _keep_columns(self, keep: np.ndarray) -> None:
        self.c = self.c[keep]
        self.a_ub = self.a_ub[:, keep] if self.a_ub.size else np.zeros((self.a_ub.shape[0], int(keep.sum())))
        self.a_eq = self.a_eq[:, keep] if self.a_eq.size else np.zeros((self.a_eq.shape[0], int(keep.sum())))
        self.lb = self.lb[keep]
        self.ub = self.ub[keep]
        self.integer_mask = self.integer_mask[keep]
        self.orig = self.orig[keep]

    def _drop_ub_rows(self, drop: np.ndarray) -> None:
        if drop.any():
            keep = ~drop
            self.a_ub = self.a_ub[keep]
            self.b_ub = self.b_ub[keep]
            self.stats["rows_removed"] += int(drop.sum())

    def _drop_eq_rows(self, drop: np.ndarray) -> None:
        if drop.any():
            keep = ~drop
            self.a_eq = self.a_eq[keep]
            self.b_eq = self.b_eq[keep]
            self.stats["rows_removed"] += int(drop.sum())

    def _max_activity(self, rows: np.ndarray) -> np.ndarray:
        """Per-row maximum activity; +inf where an unbounded term blocks it."""
        pos = np.maximum(rows, 0.0)
        neg = np.minimum(rows, 0.0)
        cub = np.clip(self.ub, -_ACT_BIG, _ACT_BIG)
        clb = np.clip(self.lb, -_ACT_BIG, _ACT_BIG)
        act = pos @ cub + neg @ clb
        unbounded = ((rows > 0.0) & ~np.isfinite(self.ub)) | (
            (rows < 0.0) & ~np.isfinite(self.lb)
        )
        act[unbounded.any(axis=1)] = math.inf
        return act

    # ------------------------------------------------------------ reductions
    def tighten_bounds(self) -> None:
        tables = PropagationTables(self.snapshot())
        feasible, changes = propagate_bounds(
            tables, self.lb, self.ub, self.integer_mask, max_rounds=2, tol=_TOL
        )
        self.stats["bounds_tightened"] += len(changes)
        if not feasible:
            self.infeasible = True

    def dual_fix(self) -> None:
        if self.num_vars == 0:
            return
        in_eq = (
            np.any(self.a_eq != 0.0, axis=0)
            if self.a_eq.size
            else np.zeros(self.num_vars, dtype=bool)
        )
        col_min = (
            np.min(self.a_ub, axis=0) if self.a_ub.size else np.zeros(self.num_vars)
        )
        col_max = (
            np.max(self.a_ub, axis=0) if self.a_ub.size else np.zeros(self.num_vars)
        )
        down = (
            ~in_eq & (col_min >= 0.0) & (self.c >= 0.0) & np.isfinite(self.lb)
        )
        up = (
            ~in_eq
            & (col_max <= 0.0)
            & (self.c <= 0.0)
            & np.isfinite(self.ub)
            & ~down
        )
        already = self.ub - self.lb <= _TOL
        down &= ~already
        up &= ~already
        count = int(down.sum() + up.sum())
        if count == 0:
            return
        self.stats["dual_fixed"] += count
        values = np.where(down, self.lb, self.ub)
        cols = np.flatnonzero(down | up)
        self._fix_columns(cols, values[cols])

    def singleton_cols(self) -> None:
        while True:
            if self.num_vars == 0 or not self.a_eq.size:
                return
            ub_hits = (
                np.count_nonzero(self.a_ub, axis=0)
                if self.a_ub.size
                else np.zeros(self.num_vars, dtype=int)
            )
            eq_hits = np.count_nonzero(self.a_eq, axis=0)
            candidates = np.flatnonzero(
                ~self.integer_mask
                & (ub_hits == 0)
                & (eq_hits == 1)
                & ~np.isfinite(self.lb)
                & ~np.isfinite(self.ub)
            )
            if candidates.size == 0:
                return
            j = int(candidates[0])
            r = int(np.flatnonzero(self.a_eq[:, j])[0])
            pivot = float(self.a_eq[r, j])
            row = self.a_eq[r].copy()
            rhs = float(self.b_eq[r])
            others = np.flatnonzero((row != 0.0) & (np.arange(self.num_vars) != j))
            self.records.append(
                (
                    "subst",
                    int(self.orig[j]),
                    self.orig[others].copy(),
                    row[others].copy(),
                    rhs,
                    pivot,
                )
            )
            # Fold the objective through x_j = (rhs - sum a_rk x_k) / pivot.
            cj = float(self.c[j])
            if cj != 0.0:
                self.c[others] -= (cj / pivot) * row[others]
                self.c0 += cj * rhs / pivot
            self._drop_eq_rows(np.arange(self.a_eq.shape[0]) == r)
            keep = np.arange(self.num_vars) != j
            self._keep_columns(keep)
            self.stats["singleton_cols"] += 1
            self.stats["cols_removed"] += 1

    def coeff_tighten(self) -> None:
        if not self.a_ub.size or self.num_vars == 0:
            return
        unit_int = (
            self.integer_mask
            & np.isfinite(self.lb)
            & np.isfinite(self.ub)
            & (np.abs(self.ub - self.lb - 1.0) <= _TOL)
        )
        if not unit_int.any():
            return
        maxact = self._max_activity(self.a_ub)
        for i in range(self.a_ub.shape[0]):
            if not math.isfinite(maxact[i]):
                continue
            row = self.a_ub[i]
            cols = np.flatnonzero(unit_int & (row != 0.0))
            for j in cols.tolist():
                a = float(row[j])
                amag = abs(a)
                delta = float(self.b_ub[i]) - float(maxact[i]) + amag
                if delta <= _TOL or delta >= amag - _TOL:
                    continue
                new_mag = amag - delta
                if a > 0.0:
                    # y = x_j - lb: contribution floor at lb.
                    rhs_y = float(self.b_ub[i]) - a * float(self.lb[j]) - delta
                    self.a_ub[i, j] = new_mag
                    self.b_ub[i] = rhs_y + new_mag * float(self.lb[j])
                else:
                    # y = ub - x_j: contribution floor at ub.
                    rhs_y = float(self.b_ub[i]) - a * float(self.ub[j]) - delta
                    self.a_ub[i, j] = -new_mag
                    self.b_ub[i] = rhs_y - new_mag * float(self.ub[j])
                self.stats["coeffs_tightened"] += 1
                break  # one tightening per row per round; maxact is stale now

    def row_cleanup(self) -> None:
        # Guard on row counts, not .size: once every column is fixed the
        # matrices are (m, 0) with size 0, yet a residual empty row with a
        # nonzero rhs still proves infeasibility.
        if self.a_ub.shape[0]:
            empty = ~np.any(self.a_ub != 0.0, axis=1)
            if np.any(empty & (self.b_ub < -_TOL)):
                self.infeasible = True
                return
            maxact = self._max_activity(self.a_ub)
            redundant = maxact <= self.b_ub + _TOL * (1.0 + np.abs(self.b_ub))
            self._drop_ub_rows(empty | redundant)
        if self.a_ub.shape[0] > 1:
            seen: dict[bytes, int] = {}
            drop = np.zeros(self.a_ub.shape[0], dtype=bool)
            for i in range(self.a_ub.shape[0]):
                key = self.a_ub[i].tobytes()
                prev = seen.get(key)
                if prev is None:
                    seen[key] = i
                elif self.b_ub[i] < self.b_ub[prev]:
                    drop[prev] = True
                    seen[key] = i
                else:
                    drop[i] = True
            self._drop_ub_rows(drop)
        if self.a_eq.shape[0]:
            empty = ~np.any(self.a_eq != 0.0, axis=1)
            if np.any(empty & (np.abs(self.b_eq) > _TOL)):
                self.infeasible = True
                return
            self._drop_eq_rows(empty)
        if self.a_eq.shape[0] > 1:
            seen_eq: dict[bytes, int] = {}
            drop = np.zeros(self.a_eq.shape[0], dtype=bool)
            for i in range(self.a_eq.shape[0]):
                key = self.a_eq[i].tobytes()
                prev = seen_eq.get(key)
                if prev is None:
                    seen_eq[key] = i
                elif abs(self.b_eq[i] - self.b_eq[prev]) > _TOL:
                    self.infeasible = True
                    return
                else:
                    drop[i] = True
            self._drop_eq_rows(drop)

    def sweep_fixed(self) -> None:
        """Remove columns whose bounds collapsed to a point."""
        if self.num_vars == 0:
            return
        if np.any(self.lb > self.ub + _TOL):
            self.infeasible = True
            return
        fixed = np.flatnonzero(self.ub - self.lb <= _TOL)
        if fixed.size == 0:
            return
        values = self.lb[fixed].copy()
        snap = self.integer_mask[fixed]
        values[snap] = np.round(values[snap])
        self._fix_columns(fixed, values)


def presolve_root(form: MatrixForm, policy: "PresolvePolicy") -> PresolveResult:
    """Reduce ``form`` under ``policy``; exact for the integer program.

    Runs up to ``policy.rounds`` passes of the enabled reductions and stops
    early once a pass changes nothing. The returned form is safe to hand to
    any LP/MIP solver; map its solutions back with ``result.postsolve``.
    """
    reducer = _Reducer(form)
    identity = Postsolve(num_vars=form.num_vars, kept=np.arange(form.num_vars))
    if not policy.enabled:
        return PresolveResult("reduced", form, identity, reducer.stats)
    for _ in range(policy.rounds):
        before = (
            reducer.num_vars,
            reducer.a_ub.shape[0],
            reducer.a_eq.shape[0],
            reducer.stats["bounds_tightened"],
            reducer.stats["coeffs_tightened"],
        )
        reducer.stats["rounds"] += 1
        if policy.bound_tighten:
            reducer.tighten_bounds()
        if not reducer.infeasible:
            reducer.sweep_fixed()
        if not reducer.infeasible and policy.dual_fix:
            reducer.dual_fix()
        if not reducer.infeasible and policy.singleton_cols:
            reducer.singleton_cols()
        if not reducer.infeasible and policy.coeff_tighten:
            reducer.coeff_tighten()
        if not reducer.infeasible and policy.row_cleanup:
            reducer.row_cleanup()
        if reducer.infeasible:
            break
        after = (
            reducer.num_vars,
            reducer.a_ub.shape[0],
            reducer.a_eq.shape[0],
            reducer.stats["bounds_tightened"],
            reducer.stats["coeffs_tightened"],
        )
        if after == before:
            break
    postsolve = Postsolve(
        num_vars=form.num_vars, kept=reducer.orig, records=reducer.records
    )
    status = "infeasible" if reducer.infeasible else "reduced"
    return PresolveResult(status, reducer.snapshot(), postsolve, reducer.stats)
