"""Linear expressions over decision variables.

The expression layer lets formulation code read like the math in the paper:

    m.add_constr(quicksum(x[i, j] for j in buses) == 1)
    m.add_constr(T >= quicksum(t[i][j] * x[i, j] for i in cores))

Expressions are immutable-by-convention dictionaries mapping variables to
coefficients plus a constant term. Comparisons build :class:`Constraint`
objects; they never evaluate truthiness (attempting ``bool()`` on a
constraint raises, which catches the classic ``if x <= y:`` formulation bug).
"""

from __future__ import annotations

import enum
import numbers
from collections.abc import Iterable


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


CONTINUOUS = VarType.CONTINUOUS
INTEGER = VarType.INTEGER
BINARY = VarType.BINARY

LE = "<="
GE = ">="
EQ = "=="

_SENSES = (LE, GE, EQ)


class Variable:
    """A single decision variable owned by a :class:`~repro.ilp.model.Model`.

    Variables are created via ``Model.add_var`` (never directly) so the model
    can assign a dense column index. They hash by identity, which makes them
    usable as dictionary keys in expressions.
    """

    __slots__ = ("name", "index", "lb", "ub", "vartype", "_model_id")

    def __init__(self, name: str, index: int, lb: float, ub: float, vartype: VarType, model_id: int):
        self.name = name
        self.index = index
        self.lb = lb
        self.ub = ub
        self.vartype = vartype
        self._model_id = model_id

    @property
    def is_integer(self) -> bool:
        """True for INTEGER and BINARY variables."""
        return self.vartype is not VarType.CONTINUOUS

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    # -- arithmetic: delegate to LinExpr ------------------------------------
    def _as_expr(self) -> LinExpr:
        return LinExpr({self: 1.0})

    def __add__(self, other):
        return self._as_expr() + other

    def __radd__(self, other):
        return self._as_expr() + other

    def __sub__(self, other):
        return self._as_expr() - other

    def __rsub__(self, other):
        return (-self._as_expr()) + other

    def __mul__(self, other):
        return self._as_expr() * other

    def __rmul__(self, other):
        return self._as_expr() * other

    def __truediv__(self, other):
        return self._as_expr() / other

    def __neg__(self):
        return self._as_expr() * -1.0

    def __le__(self, other):
        return self._as_expr() <= other

    def __ge__(self, other):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, numbers.Real)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)


class LinExpr:
    """A linear expression ``sum(coef_v * v) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[Variable, float] | None = None, constant: float = 0.0):
        self.terms: dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def _coerce(value) -> LinExpr:
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._as_expr()
        if isinstance(value, numbers.Real):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def copy(self) -> LinExpr:
        return LinExpr(self.terms, self.constant)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other) -> LinExpr:
        other = self._coerce(other)
        result = self.copy()
        for var, coef in other.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other) -> LinExpr:
        return self.__add__(other)

    def __sub__(self, other) -> LinExpr:
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> LinExpr:
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar) -> LinExpr:
        if not isinstance(scalar, numbers.Real):
            raise TypeError("linear expressions can only be scaled by numbers (the model is linear)")
        scalar = float(scalar)
        return LinExpr({v: c * scalar for v, c in self.terms.items()}, self.constant * scalar)

    def __rmul__(self, scalar) -> LinExpr:
        return self.__mul__(scalar)

    def __truediv__(self, scalar) -> LinExpr:
        if not isinstance(scalar, numbers.Real):
            raise TypeError("linear expressions can only be divided by numbers")
        if scalar == 0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self.__mul__(1.0 / float(scalar))

    def __neg__(self) -> LinExpr:
        return self.__mul__(-1.0)

    # -- comparisons build constraints ----------------------------------------
    def __le__(self, other) -> Constraint:
        return Constraint(self - self._coerce(other), LE)

    def __ge__(self, other) -> Constraint:
        return Constraint(self - self._coerce(other), GE)

    def __eq__(self, other) -> Constraint:  # type: ignore[override]
        return Constraint(self - self._coerce(other), EQ)

    def __hash__(self):  # pragma: no cover - expressions are not hashable
        raise TypeError("LinExpr is unhashable; did you mean to compare with <=, >=, ==?")

    # -- inspection ------------------------------------------------------------
    def value(self, assignment: dict[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * assignment[var]
        return total

    def simplified(self, tol: float = 0.0) -> LinExpr:
        """Return a copy with coefficients of magnitude <= tol dropped."""
        return LinExpr(
            {v: c for v, c in self.terms.items() if abs(c) > tol}, self.constant
        )

    def __repr__(self) -> str:
        if not self.terms:
            return f"LinExpr({self.constant})"
        parts = []
        for var, coef in sorted(self.terms.items(), key=lambda item: item[0].index):
            if coef == 1.0:
                parts.append(var.name)
            elif coef == -1.0:
                parts.append(f"-{var.name}")
            else:
                parts.append(f"{coef:g}*{var.name}")
        body = " + ".join(parts).replace("+ -", "- ")
        if self.constant:
            body += f" + {self.constant:g}".replace("+ -", "- ")
        return f"LinExpr({body})"


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form.

    The left-hand side absorbs everything; ``rhs`` is derived as the negated
    constant so the constraint reads ``terms SENSE rhs``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str | None = None):
        if sense not in _SENSES:
            raise ValueError(f"sense must be one of {_SENSES}, got {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def terms(self) -> dict[Variable, float]:
        return self.expr.terms

    @property
    def rhs(self) -> float:
        return -self.expr.constant

    def __bool__(self) -> bool:
        raise TypeError(
            "a Constraint has no truth value; pass it to Model.add_constr "
            "instead of using it in a boolean context"
        )

    def is_satisfied(self, assignment: dict[Variable, float], tol: float = 1e-7) -> bool:
        """Check the constraint under a full variable assignment."""
        lhs = sum(coef * assignment[var] for var, coef in self.terms.items())
        if self.sense == LE:
            return lhs <= self.rhs + tol
        if self.sense == GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def violation(self, assignment: dict[Variable, float]) -> float:
        """Return the non-negative amount by which the constraint is violated."""
        lhs = sum(coef * assignment[var] for var, coef in self.terms.items())
        if self.sense == LE:
            return max(0.0, lhs - self.rhs)
        if self.sense == GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense} 0{label})"


def quicksum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one expression in a single pass.

    Equivalent to ``sum(items)`` but avoids quadratic-copy behaviour by
    accumulating into one mutable expression.
    """
    result = LinExpr()
    for item in items:
        item = LinExpr._coerce(item)
        for var, coef in item.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + coef
        result.constant += item.constant
    return result
