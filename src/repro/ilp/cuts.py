"""Knapsack cover cuts.

A classic strengthening for 0/1 rows: given a constraint
``sum a_j x_j <= b`` over binaries with ``a_j >= 0``, any *cover* C (a set
with ``sum_{j in C} a_j > b``) yields the valid cut
``sum_{j in C} x_j <= |C| - 1``. Separation uses the standard greedy
heuristic: pick variables by ascending ``1 - x*_j`` until the weights
exceed ``b``; the cover cuts off ``x*`` iff ``sum_{j in C}(1 - x*_j) < 1``.

The branch-and-bound solver applies a few rounds of these at the root when
``root_cuts > 0`` — an optional ablation knob (the TAM assignment ILPs have
equality rows, which cover cuts don't touch, so the knob mostly matters for
knapsack-like side constraints and the generic-MILP use of the substrate).
"""

from __future__ import annotations

import numpy as np

from repro.ilp.model import MatrixForm

_TOL = 1e-6


def _binary_mask(form: MatrixForm) -> np.ndarray:
    return form.integer_mask & (form.lb == 0.0) & (form.ub == 1.0)


def generate_cover_cuts(
    form: MatrixForm, x: np.ndarray, max_cuts: int = 20
) -> list[tuple[np.ndarray, float]]:
    """Return cover cuts of ``form``'s UB rows violated by the LP point ``x``.

    Each cut is ``(row, rhs)`` with ``row @ x <= rhs`` valid for every
    integer point and violated by ``x``. Rows must be pure non-negative
    binary knapsacks to participate; others are skipped.
    """
    binary = _binary_mask(form)
    cuts: list[tuple[np.ndarray, float]] = []
    for r in range(form.a_ub.shape[0]):
        if len(cuts) >= max_cuts:
            break
        row = form.a_ub[r]
        b = form.b_ub[r]
        support = np.flatnonzero(row)
        if len(support) < 2 or b <= 0:
            continue
        if not np.all(binary[support]) or np.any(row[support] < 0):
            continue
        if row[support].sum() <= b + _TOL:
            continue  # no cover exists; the row is never binding integrally

        # Greedy separation: cheapest (most fractional-up) items first.
        order = sorted(support, key=lambda j: 1.0 - x[j])
        cover: list[int] = []
        weight = 0.0
        for j in order:
            cover.append(j)
            weight += row[j]
            if weight > b + _TOL:
                break
        if weight <= b + _TOL:
            continue
        slack = sum(1.0 - x[j] for j in cover)
        if slack >= 1.0 - _TOL:
            continue  # not violated by x

        cut_row = np.zeros(form.num_vars)
        cut_row[cover] = 1.0
        cuts.append((cut_row, float(len(cover) - 1)))
    return cuts


def append_cuts(form: MatrixForm, cuts: list[tuple[np.ndarray, float]]) -> MatrixForm:
    """Return a new MatrixForm with ``cuts`` appended to the UB system."""
    if not cuts:
        return form
    rows = np.vstack([form.a_ub] + [cut[0][None, :] for cut in cuts])
    rhs = np.concatenate([form.b_ub, [cut[1] for cut in cuts]])
    return MatrixForm(
        c=form.c,
        c0=form.c0,
        a_ub=rows,
        b_ub=rhs,
        a_eq=form.a_eq,
        b_eq=form.b_eq,
        lb=form.lb,
        ub=form.ub,
        integer_mask=form.integer_mask,
    )
