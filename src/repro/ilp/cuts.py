"""Cutting planes: lifted knapsack covers, clique cuts, and the cut pool.

Cover cuts are the classic strengthening for 0/1 rows: given a
constraint ``sum a_j x_j <= b`` over binaries with ``a_j >= 0``, any
*cover* C (a set with ``sum_{j in C} a_j > b``) yields the valid cut
``sum_{j in C} x_j <= |C| - 1``. Separation uses the standard greedy
heuristic: pick variables by ascending ``1 - x*_j`` until the weights
exceed ``b``; the cover cuts off ``x*`` iff ``sum_{j in C}(1 - x*_j) < 1``.
With ``lift=True`` the cover is *extended*: every support variable at
least as heavy as the heaviest cover member joins the left-hand side at
the same right-hand side — any ``|C|`` members of the extension weigh at
least as much as C itself, so the inequality stays valid while strictly
dominating the plain cover cut.

Clique cuts come from the conflict graph (:mod:`repro.ilp.conflict`).
Both kinds flow through one :class:`CutPool` owned by the
branch-and-bound solver: the pool deduplicates cuts by their support
signature, caps how many are active, and retires cuts that stay slack
for several consecutive separation rounds (see
:class:`~repro.obs.policy.CutPolicy`). The low-level
``generate_cover_cuts`` / ``append_cuts`` helpers keep their PR-4
signatures for direct use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ilp.model import MatrixForm

_TOL = 1e-6


def _binary_mask(form: MatrixForm) -> np.ndarray:
    return form.integer_mask & (form.lb == 0.0) & (form.ub == 1.0)


def generate_cover_cuts(
    form: MatrixForm, x: np.ndarray, max_cuts: int = 20, lift: bool = False
) -> list[tuple[np.ndarray, float]]:
    """Return cover cuts of ``form``'s UB rows violated by the LP point ``x``.

    Each cut is ``(row, rhs)`` with ``row @ x <= rhs`` valid for every
    integer point and violated by ``x``. Rows must be pure non-negative
    binary knapsacks to participate; others are skipped. With ``lift``
    the cover is extended by the heavy non-cover support (same rhs),
    which never weakens the cut.
    """
    binary = _binary_mask(form)
    cuts: list[tuple[np.ndarray, float]] = []
    for r in range(form.a_ub.shape[0]):
        if len(cuts) >= max_cuts:
            break
        row = form.a_ub[r]
        b = form.b_ub[r]
        support = np.flatnonzero(row)
        if len(support) < 2 or b <= 0:
            continue
        if not np.all(binary[support]) or np.any(row[support] < 0):
            continue
        if row[support].sum() <= b + _TOL:
            continue  # no cover exists; the row is never binding integrally

        # Greedy separation: cheapest (most fractional-up) items first.
        order = sorted(support, key=lambda j: 1.0 - x[j])
        cover: list[int] = []
        weight = 0.0
        for j in order:
            cover.append(j)
            weight += row[j]
            if weight > b + _TOL:
                break
        if weight <= b + _TOL:
            continue
        slack = sum(1.0 - x[j] for j in cover)
        if slack >= 1.0 - _TOL:
            continue  # not violated by x

        members = cover
        if lift:
            # Extended cover: any |C| members of E(C) weigh at least as
            # much as C (every extension item outweighs every cover
            # item), so sum_{E(C)} x <= |C| - 1 remains valid.
            a_max = max(row[j] for j in cover)
            in_cover = set(cover)
            members = cover + [
                int(j) for j in support
                if j not in in_cover and row[j] >= a_max - _TOL
            ]
        cut_row = np.zeros(form.num_vars)
        cut_row[members] = 1.0
        cuts.append((cut_row, float(len(cover) - 1)))
    return cuts


def append_cuts(form: MatrixForm, cuts: list[tuple[np.ndarray, float]]) -> MatrixForm:
    """Return a new MatrixForm with ``cuts`` appended to the UB system."""
    if not cuts:
        return form
    rows = np.vstack([form.a_ub] + [cut[0][None, :] for cut in cuts])
    rhs = np.concatenate([form.b_ub, [cut[1] for cut in cuts]])
    return MatrixForm(
        c=form.c,
        c0=form.c0,
        a_ub=rows,
        b_ub=rhs,
        a_eq=form.a_eq,
        b_eq=form.b_eq,
        lb=form.lb,
        ub=form.ub,
        integer_mask=form.integer_mask,
    )


# --------------------------------------------------------------------- pool
@dataclass
class Cut:
    """One cutting plane ``sum coefs[i] * x[cols[i]] <= rhs``."""

    cols: tuple[int, ...]
    coefs: tuple[float, ...]
    rhs: float
    kind: str  # "clique" | "cover"
    violation: float = 0.0
    age: int = field(default=0, compare=False)

    @property
    def key(self) -> tuple:
        """Support signature used for pool deduplication (kind-agnostic)."""
        terms = tuple(sorted(zip(self.cols, (round(c, 9) for c in self.coefs))))
        return (terms, round(self.rhs, 9))

    def activity(self, x: np.ndarray) -> float:
        return float(sum(c * x[j] for j, c in zip(self.cols, self.coefs)))

    def as_pair(self, num_vars: int) -> tuple[np.ndarray, float]:
        """Dense ``(row, rhs)`` form for :func:`append_cuts`."""
        row = np.zeros(num_vars)
        row[list(self.cols)] = self.coefs
        return row, self.rhs


class CutPool:
    """Active cuts with dedup, a size cap, and slack-based aging.

    ``add`` rejects duplicates (by support signature) and anything past
    the capacity; ``age_and_prune`` bumps the age of every cut slack at
    the current LP point, resets it for binding cuts, and drops cuts
    whose age exceeds ``max_age`` — keeping the rebuilt LP workspace
    small across separation rounds.
    """

    def __init__(self, max_size: int = 256, max_age: int = 3):
        self.max_size = max_size
        self.max_age = max_age
        self._by_key: dict[tuple, Cut] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def active(self) -> list[Cut]:
        return list(self._by_key.values())

    def add(self, cut: Cut) -> bool:
        """Admit ``cut`` unless it is a duplicate or the pool is full."""
        key = cut.key
        if key in self._by_key or len(self._by_key) >= self.max_size:
            return False
        self._by_key[key] = cut
        return True

    def age_and_prune(self, x: np.ndarray, tol: float = _TOL) -> list[Cut]:
        """Age cuts slack at ``x``; drop and return the expired ones."""
        dropped: list[Cut] = []
        for key, cut in list(self._by_key.items()):
            if cut.rhs - cut.activity(x) > tol:
                cut.age += 1
            else:
                cut.age = 0
            if cut.age > self.max_age:
                dropped.append(self._by_key.pop(key))
        return dropped


def generate_cuts(form, x, policy, graph=None) -> list[Cut]:
    """One separation round at the LP point ``x`` under ``policy``.

    ``form`` must be the *base* matrix (without pool cuts): separation
    only ever derives from original rows, so every emitted cut is valid
    for the integer hull regardless of which node requested it. Returns
    at most ``policy.max_cuts_per_round`` cuts, most violated first.
    """
    cuts: list[Cut] = []
    if policy.clique and graph is not None:
        for cols, violation in graph.separate(
            x, max_cliques=policy.max_cuts_per_round,
            min_violation=policy.min_violation,
        ):
            cuts.append(
                Cut(cols, (1.0,) * len(cols), 1.0, "clique", violation)
            )
    if policy.cover:
        for row, rhs in generate_cover_cuts(
            form, x, max_cuts=policy.max_cuts_per_round, lift=True
        ):
            support = np.flatnonzero(row)
            violation = float(row @ x) - float(rhs)
            if violation < policy.min_violation:
                continue
            cuts.append(
                Cut(
                    tuple(int(j) for j in support),
                    tuple(float(row[j]) for j in support),
                    float(rhs),
                    "cover",
                    violation,
                )
            )
    cuts.sort(key=lambda cut: (-cut.violation, cut.kind, cut.cols))
    return cuts[: policy.max_cuts_per_round]
