"""A small mixed-integer linear programming substrate.

The DAC 2000 paper formulates TAM design as integer linear programs and
solves them with the off-the-shelf ``lpsolve`` package. This subpackage is
our from-scratch replacement:

- :mod:`repro.ilp.expr` — variables, linear expressions, and constraints
  built with Python operators (``2 * x + y <= 3``);
- :mod:`repro.ilp.model` — the :class:`Model` container with validation and
  standard-form export;
- :mod:`repro.ilp.simplex` — two LP engines: a dense two-phase tableau
  simplex for cold solves (Bland's rule, bounded variables) and a revised
  dual simplex (:class:`~repro.ilp.simplex.RevisedSimplex`) that
  reoptimizes node LPs warm from a parent :class:`~repro.ilp.simplex.Basis`;
- :mod:`repro.ilp.presolve_root` — root model presolve (dual fixing,
  singleton substitution, coefficient tightening, row cleanup) with exact
  postsolve back to the original variable space;
- :mod:`repro.ilp.branch_and_bound` — best-first branch and bound with a
  diving heuristic for early incumbents;
- :mod:`repro.ilp.scipy_backend` — a thin adapter around
  ``scipy.optimize.milp`` (HiGHS) used to cross-check our solver in tests.

Typical use::

    from repro.ilp import Model, BINARY

    m = Model("assign")
    x = m.add_var("x", vartype=BINARY)
    y = m.add_var("y", vartype=BINARY)
    m.add_constr(x + y <= 1, name="conflict")
    m.maximize(3 * x + 2 * y)
    sol = m.solve()
    assert sol.is_optimal and sol[x] == 1
"""

from repro.ilp.expr import (
    Variable,
    LinExpr,
    Constraint,
    VarType,
    CONTINUOUS,
    INTEGER,
    BINARY,
    LE,
    GE,
    EQ,
    quicksum,
)
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStats, Status
from repro.ilp.presolve_root import Postsolve, PresolveResult, presolve_root
from repro.ilp.simplex import (
    Basis,
    RevisedSimplex,
    SimplexResult,
    WarmLpResult,
    solve_lp_simplex,
)
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.scipy_backend import solve_with_scipy

__all__ = [
    "Variable",
    "LinExpr",
    "Constraint",
    "VarType",
    "CONTINUOUS",
    "INTEGER",
    "BINARY",
    "LE",
    "GE",
    "EQ",
    "quicksum",
    "Model",
    "Solution",
    "SolveStats",
    "Status",
    "SimplexResult",
    "solve_lp_simplex",
    "Basis",
    "RevisedSimplex",
    "WarmLpResult",
    "Postsolve",
    "PresolveResult",
    "presolve_root",
    "BranchAndBoundSolver",
    "solve_with_scipy",
]
