"""Best-first branch and bound over LP relaxations.

The solver operates on the dense :class:`~repro.ilp.model.MatrixForm` of a
model. Each node carries tightened variable bounds; branching splits on a
fractional integer variable (most-fractional by default). A depth-limited
*diving* pass at the root rounds its way to an early incumbent so that pruning
has a bound to work with from the start.

All objective handling is in minimization sense; the wrapping ``solve``
translates back to the model's sense.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np

from repro.ilp.lp import LpResult, solve_matrix_lp
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStats, Status
from repro.util.errors import SolverError

_INT_TOL = 1e-6


class BranchAndBoundSolver:
    """Exact MILP solver: LP relaxations + best-first search.

    Parameters
    ----------
    model:
        The model to solve.
    node_limit:
        Maximum number of nodes to process before giving up; when hit, the
        returned solution has status ``NODE_LIMIT`` (or ``FEASIBLE`` if an
        incumbent was found on the way).
    gap_tol:
        Absolute optimality gap at which the search stops early. The TAM
        objectives are integral cycle counts, so the designer passes
        ``gap_tol`` slightly under 1 to stop as soon as the bound rounds up
        to the incumbent.
    time_limit:
        Wall-clock budget in seconds (None = unlimited).
    lp_method:
        ``"scipy"`` (HiGHS, default) or ``"simplex"`` (our tableau engine).
    branching:
        ``"most_fractional"`` (default) or ``"first"`` (lowest index).
    dive:
        Whether to run the rounding dive at the root for an early incumbent.
    root_cuts:
        Rounds of knapsack cover cuts applied at the root (0 = off). Valid
        for the integer hull, so the cut rows stay active in every node.
    warm_start:
        Optional feasible assignment ``{Variable: value}`` used as the
        initial incumbent (e.g. a greedy heuristic's solution). Validated
        against the model first; an infeasible warm start is rejected with
        :class:`~repro.util.errors.ValidationError` rather than silently
        breaking pruning.
    """

    def __init__(
        self,
        model: Model,
        node_limit: int = 200_000,
        gap_tol: float = 1e-9,
        time_limit: float | None = None,
        lp_method: str = "scipy",
        branching: str = "most_fractional",
        dive: bool = True,
        root_cuts: int = 0,
        warm_start: dict | None = None,
    ):
        if branching not in ("most_fractional", "first"):
            raise ValueError(f"unknown branching rule {branching!r}")
        self.model = model
        self.node_limit = node_limit
        self.gap_tol = gap_tol
        self.time_limit = time_limit
        self.lp_method = lp_method
        self.branching = branching
        self.dive = dive
        self.root_cuts = root_cuts

        self._form = model.to_matrix_form()
        self._int_indices = np.flatnonzero(self._form.integer_mask)
        self._stats = SolveStats()
        self._incumbent_x: np.ndarray | None = None
        self._incumbent_obj = math.inf
        if warm_start is not None:
            self._install_warm_start(warm_start)

    def _install_warm_start(self, values: dict) -> None:
        from repro.util.errors import ValidationError

        problems = self.model.check_solution(values)
        if problems:
            raise ValidationError(
                "warm start is not feasible for the model: " + "; ".join(problems[:3])
            )
        x = np.zeros(self._form.num_vars)
        for var, value in values.items():
            x[var.index] = value
        sign = 1.0 if self.model.sense == "min" else -1.0
        objective = sign * self.model.objective_value(values)
        self._try_update_incumbent(x, objective)

    # ------------------------------------------------------------------ api
    def solve(self) -> Solution:
        start = time.perf_counter()
        try:
            status = self._search(start)
        finally:
            self._stats.wall_time = time.perf_counter() - start
        return self._wrap(status)

    # ------------------------------------------------------------ internals
    def _solve_node(self, lb: np.ndarray, ub: np.ndarray) -> LpResult:
        self._stats.lp_solves += 1
        lp_start = time.perf_counter()
        result = solve_matrix_lp(self._form, lb=lb, ub=ub, method=self.lp_method)
        self._stats.lp_time += time.perf_counter() - lp_start
        self._stats.lp_iterations += result.iterations
        return result

    def _fractional_index(self, x: np.ndarray) -> int | None:
        """Pick the integer variable to branch on, or None if all integral."""
        best_idx: int | None = None
        best_score = -1.0
        for j in self._int_indices:
            frac = abs(x[j] - round(x[j]))
            if frac <= _INT_TOL:
                continue
            if self.branching == "first":
                return int(j)
            score = min(frac, 1.0 - frac)
            if score > best_score:
                best_score = score
                best_idx = int(j)
        return best_idx

    def _try_update_incumbent(self, x: np.ndarray, objective: float) -> None:
        if objective < self._incumbent_obj - 1e-12:
            snapped = x.copy()
            snapped[self._int_indices] = np.round(snapped[self._int_indices])
            self._incumbent_x = snapped
            self._incumbent_obj = objective
            self._stats.incumbent_updates += 1

    def _dive_for_incumbent(self, x: np.ndarray) -> None:
        """Round-and-refix dive from the root relaxation.

        Repeatedly fixes the most fractional integer variable to its nearest
        integer and re-solves; stops on infeasibility or when the relaxation
        comes back integral. Produces an incumbent often good enough to prune
        most of the tree on assignment-structured models.
        """
        lb = self._form.lb.copy()
        ub = self._form.ub.copy()
        current = x
        for _ in range(len(self._int_indices) + 1):
            j = self._fractional_index(current)
            if j is None:
                obj = float(self._form.c @ current) + self._form.c0
                self._try_update_incumbent(current, obj)
                return
            value = float(round(current[j]))
            value = min(max(value, lb[j]), ub[j])
            lb[j] = ub[j] = value
            result = self._solve_node(lb, ub)
            if result.status != "optimal":
                return
            current = result.x

    def _search(self, start: float) -> Status:
        root = self._solve_node(self._form.lb, self._form.ub)
        self._stats.nodes += 1
        if root.status == "infeasible":
            return Status.INFEASIBLE
        if root.status == "unbounded":
            return Status.UNBOUNDED
        if root.status == "error":
            raise SolverError("LP relaxation failed at the root node")

        frac = self._fractional_index(root.x)
        if frac is None:
            self._try_update_incumbent(root.x, root.objective)
            self._stats.best_bound = root.objective
            self._stats.gap = 0.0
            return Status.OPTIMAL

        for _ in range(self.root_cuts):
            from repro.ilp.cuts import append_cuts, generate_cover_cuts

            cuts = generate_cover_cuts(self._form, root.x)
            if not cuts:
                break
            self._form = append_cuts(self._form, cuts)
            self._stats.cuts += len(cuts)
            root = self._solve_node(self._form.lb, self._form.ub)
            if root.status != "optimal":  # cuts are valid: only numerical noise lands here
                raise SolverError("root LP failed after adding cover cuts")
            if self._fractional_index(root.x) is None:
                self._try_update_incumbent(root.x, root.objective)
                self._stats.best_bound = root.objective
                self._stats.gap = 0.0
                return Status.OPTIMAL

        if self.dive:
            self._dive_for_incumbent(root.x)

        counter = itertools.count()  # heap tie-breaker
        heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
        heapq.heappush(
            heap, (root.objective, next(counter), self._form.lb.copy(), self._form.ub.copy())
        )

        while heap:
            bound, _, lb, ub = heapq.heappop(heap)
            self._stats.best_bound = bound
            if bound >= self._incumbent_obj - self.gap_tol:
                # Best-first order: every remaining node is at least as bad.
                self._stats.gap = max(0.0, self._incumbent_obj - bound)
                return Status.OPTIMAL if self._incumbent_x is not None else Status.INFEASIBLE

            if self._stats.nodes >= self.node_limit:
                return Status.FEASIBLE if self._incumbent_x is not None else Status.NODE_LIMIT
            if self.time_limit is not None and time.perf_counter() - start > self.time_limit:
                return Status.FEASIBLE if self._incumbent_x is not None else Status.NODE_LIMIT

            result = self._solve_node(lb, ub)
            self._stats.nodes += 1
            if result.status != "optimal":
                continue  # infeasible subtree (unbounded cannot appear below a bounded root)
            if result.objective >= self._incumbent_obj - self.gap_tol:
                continue

            j = self._fractional_index(result.x)
            if j is None:
                self._try_update_incumbent(result.x, result.objective)
                continue

            value = result.x[j]
            down_ub = ub.copy()
            down_ub[j] = math.floor(value)
            up_lb = lb.copy()
            up_lb[j] = math.ceil(value)
            heapq.heappush(heap, (result.objective, next(counter), lb.copy(), down_ub))
            heapq.heappush(heap, (result.objective, next(counter), up_lb, ub.copy()))

        if self._incumbent_x is None:
            return Status.INFEASIBLE
        self._stats.gap = 0.0
        return Status.OPTIMAL

    def _wrap(self, status: Status) -> Solution:
        sign = 1.0 if self.model.sense == "min" else -1.0
        if status in (Status.OPTIMAL, Status.FEASIBLE) and self._incumbent_x is not None:
            values = {
                var: float(self._incumbent_x[var.index]) for var in self.model.variables
            }
            return Solution(
                status,
                objective=sign * self._incumbent_obj,
                values=values,
                stats=self._stats,
                backend="bnb",
            )
        return Solution(status, stats=self._stats, backend="bnb")
