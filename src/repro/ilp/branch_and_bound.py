"""Best-first branch and bound over LP relaxations.

The solver operates on the dense :class:`~repro.ilp.model.MatrixForm` of a
model through a precomputed :class:`~repro.ilp.lp.LpWorkspace`, so the
scipy constraint handles are derived once, not per node. Before the search
starts, **root presolve** (:mod:`repro.ilp.presolve_root`, gated by a
:class:`~repro.obs.policy.PresolvePolicy`) shrinks the model itself —
dual fixing, singleton substitution, coefficient tightening, row cleanup —
and the whole search then runs in the reduced space; every incumbent is
mapped back through the recorded ``Postsolve`` before it is stored, so
cache records, checkpoints, and fingerprints stay in original variable
space and are presolve-independent. The search runs a fast path on every
node:

- **delta-bound nodes** — heap entries carry only the chain of bound
  changes along their tree path (a shared-tail linked list of
  ``(column, kind, value)`` tightenings); full ``lb``/``ub`` arrays are
  materialized from the root bounds only when a node is actually expanded;
- **node presolve** — integer bound propagation over the materialized node
  bounds (with the incumbent as an objective cutoff row) plus reduced-cost
  fixing from the root LP duals, pruning or shrinking subtrees before any
  LP is solved (see :mod:`repro.ilp.presolve`);
- **warm-started node LPs** (default on) — each heap entry also carries
  its parent's simplex :class:`~repro.ilp.simplex.Basis`; a child differs
  from its parent by bound tightenings only, which keep that basis dual
  feasible, so the bounded revised dual simplex reoptimizes in a few
  pivots instead of a cold ``lp_method`` solve — and its monotone dual
  bound prunes the node early once it crosses the incumbent cutoff.
  Numerical doubt of any kind falls back to the cold engine;
- **pseudocost branching** (default) — branching scores learned from the
  observed objective degradations of earlier branchings, falling back to
  most-fractional until history exists.

A depth-limited *diving* pass at the root rounds its way to an early
incumbent so that pruning has a bound to work with from the start. All
objective handling is in minimization sense; the wrapping ``solve``
translates back to the model's sense.
"""

from __future__ import annotations

import heapq
import itertools
import math
import warnings

import numpy as np

from repro.ilp.lp import LpResult, LpWorkspace, solve_matrix_lp
from repro.ilp.model import MatrixForm, Model
from repro.ilp.presolve import LB_TIGHTENED, propagate_bounds, reduced_cost_tighten
from repro.ilp.presolve_root import Postsolve, presolve_root
from repro.ilp.simplex import Basis, RevisedSimplex
from repro.ilp.solution import Solution, SolveStats, Status
from repro.obs import get_metrics, node_event, now, span
from repro.obs import event as trace_event
from repro.obs.policy import (
    DEFAULT_PRESOLVE_POLICY,
    CheckpointStore,
    CutPolicy,
    PresolvePolicy,
)
from repro.util.errors import SolverError

_INT_TOL = 1e-6

#: Floor for pseudocost scores so an (estimated) zero degradation never
#: erases the other direction's signal in the product rule.
_PC_EPS = 1e-6


class BranchAndBoundSolver:
    """Exact MILP solver: LP relaxations + best-first search.

    Parameters
    ----------
    model:
        The model to solve.
    node_limit:
        Maximum number of nodes to process before giving up; when hit, the
        returned solution has status ``NODE_LIMIT`` (or ``FEASIBLE`` if an
        incumbent was found on the way).
    gap_tol:
        Absolute optimality gap at which the search stops early. The TAM
        objectives are integral cycle counts, so the designer passes
        ``gap_tol`` slightly under 1 to stop as soon as the bound rounds up
        to the incumbent.
    time_limit:
        Wall-clock budget in seconds (None = unlimited).
    lp_method:
        ``"scipy"`` (HiGHS, default) or ``"simplex"`` (our tableau engine).
    branching:
        ``"pseudocost"`` (default): learned degradation scores with a
        most-fractional fallback until history exists;
        ``"most_fractional"``: the pre-fast-path rule; ``"first"``: lowest
        index. ``branching="most_fractional"`` restores the old behavior
        exactly.
    dive:
        Whether to run the rounding dive at the root for an early incumbent.
    cut_policy:
        A :class:`~repro.obs.policy.CutPolicy` turning on cutting-plane
        separation (None = off): maximal-clique cuts from the conflict
        graph plus lifted knapsack covers, separated in rounds at the
        root and (``max_depth > 0``) at shallow tree nodes, deduplicated
        and aged out through a shared :class:`~repro.ilp.cuts.CutPool`.
        Every cut is valid for the integer hull, so the active cut rows
        stay in the LP for every node.
    root_cuts:
        Deprecated spelling of ``cut_policy`` (``root_cuts=N`` maps to
        ``CutPolicy.legacy_root_cuts(N)``: N cover-only root rounds).
        Accepted for one release behind a :class:`DeprecationWarning`.
    presolve:
        Node presolve (default on): integer bound propagation per node and
        reduced-cost fixing from the root LP duals. ``presolve=False``
        restores the plain LP-per-node search. Never changes the optimum —
        only the work needed to prove it.
    root_presolve:
        A :class:`~repro.obs.policy.PresolvePolicy` for the one-time model
        reduction before the search (None = the default policy, on).
        Pass ``PresolvePolicy.disabled()`` to search the original model.
        Exact for the integer program; incumbents are postsolved back to
        original variable space before they are stored anywhere.
    lp_warm_start:
        Warm-started node LPs (None = on): re-solve each child node with
        the bounded revised dual simplex starting from the parent basis,
        falling back to the cold ``lp_method`` engine on any numerical
        doubt. ``lp_method`` only selects the *cold* engine — warm
        re-solves always run our own :class:`~repro.ilp.simplex.RevisedSimplex`.
    warm_start:
        Optional feasible assignment ``{Variable: value}`` used as the
        initial incumbent (e.g. a greedy heuristic's solution). Validated
        against the model first; an infeasible warm start is rejected with
        :class:`~repro.util.errors.ValidationError` rather than silently
        breaking pruning.
    checkpoint_dir:
        Directory of incumbent checkpoints keyed by instance fingerprint
        (see :class:`~repro.obs.CheckpointStore`). On start, a stored
        incumbent for this instance is validated and installed (a warm
        resume for interrupted sweeps); improvements are persisted back,
        debounced by ``checkpoint_interval``.
    checkpoint_interval:
        Minimum seconds between incumbent checkpoint writes — rapid
        incumbent improvements no longer do synchronous disk I/O inside the
        search loop on every step. The final incumbent is always persisted
        when the solve finishes, whatever the interval.
    """

    def __init__(
        self,
        model: Model,
        node_limit: int = 200_000,
        gap_tol: float = 1e-9,
        time_limit: float | None = None,
        lp_method: str = "scipy",
        branching: str = "pseudocost",
        dive: bool = True,
        cut_policy: CutPolicy | None = None,
        root_cuts: int | None = None,
        presolve: bool = True,
        root_presolve: PresolvePolicy | None = None,
        lp_warm_start: bool | None = None,
        warm_start: dict | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_interval: float = 1.0,
    ):
        if branching not in ("pseudocost", "most_fractional", "first"):
            raise ValueError(f"unknown branching rule {branching!r}")
        if root_cuts is not None:
            warnings.warn(
                "root_cuts is deprecated and will be removed next release; "
                "pass cut_policy=CutPolicy(...) instead (root_cuts=N maps to "
                "CutPolicy.legacy_root_cuts(N))",
                DeprecationWarning,
                stacklevel=2,
            )
            if cut_policy is not None:
                raise ValueError(
                    "pass either cut_policy or the deprecated root_cuts, not both"
                )
            cut_policy = CutPolicy.legacy_root_cuts(int(root_cuts))
        self.model = model
        self.node_limit = node_limit
        self.gap_tol = gap_tol
        self.time_limit = time_limit
        self.lp_method = lp_method
        self.branching = branching
        self.dive = dive
        self.cut_policy = cut_policy
        self.presolve = bool(presolve)
        self.root_presolve = (
            DEFAULT_PRESOLVE_POLICY if root_presolve is None else root_presolve
        )
        self.lp_warm_start = True if lp_warm_start is None else bool(lp_warm_start)
        self.checkpoint_interval = float(checkpoint_interval)

        self._cuts_enabled = cut_policy is not None and cut_policy.enabled
        self._cut_pool = None
        self._conflicts = None
        if self._cuts_enabled:
            from repro.ilp.cuts import CutPool

            assert cut_policy is not None
            self._cut_pool = CutPool(
                max_size=cut_policy.max_pool, max_age=cut_policy.max_age
            )
        # The original form anchors everything that outlives this solve:
        # checkpoint fingerprints, incumbents, the returned values. Root
        # presolve later rebinds the *search* arrays to a reduced form via
        # _bind_form; _postsolve maps between the two spaces.
        self._orig_form = model.to_matrix_form()
        self._orig_int_indices = np.flatnonzero(self._orig_form.integer_mask)
        self._postsolve: Postsolve | None = None
        self._bind_form(self._orig_form)
        self._root_obj: float | None = None
        self._root_rc: np.ndarray | None = None
        self._root_lb: np.ndarray | None = None
        self._root_ub: np.ndarray | None = None
        self._stats = SolveStats()
        self._incumbent_x: np.ndarray | None = None
        self._incumbent_obj = math.inf
        self._checkpoints: CheckpointStore | None = None
        self._fingerprint: str | None = None
        self._last_checkpoint = -math.inf
        self._checkpoint_dirty = False
        if checkpoint_dir is not None:
            from repro.runtime.cache import matrix_fingerprint

            self._checkpoints = CheckpointStore(checkpoint_dir)
            self._fingerprint = matrix_fingerprint(self._orig_form)
        if warm_start is not None:
            self._install_warm_start(warm_start)
        if self._checkpoints is not None:
            self._resume_from_checkpoint()

    def _bind_form(self, form: MatrixForm) -> None:
        """Point the search machinery at ``form`` (original or reduced).

        Cuts append rows to a rebuilt ``self._form``; ``self._base_form``
        stays at the bound form so separation always derives from uncut
        rows and cut validity survives pool rebuilds.
        """
        self._form = form
        self._base_form = form
        self._workspace = LpWorkspace(form)
        self._int_indices = np.flatnonzero(form.integer_mask)
        self._int_mask = form.integer_mask
        # Root bounds shared by every node materialization; reduced-cost
        # fixing tightens these globally as the incumbent improves.
        self._base_lb = form.lb.copy()
        self._base_ub = form.ub.copy()
        n = form.num_vars
        self._pc_dn = np.zeros(n)
        self._pc_up = np.zeros(n)
        self._pc_dn_n = np.zeros(n, dtype=np.int64)
        self._pc_up_n = np.zeros(n, dtype=np.int64)
        self._basis_generation = 0
        self._warm_engine = (
            RevisedSimplex(form, generation=0) if self.lp_warm_start else None
        )

    def _install_warm_start(self, values: dict) -> None:
        from repro.util.errors import ValidationError

        problems = self.model.check_solution(values)
        if problems:
            raise ValidationError(
                "warm start is not feasible for the model: " + "; ".join(problems[:3])
            )
        x = np.zeros(self._orig_form.num_vars)
        for var, value in values.items():
            x[var.index] = value
        sign = 1.0 if self.model.sense == "min" else -1.0
        objective = sign * self.model.objective_value(values)
        self._try_update_incumbent(x, objective)

    def _resume_from_checkpoint(self) -> None:
        """Install a persisted incumbent for this instance, if one validates."""
        assert self._checkpoints is not None and self._fingerprint is not None
        payload = self._checkpoints.load(self._fingerprint)
        if payload is None:
            return
        values = payload.get("values") or []
        if len(values) != self._orig_form.num_vars:
            return
        by_var = {var: float(values[var.index]) for var in self.model.variables}
        if self.model.check_solution(by_var):
            return  # stale/incompatible checkpoint: ignore, never break pruning
        x = np.array(values, dtype=float)
        sign = 1.0 if self.model.sense == "min" else -1.0
        objective = sign * self.model.objective_value(by_var)
        self._try_update_incumbent(x, objective)
        trace_event("checkpoint_resume", objective=objective)

    # ------------------------------------------------------------------ api
    def solve(self) -> Solution:
        start = now()
        try:
            status = self._search(start)
        finally:
            self._flush_checkpoint()
            self._stats.wall_time = now() - start
            metrics = get_metrics()
            metrics.counter("solve.nodes").inc(self._stats.nodes)
            metrics.counter("solve.lp_solves").inc(self._stats.lp_solves)
            metrics.counter("solve.lp_iterations").inc(self._stats.lp_iterations)
            metrics.counter("solve.incumbent_updates").inc(self._stats.incumbent_updates)
            metrics.counter("solve.presolve_fixings").inc(self._stats.presolve_fixings)
            metrics.counter("solve.presolve_pruned").inc(self._stats.presolve_pruned)
            metrics.counter("solve.pseudocost_branches").inc(self._stats.pseudocost_branches)
            metrics.counter("solve.cuts").inc(self._stats.cuts)
            metrics.counter("solve.cut_rounds").inc(self._stats.cut_rounds)
            metrics.counter("solve.root_cols_removed").inc(self._stats.root_cols_removed)
            metrics.counter("solve.root_rows_removed").inc(self._stats.root_rows_removed)
            metrics.counter("solve.warm_lp_solves").inc(self._stats.warm_lp_solves)
            metrics.counter("solve.warm_lp_fallbacks").inc(self._stats.warm_lp_fallbacks)
            metrics.histogram("solve.wall_time").observe(self._stats.wall_time)
            if self._stats.best_bound is not None:
                metrics.gauge("solve.best_bound").set(self._stats.best_bound)
        return self._wrap(status)

    # ------------------------------------------------------------ internals
    def _solve_node(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        want_reduced_costs: bool = False,
        basis: Basis | None = None,
        cutoff: float | None = None,
    ) -> LpResult:
        """One node LP: warm dual-simplex reoptimization when available.

        ``basis`` is the parent's optimal basis (the engine ignores it when
        its generation is stale — cut rounds rebuild the matrix). The warm
        engine's three healthy outcomes map directly: ``optimal`` (after a
        residual check of the claimed point), ``infeasible``, and
        ``cutoff`` (the monotone dual bound crossed ``cutoff``; the caller
        prunes). Anything else — or a failed residual check — re-solves
        cold with ``lp_method``.
        """
        self._stats.lp_solves += 1
        lp_start = now()
        if self._warm_engine is not None:
            warm = self._warm_engine.solve(lb, ub, basis=basis, cutoff=cutoff)
            if warm.status == "optimal" and self._warm_point_ok(warm.x, lb, ub):
                self._stats.warm_lp_solves += 1
                self._stats.lp_time += now() - lp_start
                self._stats.lp_iterations += warm.iterations
                return LpResult(
                    "optimal",
                    warm.x,
                    warm.objective,
                    warm.iterations,
                    reduced_costs=warm.reduced_costs,
                    basis=warm.basis,
                )
            if warm.status in ("infeasible", "cutoff"):
                self._stats.warm_lp_solves += 1
                self._stats.lp_time += now() - lp_start
                self._stats.lp_iterations += warm.iterations
                return LpResult(warm.status, None, warm.objective, warm.iterations)
            self._stats.warm_lp_fallbacks += 1
        result = solve_matrix_lp(
            self._form,
            lb=lb,
            ub=ub,
            method=self.lp_method,
            workspace=self._workspace,
            want_reduced_costs=want_reduced_costs,
        )
        self._stats.lp_time += now() - lp_start
        self._stats.lp_iterations += result.iterations
        return result

    def _warm_point_ok(self, x: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> bool:
        """Cheap residual guard on a warm-claimed optimum before trusting it."""
        if np.any(x < lb - 1e-6) or np.any(x > ub + 1e-6):
            return False
        form = self._form
        if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + 1e-6):
            return False
        if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > 1e-6):
            return False
        return True

    def _cutoff(self) -> float:
        """Objective value at/above which a solution cannot matter."""
        return self._incumbent_obj - self.gap_tol

    def _fractional_index(self, x: np.ndarray) -> int | None:
        """Pick the integer variable to branch on, or None if all integral.

        Vectorized; the ``"first"`` rule returns the lowest fractional index
        and every other rule scores by fractionality ``min(f, 1-f)`` with
        ties broken toward the lowest index (matching the historical scalar
        loop exactly — ``np.argmax`` keeps the first maximum).
        """
        if self._int_indices.size == 0:
            return None
        xi = x[self._int_indices]
        frac = np.abs(xi - np.round(xi))
        mask = frac > _INT_TOL
        if not mask.any():
            return None
        if self.branching == "first":
            return int(self._int_indices[int(np.argmax(mask))])
        scores = np.where(mask, np.minimum(frac, 1.0 - frac), -1.0)
        return int(self._int_indices[int(np.argmax(scores))])

    def _select_branch(self, x: np.ndarray) -> int | None:
        """Branching decision for a search node (pseudocost-aware)."""
        if self.branching != "pseudocost":
            return self._fractional_index(x)
        xi = x[self._int_indices]
        dist = np.abs(xi - np.round(xi))
        mask = dist > _INT_TOL
        if not mask.any():
            return None
        cand = self._int_indices[mask]
        f = (xi - np.floor(xi))[mask]
        have_dn = self._pc_dn_n[cand] > 0
        have_up = self._pc_up_n[cand] > 0
        initialized = np.concatenate(
            [self._pc_dn[self._pc_dn_n > 0], self._pc_up[self._pc_up_n > 0]]
        )
        if initialized.size == 0:
            # No history yet: initialize from most-fractional.
            return self._fractional_index(x)
        avg = float(initialized.mean())
        est_dn = np.where(have_dn, self._pc_dn[cand], avg)
        est_up = np.where(have_up, self._pc_up[cand], avg)
        score = np.maximum(est_dn * f, _PC_EPS) * np.maximum(est_up * (1.0 - f), _PC_EPS)
        self._stats.pseudocost_branches += 1
        return int(cand[int(np.argmax(score))])

    def _update_pseudocost(self, branch_info: tuple, child_objective: float) -> None:
        """Fold one observed objective degradation into the running means."""
        j, direction, parent_obj, frac = branch_info
        degradation = max(child_objective - parent_obj, 0.0)
        if direction < 0:
            per_unit = degradation / max(frac, _PC_EPS)
            n = self._pc_dn_n[j]
            self._pc_dn[j] = (self._pc_dn[j] * n + per_unit) / (n + 1)
            self._pc_dn_n[j] = n + 1
        else:
            per_unit = degradation / max(1.0 - frac, _PC_EPS)
            n = self._pc_up_n[j]
            self._pc_up[j] = (self._pc_up[j] * n + per_unit) / (n + 1)
            self._pc_up_n[j] = n + 1

    def _apply_reduced_cost_fixing(self) -> None:
        """Tighten the global root bounds from the root duals + incumbent."""
        if (
            not self.presolve
            or self._root_rc is None
            or self._root_obj is None
            or not math.isfinite(self._incumbent_obj)
        ):
            return
        assert self._root_lb is not None and self._root_ub is not None
        fixed = reduced_cost_tighten(
            self._root_rc,
            self._root_lb,
            self._root_ub,
            self._root_obj,
            self._cutoff(),
            self._base_lb,
            self._base_ub,
            self._int_mask,
        )
        if fixed:
            self._stats.presolve_fixings += fixed
            trace_event("reduced_cost_fixing", fixed=fixed, incumbent=self._incumbent_obj)

    def _try_update_incumbent(self, x: np.ndarray, objective: float) -> None:
        """Install an *original-space* candidate as the incumbent.

        Presolve folds fixed/substituted columns into the constant term, so
        a reduced-space objective equals the original-space one — the
        cutoff needs no translation, only the vector does (see
        :meth:`_accept_candidate` for search-space candidates).
        """
        if objective < self._incumbent_obj - 1e-12:
            snapped = x.copy()
            snapped[self._orig_int_indices] = np.round(snapped[self._orig_int_indices])
            self._incumbent_x = snapped
            self._incumbent_obj = objective
            self._stats.incumbent_updates += 1
            trace_event("incumbent", objective=objective, node=self._stats.nodes)
            get_metrics().histogram("solve.incumbent_objective").observe(objective)
            self._apply_reduced_cost_fixing()
            self._save_checkpoint(debounce=True)

    def _accept_candidate(self, x: np.ndarray, objective: float) -> None:
        """Map a *search-space* candidate back and install it."""
        if self._postsolve is not None and not self._postsolve.identity:
            x = self._postsolve.restore(x)
        self._try_update_incumbent(x, objective)

    def _save_checkpoint(self, debounce: bool) -> None:
        """Persist the incumbent, at most once per ``checkpoint_interval``."""
        if (
            self._checkpoints is None
            or self._fingerprint is None
            or self._incumbent_x is None
        ):
            return
        timestamp = now()
        if debounce and timestamp - self._last_checkpoint < self.checkpoint_interval:
            self._checkpoint_dirty = True
            return
        self._checkpoints.save(
            self._fingerprint,
            [float(v) for v in self._incumbent_x],
            self._incumbent_obj,
        )
        self._last_checkpoint = timestamp
        self._checkpoint_dirty = False

    def _flush_checkpoint(self) -> None:
        """Final-incumbent persistence: debounce never loses the best."""
        if self._checkpoint_dirty:
            self._save_checkpoint(debounce=False)

    def _dive_for_incumbent(self, x: np.ndarray, basis: Basis | None = None) -> None:
        """Round-and-refix dive from the root relaxation.

        Repeatedly fixes the most fractional integer variable to its nearest
        integer and re-solves; stops on infeasibility or when the relaxation
        comes back integral. Produces an incumbent often good enough to prune
        most of the tree on assignment-structured models.
        """
        lb = self._base_lb.copy()
        ub = self._base_ub.copy()
        current = x
        for _ in range(len(self._int_indices) + 1):
            j = self._fractional_index(current)
            if j is None:
                obj = float(self._form.c @ current) + self._form.c0
                self._accept_candidate(current, obj)
                return
            value = float(round(current[j]))
            value = min(max(value, lb[j]), ub[j])
            lb[j] = ub[j] = value
            result = self._solve_node(lb, ub, basis=basis)
            if result.status != "optimal":
                return
            basis = result.basis
            current = result.x

    # ----------------------------------------------------------- separation
    def _count_cuts(self, added: list) -> None:
        self._stats.cuts += len(added)
        for cut in added:
            if cut.kind == "clique":
                self._stats.clique_cuts += 1
            else:
                self._stats.cover_cuts += 1

    def _rebuild_with_cuts(self) -> None:
        """Reassemble the working LP as base rows + the active cut pool.

        The cut rows also join the node-presolve propagation tables, so a
        clique cut propagates (fixing one member to 1 zeroes the rest).
        """
        from repro.ilp.cuts import append_cuts

        assert self._cut_pool is not None
        pairs = [cut.as_pair(self._base_form.num_vars) for cut in self._cut_pool.active]
        self._form = append_cuts(self._base_form, pairs)
        self._workspace = LpWorkspace(self._form)
        # The constraint matrix changed shape: bump the basis generation so
        # every basis snapshot taken against the old matrix goes stale, and
        # refit the warm engine to the cut-extended rows.
        self._basis_generation += 1
        if self._warm_engine is not None:
            self._warm_engine = RevisedSimplex(
                self._form, generation=self._basis_generation
            )

    def _separate_root(self, root: LpResult) -> LpResult:
        """Separation rounds at the root; returns the final root relaxation."""
        from repro.ilp.conflict import ConflictGraph
        from repro.ilp.cuts import generate_cuts

        policy = self.cut_policy
        assert policy is not None and self._cut_pool is not None
        if policy.clique and self._conflicts is None:
            with span("conflict_graph") as graph_span:
                self._conflicts = ConflictGraph.from_matrix_form(self._base_form)
                graph_span.attrs["edges"] = self._conflicts.num_edges
        with span("cut_separation", rounds=policy.rounds) as sep_span:
            for _ in range(policy.rounds):
                dropped = self._cut_pool.age_and_prune(root.x)
                self._stats.cuts_dropped += len(dropped)
                fresh = generate_cuts(self._base_form, root.x, policy, self._conflicts)
                added = [cut for cut in fresh if self._cut_pool.add(cut)]
                if not added and not dropped:
                    break
                self._count_cuts(added)
                self._rebuild_with_cuts()
                root = self._solve_node(
                    self._base_lb, self._base_ub, want_reduced_costs=self.presolve
                )
                if root.status == "infeasible":
                    # Cuts are valid for the integer hull, so an infeasible
                    # cut-strengthened root proves integer infeasibility.
                    break
                if root.status != "optimal":  # only numerical noise lands here
                    raise SolverError("root LP failed after adding cuts")
                self._stats.cut_rounds += 1
                trace_event(
                    "cut_round",
                    added=len(added),
                    dropped=len(dropped),
                    active=len(self._cut_pool),
                    bound=root.objective,
                )
                if self._fractional_index(root.x) is None:
                    break
            sep_span.attrs["cuts"] = self._stats.cuts
            sep_span.attrs["active"] = len(self._cut_pool)
        if self._stats.cuts == 0 and (
            self._conflicts is None or self._conflicts.num_edges == 0
        ):
            # Nothing separated at the root and no conflict structure to
            # try again with: skip in-tree separation entirely so
            # unconstrained instances pay nothing per node.
            self._cuts_enabled = False
        return root

    def _separate_at_node(
        self, result: LpResult, lb: np.ndarray, ub: np.ndarray
    ) -> LpResult | None:
        """One separation round at a shallow tree node.

        Cuts derive from the *base* rows, never from node bounds, so they
        are globally valid and simply join the shared pool. Returns the
        re-solved node relaxation, or None when nothing new separated.
        """
        from repro.ilp.cuts import generate_cuts

        policy = self.cut_policy
        assert policy is not None and self._cut_pool is not None
        fresh = generate_cuts(self._base_form, result.x, policy, self._conflicts)
        added = [cut for cut in fresh if self._cut_pool.add(cut)]
        if not added:
            return None
        self._count_cuts(added)
        self._stats.cut_rounds += 1
        self._rebuild_with_cuts()
        trace_event(
            "cut_round",
            node=self._stats.nodes,
            added=len(added),
            active=len(self._cut_pool),
        )
        return self._solve_node(lb, ub)

    def _search(self, start: float) -> Status:
        if self.root_presolve.enabled:
            with span("root_model_presolve") as model_span:
                reduction = presolve_root(self._orig_form, self.root_presolve)
                self._stats.root_presolve_rounds = reduction.stats["rounds"]
                self._stats.root_cols_removed = reduction.stats["cols_removed"]
                self._stats.root_rows_removed = reduction.stats["rows_removed"]
                self._stats.root_coeffs_tightened = reduction.stats["coeffs_tightened"]
                model_span.attrs.update(reduction.stats)
            if reduction.status == "infeasible":
                return Status.INFEASIBLE
            self._postsolve = reduction.postsolve
            reduced = reduction.form
            if reduced.num_vars == 0:
                # Everything was fixed; validate the leftover constant rows
                # (row cleanup may be gated off) and restore the point.
                ok = (not reduced.a_ub.size or bool(np.all(reduced.b_ub >= -1e-6))) and (
                    not reduced.a_eq.size or bool(np.all(np.abs(reduced.b_eq) <= 1e-6))
                )
                if not ok:
                    return Status.INFEASIBLE
                x = reduction.postsolve.restore(np.zeros(0))
                objective = float(self._orig_form.c @ x) + self._orig_form.c0
                self._try_update_incumbent(x, objective)
                self._stats.best_bound = objective
                self._stats.gap = 0.0
                return Status.OPTIMAL
            # Bind even on an identity column mapping: bound tightening and
            # row cleanup change the form without touching any column.
            self._bind_form(reduced)

        if self.presolve:
            with span("root_presolve") as presolve_span:
                feasible, changes = propagate_bounds(
                    self._workspace.propagation,
                    self._base_lb,
                    self._base_ub,
                    self._int_mask,
                )
                self._stats.presolve_fixings += len(changes)
                presolve_span.attrs["fixings"] = len(changes)
            if not feasible:
                return Status.INFEASIBLE

        with span("lp_relaxation"):
            root = self._solve_node(
                self._base_lb, self._base_ub, want_reduced_costs=self.presolve
            )
        self._stats.nodes += 1
        if root.status == "infeasible":
            return Status.INFEASIBLE
        if root.status == "unbounded":
            return Status.UNBOUNDED
        if root.status == "error":
            raise SolverError("LP relaxation failed at the root node")

        frac = self._fractional_index(root.x)
        if frac is None:
            self._accept_candidate(root.x, root.objective)
            self._stats.best_bound = root.objective
            self._stats.gap = 0.0
            return Status.OPTIMAL

        cut_rounds = self.cut_policy.rounds if self._cuts_enabled else 0
        with span("presolve", cut_rounds=cut_rounds, dive=self.dive):
            if self._cuts_enabled:
                root = self._separate_root(root)
                if root.status == "infeasible":
                    return Status.INFEASIBLE
                if self._fractional_index(root.x) is None:
                    self._accept_candidate(root.x, root.objective)
                    self._stats.best_bound = root.objective
                    self._stats.gap = 0.0
                    return Status.OPTIMAL

            # Root duals anchor reduced-cost fixing for the whole search;
            # captured after cuts so they price the final root relaxation.
            self._root_obj = root.objective
            self._root_rc = root.reduced_costs
            self._root_lb = self._base_lb.copy()
            self._root_ub = self._base_ub.copy()

            if self.dive:
                self._dive_for_incumbent(root.x, basis=root.basis)
            self._apply_reduced_cost_fixing()

        with span("bnb_search") as search_span:
            status = self._best_first(start, root)
            search_span.attrs["nodes"] = self._stats.nodes
            search_span.attrs["status"] = status.value
            search_span.attrs["presolve_fixings"] = self._stats.presolve_fixings
            search_span.attrs["presolve_pruned"] = self._stats.presolve_pruned
        return status

    def _materialize(self, chain: tuple | None) -> tuple[np.ndarray, np.ndarray]:
        """Node bounds = global root bounds + the chain's tightenings.

        Every chain entry only ever *tightens* (branching floors/ceils,
        presolve shrinks), so entries apply order-independently via
        ``max``/``min`` — which also lets later global reduced-cost fixings
        override stale, looser deltas recorded before the incumbent improved.
        """
        lb = self._base_lb.copy()
        ub = self._base_ub.copy()
        node = chain
        while node is not None:
            _, j, kind, value = node
            if kind == LB_TIGHTENED:
                if value > lb[j]:
                    lb[j] = value
            elif value < ub[j]:
                ub[j] = value
            node = node[0]
        return lb, ub

    def _best_first(self, start: float, root: LpResult) -> Status:
        """The best-first loop over delta-bound nodes.

        Heap entries are ``(bound, tick, depth, chain, branch_info, basis)``:
        ``chain`` is the delta chain materialized lazily at pop time,
        ``branch_info = (column, direction, parent_objective, fraction)``
        feeds the pseudocost update once the node's LP resolves, and
        ``basis`` is the parent node's optimal simplex basis — both
        children warm-start from it (the tick tie-breaker guarantees tuple
        comparison never reaches it).
        """
        counter = itertools.count()  # heap tie-breaker
        heap: list[tuple[float, int, int, tuple | None, tuple | None, Basis | None]] = []
        heapq.heappush(heap, (root.objective, next(counter), 0, None, None, root.basis))

        while heap:
            bound, _, depth, chain, branch_info, parent_basis = heapq.heappop(heap)
            self._stats.best_bound = bound
            incumbent = None if self._incumbent_x is None else self._incumbent_obj
            node_event(depth=depth, bound=bound, incumbent=incumbent)
            if bound >= self._cutoff():
                # Best-first order: every remaining node is at least as bad.
                self._stats.gap = max(0.0, self._incumbent_obj - bound)
                return Status.OPTIMAL if self._incumbent_x is not None else Status.INFEASIBLE

            if self._stats.nodes >= self.node_limit:
                trace_event("budget_exhausted", kind="nodes", nodes=self._stats.nodes)
                return Status.FEASIBLE if self._incumbent_x is not None else Status.NODE_LIMIT
            if self.time_limit is not None and now() - start > self.time_limit:
                trace_event("budget_exhausted", kind="deadline", nodes=self._stats.nodes)
                return Status.FEASIBLE if self._incumbent_x is not None else Status.NODE_LIMIT

            lb, ub = self._materialize(chain)
            if np.any(lb > ub):
                # Global reduced-cost fixing emptied this subtree's box.
                self._stats.presolve_pruned += 1
                continue
            if self.presolve:
                cutoff = self._cutoff()
                feasible, changes = propagate_bounds(
                    self._workspace.propagation,
                    lb,
                    ub,
                    self._int_mask,
                    cutoff=cutoff if math.isfinite(cutoff) else None,
                )
                if not feasible:
                    self._stats.presolve_pruned += 1
                    continue
                if changes:
                    self._stats.presolve_fixings += len(changes)
                    for delta in changes:
                        chain = (chain, *delta)

            node_cutoff = self._cutoff()
            result = self._solve_node(
                lb,
                ub,
                basis=parent_basis,
                cutoff=node_cutoff if math.isfinite(node_cutoff) else None,
            )
            self._stats.nodes += 1
            if branch_info is not None and result.status == "optimal":
                self._update_pseudocost(branch_info, result.objective)
            if result.status != "optimal":
                # Infeasible subtree, or a warm "cutoff" bound-prune
                # (unbounded cannot appear below a bounded root).
                continue
            if result.objective >= self._cutoff():
                continue

            if (
                self._cuts_enabled
                and self.cut_policy is not None
                and 0 < depth <= self.cut_policy.max_depth
            ):
                separated = self._separate_at_node(result, lb, ub)
                if separated is not None:
                    result = separated
                    if result.status != "optimal":
                        continue  # pool cuts emptied this node's box: prune
                    if result.objective >= self._cutoff():
                        continue

            j = self._select_branch(result.x)
            if j is None:
                self._accept_candidate(result.x, result.objective)
                continue

            value = result.x[j]
            frac = value - math.floor(value)
            down_chain = (chain, j, 1, float(math.floor(value)))
            up_chain = (chain, j, 0, float(math.ceil(value)))
            heapq.heappush(
                heap,
                (result.objective, next(counter), depth + 1, down_chain,
                 (j, -1, result.objective, frac), result.basis),
            )
            heapq.heappush(
                heap,
                (result.objective, next(counter), depth + 1, up_chain,
                 (j, +1, result.objective, frac), result.basis),
            )

        if self._incumbent_x is None:
            return Status.INFEASIBLE
        self._stats.gap = 0.0
        return Status.OPTIMAL

    def _wrap(self, status: Status) -> Solution:
        sign = 1.0 if self.model.sense == "min" else -1.0
        if status in (Status.OPTIMAL, Status.FEASIBLE) and self._incumbent_x is not None:
            values = {
                var: float(self._incumbent_x[var.index]) for var in self.model.variables
            }
            return Solution(
                status,
                objective=sign * self._incumbent_obj,
                values=values,
                stats=self._stats,
                backend="bnb",
            )
        return Solution(status, stats=self._stats, backend="bnb")
