"""Best-first branch and bound over LP relaxations.

The solver operates on the dense :class:`~repro.ilp.model.MatrixForm` of a
model. Each node carries tightened variable bounds; branching splits on a
fractional integer variable (most-fractional by default). A depth-limited
*diving* pass at the root rounds its way to an early incumbent so that pruning
has a bound to work with from the start.

All objective handling is in minimization sense; the wrapping ``solve``
translates back to the model's sense.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.ilp.lp import LpResult, solve_matrix_lp
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStats, Status
from repro.obs import get_metrics, node_event, now, span
from repro.obs import event as trace_event
from repro.obs.policy import CheckpointStore
from repro.util.errors import SolverError

_INT_TOL = 1e-6


class BranchAndBoundSolver:
    """Exact MILP solver: LP relaxations + best-first search.

    Parameters
    ----------
    model:
        The model to solve.
    node_limit:
        Maximum number of nodes to process before giving up; when hit, the
        returned solution has status ``NODE_LIMIT`` (or ``FEASIBLE`` if an
        incumbent was found on the way).
    gap_tol:
        Absolute optimality gap at which the search stops early. The TAM
        objectives are integral cycle counts, so the designer passes
        ``gap_tol`` slightly under 1 to stop as soon as the bound rounds up
        to the incumbent.
    time_limit:
        Wall-clock budget in seconds (None = unlimited).
    lp_method:
        ``"scipy"`` (HiGHS, default) or ``"simplex"`` (our tableau engine).
    branching:
        ``"most_fractional"`` (default) or ``"first"`` (lowest index).
    dive:
        Whether to run the rounding dive at the root for an early incumbent.
    root_cuts:
        Rounds of knapsack cover cuts applied at the root (0 = off). Valid
        for the integer hull, so the cut rows stay active in every node.
    warm_start:
        Optional feasible assignment ``{Variable: value}`` used as the
        initial incumbent (e.g. a greedy heuristic's solution). Validated
        against the model first; an infeasible warm start is rejected with
        :class:`~repro.util.errors.ValidationError` rather than silently
        breaking pruning.
    checkpoint_dir:
        Directory of incumbent checkpoints keyed by instance fingerprint
        (see :class:`~repro.obs.CheckpointStore`). On start, a stored
        incumbent for this instance is validated and installed (a warm
        resume for interrupted sweeps); every incumbent improvement is
        persisted back.
    """

    def __init__(
        self,
        model: Model,
        node_limit: int = 200_000,
        gap_tol: float = 1e-9,
        time_limit: float | None = None,
        lp_method: str = "scipy",
        branching: str = "most_fractional",
        dive: bool = True,
        root_cuts: int = 0,
        warm_start: dict | None = None,
        checkpoint_dir: str | None = None,
    ):
        if branching not in ("most_fractional", "first"):
            raise ValueError(f"unknown branching rule {branching!r}")
        self.model = model
        self.node_limit = node_limit
        self.gap_tol = gap_tol
        self.time_limit = time_limit
        self.lp_method = lp_method
        self.branching = branching
        self.dive = dive
        self.root_cuts = root_cuts

        self._form = model.to_matrix_form()
        self._int_indices = np.flatnonzero(self._form.integer_mask)
        self._stats = SolveStats()
        self._incumbent_x: np.ndarray | None = None
        self._incumbent_obj = math.inf
        self._checkpoints: CheckpointStore | None = None
        self._fingerprint: str | None = None
        if checkpoint_dir is not None:
            from repro.runtime.cache import matrix_fingerprint

            self._checkpoints = CheckpointStore(checkpoint_dir)
            self._fingerprint = matrix_fingerprint(self._form)
        if warm_start is not None:
            self._install_warm_start(warm_start)
        if self._checkpoints is not None:
            self._resume_from_checkpoint()

    def _install_warm_start(self, values: dict) -> None:
        from repro.util.errors import ValidationError

        problems = self.model.check_solution(values)
        if problems:
            raise ValidationError(
                "warm start is not feasible for the model: " + "; ".join(problems[:3])
            )
        x = np.zeros(self._form.num_vars)
        for var, value in values.items():
            x[var.index] = value
        sign = 1.0 if self.model.sense == "min" else -1.0
        objective = sign * self.model.objective_value(values)
        self._try_update_incumbent(x, objective)

    def _resume_from_checkpoint(self) -> None:
        """Install a persisted incumbent for this instance, if one validates."""
        assert self._checkpoints is not None and self._fingerprint is not None
        payload = self._checkpoints.load(self._fingerprint)
        if payload is None:
            return
        values = payload.get("values") or []
        if len(values) != self._form.num_vars:
            return
        by_var = {var: float(values[var.index]) for var in self.model.variables}
        if self.model.check_solution(by_var):
            return  # stale/incompatible checkpoint: ignore, never break pruning
        x = np.array(values, dtype=float)
        sign = 1.0 if self.model.sense == "min" else -1.0
        objective = sign * self.model.objective_value(by_var)
        self._try_update_incumbent(x, objective)
        trace_event("checkpoint_resume", objective=objective)

    # ------------------------------------------------------------------ api
    def solve(self) -> Solution:
        start = now()
        try:
            status = self._search(start)
        finally:
            self._stats.wall_time = now() - start
            metrics = get_metrics()
            metrics.counter("solve.nodes").inc(self._stats.nodes)
            metrics.counter("solve.lp_solves").inc(self._stats.lp_solves)
            metrics.counter("solve.lp_iterations").inc(self._stats.lp_iterations)
            metrics.counter("solve.incumbent_updates").inc(self._stats.incumbent_updates)
            metrics.histogram("solve.wall_time").observe(self._stats.wall_time)
            if self._stats.best_bound is not None:
                metrics.gauge("solve.best_bound").set(self._stats.best_bound)
        return self._wrap(status)

    # ------------------------------------------------------------ internals
    def _solve_node(self, lb: np.ndarray, ub: np.ndarray) -> LpResult:
        self._stats.lp_solves += 1
        lp_start = now()
        result = solve_matrix_lp(self._form, lb=lb, ub=ub, method=self.lp_method)
        self._stats.lp_time += now() - lp_start
        self._stats.lp_iterations += result.iterations
        return result

    def _fractional_index(self, x: np.ndarray) -> int | None:
        """Pick the integer variable to branch on, or None if all integral."""
        best_idx: int | None = None
        best_score = -1.0
        for j in self._int_indices:
            frac = abs(x[j] - round(x[j]))
            if frac <= _INT_TOL:
                continue
            if self.branching == "first":
                return int(j)
            score = min(frac, 1.0 - frac)
            if score > best_score:
                best_score = score
                best_idx = int(j)
        return best_idx

    def _try_update_incumbent(self, x: np.ndarray, objective: float) -> None:
        if objective < self._incumbent_obj - 1e-12:
            snapped = x.copy()
            snapped[self._int_indices] = np.round(snapped[self._int_indices])
            self._incumbent_x = snapped
            self._incumbent_obj = objective
            self._stats.incumbent_updates += 1
            trace_event("incumbent", objective=objective, node=self._stats.nodes)
            get_metrics().histogram("solve.incumbent_objective").observe(objective)
            if self._checkpoints is not None and self._fingerprint is not None:
                self._checkpoints.save(
                    self._fingerprint, [float(v) for v in snapped], objective
                )

    def _dive_for_incumbent(self, x: np.ndarray) -> None:
        """Round-and-refix dive from the root relaxation.

        Repeatedly fixes the most fractional integer variable to its nearest
        integer and re-solves; stops on infeasibility or when the relaxation
        comes back integral. Produces an incumbent often good enough to prune
        most of the tree on assignment-structured models.
        """
        lb = self._form.lb.copy()
        ub = self._form.ub.copy()
        current = x
        for _ in range(len(self._int_indices) + 1):
            j = self._fractional_index(current)
            if j is None:
                obj = float(self._form.c @ current) + self._form.c0
                self._try_update_incumbent(current, obj)
                return
            value = float(round(current[j]))
            value = min(max(value, lb[j]), ub[j])
            lb[j] = ub[j] = value
            result = self._solve_node(lb, ub)
            if result.status != "optimal":
                return
            current = result.x

    def _search(self, start: float) -> Status:
        with span("lp_relaxation"):
            root = self._solve_node(self._form.lb, self._form.ub)
        self._stats.nodes += 1
        if root.status == "infeasible":
            return Status.INFEASIBLE
        if root.status == "unbounded":
            return Status.UNBOUNDED
        if root.status == "error":
            raise SolverError("LP relaxation failed at the root node")

        frac = self._fractional_index(root.x)
        if frac is None:
            self._try_update_incumbent(root.x, root.objective)
            self._stats.best_bound = root.objective
            self._stats.gap = 0.0
            return Status.OPTIMAL

        with span("presolve", cuts=self.root_cuts, dive=self.dive):
            for _ in range(self.root_cuts):
                from repro.ilp.cuts import append_cuts, generate_cover_cuts

                cuts = generate_cover_cuts(self._form, root.x)
                if not cuts:
                    break
                self._form = append_cuts(self._form, cuts)
                self._stats.cuts += len(cuts)
                root = self._solve_node(self._form.lb, self._form.ub)
                if root.status != "optimal":  # cuts are valid: only numerical noise lands here
                    raise SolverError("root LP failed after adding cover cuts")
                if self._fractional_index(root.x) is None:
                    self._try_update_incumbent(root.x, root.objective)
                    self._stats.best_bound = root.objective
                    self._stats.gap = 0.0
                    return Status.OPTIMAL

            if self.dive:
                self._dive_for_incumbent(root.x)

        with span("bnb_search") as search_span:
            status = self._best_first(start, root)
            search_span.attrs["nodes"] = self._stats.nodes
            search_span.attrs["status"] = status.value
        return status

    def _best_first(self, start: float, root: LpResult) -> Status:
        """The best-first loop; heap entries carry their tree depth for
        the sampled node-event stream."""
        counter = itertools.count()  # heap tie-breaker
        heap: list[tuple[float, int, int, np.ndarray, np.ndarray]] = []
        heapq.heappush(
            heap,
            (root.objective, next(counter), 0, self._form.lb.copy(), self._form.ub.copy()),
        )

        while heap:
            bound, _, depth, lb, ub = heapq.heappop(heap)
            self._stats.best_bound = bound
            incumbent = None if self._incumbent_x is None else self._incumbent_obj
            node_event(depth=depth, bound=bound, incumbent=incumbent)
            if bound >= self._incumbent_obj - self.gap_tol:
                # Best-first order: every remaining node is at least as bad.
                self._stats.gap = max(0.0, self._incumbent_obj - bound)
                return Status.OPTIMAL if self._incumbent_x is not None else Status.INFEASIBLE

            if self._stats.nodes >= self.node_limit:
                trace_event("budget_exhausted", kind="nodes", nodes=self._stats.nodes)
                return Status.FEASIBLE if self._incumbent_x is not None else Status.NODE_LIMIT
            if self.time_limit is not None and now() - start > self.time_limit:
                trace_event("budget_exhausted", kind="deadline", nodes=self._stats.nodes)
                return Status.FEASIBLE if self._incumbent_x is not None else Status.NODE_LIMIT

            result = self._solve_node(lb, ub)
            self._stats.nodes += 1
            if result.status != "optimal":
                continue  # infeasible subtree (unbounded cannot appear below a bounded root)
            if result.objective >= self._incumbent_obj - self.gap_tol:
                continue

            j = self._fractional_index(result.x)
            if j is None:
                self._try_update_incumbent(result.x, result.objective)
                continue

            value = result.x[j]
            down_ub = ub.copy()
            down_ub[j] = math.floor(value)
            up_lb = lb.copy()
            up_lb[j] = math.ceil(value)
            heapq.heappush(heap, (result.objective, next(counter), depth + 1, lb.copy(), down_ub))
            heapq.heappush(heap, (result.objective, next(counter), depth + 1, up_lb, ub.copy()))

        if self._incumbent_x is None:
            return Status.INFEASIBLE
        self._stats.gap = 0.0
        return Status.OPTIMAL

    def _wrap(self, status: Status) -> Solution:
        sign = 1.0 if self.model.sense == "min" else -1.0
        if status in (Status.OPTIMAL, Status.FEASIBLE) and self._incumbent_x is not None:
            values = {
                var: float(self._incumbent_x[var.index]) for var in self.model.variables
            }
            return Solution(
                status,
                objective=sign * self._incumbent_obj,
                values=values,
                stats=self._stats,
                backend="bnb",
            )
        return Solution(status, stats=self._stats, backend="bnb")
