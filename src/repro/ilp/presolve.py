"""Node presolve for branch and bound: bound propagation + reduced-cost fixing.

Two families of tightenings run before (or instead of) a node's LP solve:

- **Integer bound propagation** (:func:`propagate_bounds`): classic activity
  reasoning over every row. For a row ``sum a_j x_j <= b`` with minimum
  activity ``m`` (each term at its cheapest bound), any variable with
  ``a_j > 0`` must satisfy ``x_j <= lb_j + (b - m) / a_j`` — and integer
  columns round that down. Equality rows participate as two inequalities,
  and when an incumbent exists the objective itself joins as the cutoff row
  ``c x <= z_inc - gap_tol - c0``, which is where most of the pruning power
  comes from on the TAM models (a core whose per-bus test time exceeds the
  incumbent can no longer ride that bus). A negative row slack proves the
  node infeasible with no LP solve at all.

- **Reduced-cost fixing** (:func:`reduced_cost_tighten`): with the root LP's
  reduced costs ``d`` and an incumbent cutoff ``z``, LP duality gives
  ``obj(x) >= z_root + d_j (x_j - root_lb_j)`` for any ``x`` feasible in the
  root relaxation, so a nonbasic-at-lower column with ``d_j > 0`` can move
  up by at most ``(z - z_root) / d_j`` before it cannot beat the incumbent
  (symmetrically for columns at their upper bound). The bounds are valid for
  the whole tree, so the solver applies them globally and re-applies them
  every time the incumbent improves.

Everything is vectorized: the per-:class:`~repro.ilp.model.MatrixForm` row
tables are precomputed once (:class:`PropagationTables`, owned by the LP
workspace) and each node pays only dense numpy arithmetic, no Python loop
over rows or columns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ilp.model import MatrixForm

#: Clamp for infinite bounds inside activity arithmetic: big enough that no
#: real tightening is ever produced from a clamped bound, small enough that
#: products with row coefficients stay exact in float64.
_BIG = 1e15

#: Kind tags for recorded tightenings (shared with the delta-bound nodes).
LB_TIGHTENED = 0
UB_TIGHTENED = 1


class PropagationTables:
    """Precomputed row tables for bound propagation over one ``MatrixForm``.

    The propagation matrix stacks ``A_ub``, both directions of ``A_eq``, and
    (when the objective has support) the objective row, whose right-hand
    side is the incumbent cutoff supplied per call. Positive/negative parts
    and elementwise reciprocals are cached so each propagation round is a
    couple of matmuls.
    """

    def __init__(self, form: MatrixForm):
        n = form.num_vars
        blocks: list[np.ndarray] = []
        rhs_blocks: list[np.ndarray] = []
        if form.a_ub.size:
            blocks.append(form.a_ub)
            rhs_blocks.append(form.b_ub)
        if form.a_eq.size:
            blocks.append(form.a_eq)
            rhs_blocks.append(form.b_eq)
            blocks.append(-form.a_eq)
            rhs_blocks.append(-form.b_eq)
        self.has_objective_row = bool(np.any(form.c))
        if self.has_objective_row:
            blocks.append(form.c.reshape(1, n))
            rhs_blocks.append(np.array([math.inf]))
        self.c0 = form.c0
        if blocks:
            rows = np.vstack(blocks)
            rhs = np.concatenate(rhs_blocks)
        else:
            rows = np.zeros((0, n))
            rhs = np.zeros(0)
        self.rows = rows
        self.rhs = rhs
        self.pos = np.maximum(rows, 0.0)
        self.neg = np.minimum(rows, 0.0)
        self.pos_mask = rows > 0.0
        self.neg_mask = rows < 0.0
        with np.errstate(divide="ignore"):
            self.inv = np.where(rows != 0.0, 1.0 / np.where(rows != 0.0, rows, 1.0), 0.0)

    @property
    def num_rows(self) -> int:
        return self.rows.shape[0]


def propagate_bounds(
    tables: PropagationTables,
    lb: np.ndarray,
    ub: np.ndarray,
    integer_mask: np.ndarray,
    cutoff: float | None = None,
    max_rounds: int = 4,
    tol: float = 1e-6,
) -> tuple[bool, list[tuple[int, int, float]]]:
    """Tighten ``lb``/``ub`` in place; returns ``(feasible, tightenings)``.

    ``cutoff`` is an objective-value cutoff (incumbent minus gap tolerance,
    in the solved minimization sense *including* the constant offset); when
    given and the form has an objective row, solutions at least that bad are
    propagated away. Each recorded tightening is ``(column, kind, value)``
    with ``kind`` one of :data:`LB_TIGHTENED` / :data:`UB_TIGHTENED` — the
    exact delta layout the branch-and-bound node chains store.
    """
    if tables.num_rows == 0:
        return True, []
    rhs = tables.rhs
    if tables.has_objective_row:
        rhs = rhs.copy()
        rhs[-1] = math.inf if cutoff is None else cutoff - tables.c0
    changes: list[tuple[int, int, float]] = []
    clb = np.clip(lb, -_BIG, _BIG)
    cub = np.clip(ub, -_BIG, _BIG)
    for _ in range(max_rounds):
        min_activity = tables.pos @ clb + tables.neg @ cub
        slack = rhs - min_activity
        if np.any(slack < -tol * (1.0 + np.abs(rhs))):
            return False, changes
        with np.errstate(invalid="ignore"):
            ratio = slack[:, None] * tables.inv
            ub_cand = np.where(tables.pos_mask, clb[None, :] + ratio, math.inf)
            lb_cand = np.where(tables.neg_mask, cub[None, :] + ratio, -math.inf)
        new_ub = np.min(ub_cand, axis=0) if ub_cand.size else cub
        new_lb = np.max(lb_cand, axis=0) if lb_cand.size else clb
        new_ub = np.where(integer_mask, np.floor(new_ub + tol), new_ub)
        new_lb = np.where(integer_mask, np.ceil(new_lb - tol), new_lb)
        improved_ub = np.flatnonzero(new_ub < cub - tol)
        improved_lb = np.flatnonzero(new_lb > clb + tol)
        if improved_ub.size == 0 and improved_lb.size == 0:
            break
        for j in improved_ub:
            value = float(new_ub[j])
            cub[j] = value
            ub[j] = value
            changes.append((int(j), UB_TIGHTENED, value))
        for j in improved_lb:
            value = float(new_lb[j])
            clb[j] = value
            lb[j] = value
            changes.append((int(j), LB_TIGHTENED, value))
        if np.any(clb > cub + tol):
            return False, changes
    return True, changes


def reduced_cost_tighten(
    reduced_costs: np.ndarray,
    root_lb: np.ndarray,
    root_ub: np.ndarray,
    root_objective: float,
    cutoff: float,
    lb: np.ndarray,
    ub: np.ndarray,
    integer_mask: np.ndarray,
    eps: float = 1e-7,
    tol: float = 1e-6,
) -> int:
    """Reduced-cost fixing against ``cutoff``; tightens ``lb``/``ub`` in place.

    ``root_lb``/``root_ub`` are the bounds the root LP was solved under and
    ``root_objective`` its optimum (minimization sense). Only integer columns
    are tightened — the rounding is where fixing beats plain dual bounds.
    Returns the number of bounds tightened; resulting ``lb > ub`` simply
    means no improving solution touches that column range, which the caller
    treats as a (correct) subtree prune.
    """
    gap = cutoff - root_objective
    if not np.isfinite(gap) or gap < 0.0:
        return 0
    tightened = 0
    up_cols = np.flatnonzero(
        integer_mask & (reduced_costs > eps) & np.isfinite(root_lb)
    )
    if up_cols.size:
        cand = root_lb[up_cols] + np.floor(gap / reduced_costs[up_cols] + tol)
        better = cand < ub[up_cols] - 0.5
        cols = up_cols[better]
        ub[cols] = cand[better]
        tightened += int(cols.size)
    down_cols = np.flatnonzero(
        integer_mask & (reduced_costs < -eps) & np.isfinite(root_ub)
    )
    if down_cols.size:
        cand = root_ub[down_cols] - np.floor(gap / -reduced_costs[down_cols] + tol)
        better = cand > lb[down_cols] + 0.5
        cols = down_cols[better]
        lb[cols] = cand[better]
        tightened += int(cols.size)
    return tightened
