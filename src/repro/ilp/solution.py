"""Solver result types shared by every backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ilp.expr import LinExpr, Variable


class Status(enum.Enum):
    """Terminal state of a solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    ITERATION_LIMIT = "iteration_limit"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven


@dataclass
class SolveStats:
    """Work counters reported by the solver backends.

    ``nodes`` counts B&B nodes actually processed (LP relaxations solved at a
    node), ``lp_iterations`` sums simplex/HiGHS iterations when available, and
    ``wall_time`` is seconds of wall clock inside ``solve``. ``cache_hit``
    marks a solution answered from the runtime solve cache — the remaining
    counters then describe the *original* solve that produced the record,
    not work done in this call. ``retries`` counts transient-error re-runs
    the resilient solve path performed before this result came back.

    The presolve counters describe the node fast path:
    ``presolve_fixings`` is the number of variable bounds tightened by
    propagation or reduced-cost fixing, ``presolve_pruned`` the subtrees
    discarded before any LP was solved (so ``nodes`` keeps its meaning of
    LP-solved nodes and ``lp_solves >= nodes`` stays true), and
    ``pseudocost_branches`` the branchings decided by pseudocost scores
    rather than the most-fractional fallback.

    The cut counters describe branch-and-cut separation (see
    :class:`~repro.obs.policy.CutPolicy`): ``cuts`` is the total number
    of cutting planes admitted to the pool, split into ``clique_cuts``
    and ``cover_cuts`` by family; ``cut_rounds`` counts separation
    rounds that changed the LP, and ``cuts_dropped`` the cuts the pool
    aged out for staying slack. :meth:`cut_summary` bundles them.

    The root-presolve counters describe the model reductions applied once
    before the search (see :class:`~repro.obs.policy.PresolvePolicy`):
    ``root_presolve_rounds`` passes ran, removing
    ``root_cols_removed`` columns and ``root_rows_removed`` rows and
    tightening ``root_coeffs_tightened`` coefficients. The warm-start
    counters split ``lp_solves`` by engine: ``warm_lp_solves`` node LPs
    were answered by the dual simplex reoptimizing from a parent basis
    (including proven ``cutoff`` prunes), and ``warm_lp_fallbacks`` bailed
    to the cold engine on numerical trouble. :meth:`presolve_summary`
    bundles all of them.
    """

    nodes: int = 0
    lp_solves: int = 0
    lp_iterations: int = 0
    wall_time: float = 0.0
    lp_time: float = 0.0
    incumbent_updates: int = 0
    best_bound: float | None = None
    gap: float | None = None
    cuts: int = 0
    cut_rounds: int = 0
    clique_cuts: int = 0
    cover_cuts: int = 0
    cuts_dropped: int = 0
    cache_hit: bool = False
    retries: int = 0
    presolve_fixings: int = 0
    presolve_pruned: int = 0
    pseudocost_branches: int = 0
    root_presolve_rounds: int = 0
    root_cols_removed: int = 0
    root_rows_removed: int = 0
    root_coeffs_tightened: int = 0
    warm_lp_solves: int = 0
    warm_lp_fallbacks: int = 0

    def as_dict(self) -> dict:
        """JSON-ready view (used by ``repro design --json`` and telemetry)."""
        from dataclasses import asdict

        return asdict(self)

    def cut_summary(self) -> dict:
        """The branch-and-cut counters as one mapping (stable key order)."""
        return {
            "cuts": self.cuts,
            "cut_rounds": self.cut_rounds,
            "clique_cuts": self.clique_cuts,
            "cover_cuts": self.cover_cuts,
            "cuts_dropped": self.cuts_dropped,
        }

    def presolve_summary(self) -> dict:
        """Root-presolve + warm-start counters as one mapping (stable order)."""
        return {
            "root_presolve_rounds": self.root_presolve_rounds,
            "root_cols_removed": self.root_cols_removed,
            "root_rows_removed": self.root_rows_removed,
            "root_coeffs_tightened": self.root_coeffs_tightened,
            "warm_lp_solves": self.warm_lp_solves,
            "warm_lp_fallbacks": self.warm_lp_fallbacks,
        }


@dataclass
class Solution:
    """Outcome of solving a model: status, objective, and variable values.

    ``cache_hit`` is True when the solution was served from the runtime
    solve cache instead of running a backend (see :mod:`repro.runtime.cache`).
    """

    status: Status
    objective: float | None = None
    values: dict[Variable, float] = field(default_factory=dict)
    stats: SolveStats = field(default_factory=SolveStats)
    backend: str = "bnb"
    cache_hit: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status is Status.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        return self.status in (Status.OPTIMAL, Status.FEASIBLE)

    def __getitem__(self, var: Variable) -> float:
        if not self.is_feasible:
            raise KeyError(f"solution has status {self.status.value}; no values available")
        return self.values[var]

    def value(self, expr: LinExpr | Variable) -> float:
        """Evaluate a variable or linear expression under this solution."""
        if isinstance(expr, Variable):
            return self[expr]
        return expr.value(self.values)

    def rounded(self, tol: float = 1e-6) -> dict[Variable, float]:
        """Return values with near-integers snapped to exact integers.

        LP-based solvers return 0.9999999; downstream code indexing
        assignments by integer value wants exactly 1.0.
        """
        snapped = {}
        for var, val in self.values.items():
            nearest = round(val)
            snapped[var] = float(nearest) if abs(val - nearest) <= tol else val
        return snapped

    def __repr__(self) -> str:
        obj = "-" if self.objective is None else f"{self.objective:g}"
        cached = ", cached" if self.cache_hit else ""
        return f"Solution(status={self.status.value}, objective={obj}, backend={self.backend}{cached})"
