"""LP relaxation solving, shared by the model front-end and branch & bound.

Two interchangeable *cold-start* engines solve the relaxation of a
:class:`~repro.ilp.model.MatrixForm` through :func:`solve_matrix_lp`:

- ``"scipy"`` — ``scipy.optimize.linprog`` with the HiGHS dual simplex;
- ``"simplex"`` — our own two-phase tableau simplex from
  :mod:`repro.ilp.simplex`, fully self-contained and inspectable.

Inside branch and bound, ``lp_method`` selects which of these handles the
*cold* solves: the root LP when warm starts are off, and any node whose
warm re-solve bailed out. Healthy warm re-solves never come through this
module — they run on :class:`repro.ilp.simplex.RevisedSimplex`, which
reoptimizes dual-simplex-style from the parent node's basis and returns
an :class:`LpResult` carrying that basis for the children. So
``lp_method="simplex"`` composes with warm starts: it only changes the
fallback engine, not the warm path (see DESIGN.md §13).

All engines are exercised against each other by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.ilp.model import MatrixForm, Model
from repro.ilp.presolve import PropagationTables
from repro.ilp.simplex import solve_lp_simplex
from repro.ilp.solution import Solution, SolveStats, Status


@dataclass
class LpResult:
    """Raw relaxation outcome used by branch and bound.

    ``reduced_costs`` carries the per-column dual values (lower-bound plus
    upper-bound marginals) when the caller asked for them and the engine
    provides them; branch and bound feeds them to reduced-cost fixing.
    ``basis`` is the optimal :class:`~repro.ilp.simplex.Basis` when the
    warm engine produced this result — child nodes reoptimize from it.
    A ``"cutoff"`` status means the warm engine proved the LP bound is
    above the caller's objective cutoff without finishing the solve; the
    node prunes with no ``x``.
    """

    status: str  # "optimal" | "infeasible" | "unbounded" | "cutoff" | "error"
    x: np.ndarray | None
    objective: float | None
    iterations: int = 0
    reduced_costs: np.ndarray | None = None
    basis: object | None = None


class LpWorkspace:
    """Precomputed ``linprog`` inputs for repeated solves of one form.

    Branch and bound solves the same constraint matrices thousands of times
    with only the variable bounds changing. The workspace fixes the
    ``A_ub``/``b_ub``/``A_eq``/``b_eq`` handles (with the empty-matrix
    normalization done once), keeps a reusable ``(n, 2)`` bounds buffer so
    no per-node Python list of bound pairs is ever built, and owns the
    :class:`~repro.ilp.presolve.PropagationTables` used by node presolve.
    """

    def __init__(self, form: MatrixForm):
        self.form = form
        self.a_ub = form.a_ub if form.a_ub.size else None
        self.b_ub = form.b_ub if form.a_ub.size else None
        self.a_eq = form.a_eq if form.a_eq.size else None
        self.b_eq = form.b_eq if form.a_eq.size else None
        self._bounds = np.empty((form.num_vars, 2))
        self.propagation = PropagationTables(form)

    def bounds_array(self, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
        """Fill and return the shared bounds buffer (``linprog`` copies it)."""
        self._bounds[:, 0] = lb
        self._bounds[:, 1] = ub
        return self._bounds


def solve_matrix_lp(
    form: MatrixForm,
    lb: np.ndarray | None = None,
    ub: np.ndarray | None = None,
    method: str = "scipy",
    workspace: LpWorkspace | None = None,
    want_reduced_costs: bool = False,
) -> LpResult:
    """Solve the LP relaxation of ``form`` with optional bound overrides.

    Branch and bound passes tightened ``lb``/``ub`` arrays per node; when
    omitted, the model's own bounds are used. Passing a :class:`LpWorkspace`
    built on the same form skips re-deriving the constraint handles on every
    call; ``want_reduced_costs`` additionally returns the column duals
    (scipy engine only — the tableau simplex does not expose them).
    """
    lb = form.lb if lb is None else lb
    ub = form.ub if ub is None else ub
    if np.any(lb > ub):
        return LpResult("infeasible", None, None)

    if method == "simplex":
        res = solve_lp_simplex(form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq, lb, ub)
        obj = None if res.objective is None else res.objective + form.c0
        return LpResult(res.status, res.x, obj, res.iterations)
    if method != "scipy":
        raise ValueError(f"unknown LP method {method!r}; expected 'scipy' or 'simplex'")

    if workspace is not None:
        a_ub, b_ub, a_eq, b_eq = workspace.a_ub, workspace.b_ub, workspace.a_eq, workspace.b_eq
        bounds = workspace.bounds_array(lb, ub)
    else:
        a_ub = form.a_ub if form.a_ub.size else None
        b_ub = form.b_ub if form.a_ub.size else None
        a_eq = form.a_eq if form.a_eq.size else None
        b_eq = form.b_eq if form.a_eq.size else None
        bounds = np.column_stack((lb, ub))
    res = linprog(
        form.c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    iterations = int(getattr(res, "nit", 0) or 0)
    if res.status == 0:
        reduced_costs = None
        lower = getattr(res, "lower", None)
        upper = getattr(res, "upper", None)
        if want_reduced_costs and lower is not None and upper is not None:
            reduced_costs = np.asarray(lower.marginals) + np.asarray(upper.marginals)
        return LpResult(
            "optimal",
            np.asarray(res.x),
            float(res.fun) + form.c0,
            iterations,
            reduced_costs=reduced_costs,
        )
    if res.status == 2:
        return LpResult("infeasible", None, None, iterations)
    if res.status == 3:
        return LpResult("unbounded", None, None, iterations)
    return LpResult("error", None, None, iterations)


_STATUS_MAP = {
    "optimal": Status.OPTIMAL,
    "infeasible": Status.INFEASIBLE,
    "unbounded": Status.UNBOUNDED,
    "iteration_limit": Status.ITERATION_LIMIT,
    "error": Status.ITERATION_LIMIT,
}


def solve_relaxation(model: Model, method: str = "scipy") -> Solution:
    """Solve ``model`` with integrality dropped and wrap as a Solution."""
    form = model.to_matrix_form()
    result = solve_matrix_lp(form, method=method)
    status = _STATUS_MAP[result.status]
    if status is not Status.OPTIMAL:
        return Solution(status, backend=f"lp-{method}")
    sign = 1.0 if model.sense == "min" else -1.0
    values = {var: float(result.x[var.index]) for var in model.variables}
    return Solution(
        Status.OPTIMAL,
        objective=sign * result.objective,
        values=values,
        stats=SolveStats(lp_solves=1, lp_iterations=result.iterations),
        backend=f"lp-{method}",
    )
