"""Adapter for ``scipy.optimize.milp`` (HiGHS branch and cut).

Used as an independent oracle in the test suite: every design ILP solved by
our branch and bound is re-solved here and the objectives must agree. It can
also be selected as the production backend (``model.solve(backend="scipy")``)
when raw speed matters more than introspection.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStats, Status
from repro.obs import get_metrics, now, span


def solve_with_scipy(model: Model, time_limit: float | None = None) -> Solution:
    """Solve ``model`` exactly with HiGHS via scipy.

    Statuses map as: 0 -> OPTIMAL, 2 -> INFEASIBLE, 3 -> UNBOUNDED,
    1/4 (iteration or time interrupt) -> NODE_LIMIT.
    """
    form = model.to_matrix_form()
    constraints = []
    if form.a_ub.size:
        constraints.append(LinearConstraint(form.a_ub, -np.inf, form.b_ub))
    if form.a_eq.size:
        constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    start = now()
    with span("bnb_search", backend="scipy"):
        res = milp(
            c=form.c,
            constraints=constraints,
            integrality=form.integer_mask.astype(int),
            bounds=Bounds(form.lb, form.ub),
            options=options,
        )

    sign = 1.0 if model.sense == "min" else -1.0
    stats = SolveStats(
        nodes=int(getattr(res, "mip_node_count", 0) or 0),
        wall_time=now() - start,
    )
    metrics = get_metrics()
    metrics.counter("solve.nodes").inc(stats.nodes)
    metrics.histogram("solve.wall_time").observe(stats.wall_time)
    if res.status == 0:
        values = {var: float(res.x[var.index]) for var in model.variables}
        objective = sign * (float(res.fun) + form.c0)
        stats.gap = float(getattr(res, "mip_gap", 0.0) or 0.0)
        return Solution(Status.OPTIMAL, objective, values, stats, backend="scipy")
    if res.status == 2:
        return Solution(Status.INFEASIBLE, stats=stats, backend="scipy")
    if res.status == 3:
        return Solution(Status.UNBOUNDED, stats=stats, backend="scipy")
    if res.status == 4 and "unbounded or infeasible" in (res.message or ""):
        # HiGHS presolve could not tell the two apart; the LP relaxation can.
        from repro.ilp.lp import solve_matrix_lp

        relaxed = solve_matrix_lp(form)
        if relaxed.status == "unbounded":
            return Solution(Status.UNBOUNDED, stats=stats, backend="scipy")
        if relaxed.status == "infeasible":
            return Solution(Status.INFEASIBLE, stats=stats, backend="scipy")
    if res.x is not None:
        values = {var: float(res.x[var.index]) for var in model.variables}
        objective = sign * (float(res.fun) + form.c0)
        return Solution(Status.FEASIBLE, objective, values, stats, backend="scipy")
    return Solution(Status.NODE_LIMIT, stats=stats, backend="scipy")
