"""CPLEX LP file format export/import.

Lets any model built with this substrate be inspected, archived, or solved
by an external solver — the workflow the paper itself used (it shipped its
ILPs to ``lpsolve``). The writer emits the classic sectioned format::

    \\ tam-S1-TAM[16+16+16]
    Minimize
     obj: T
    Subject To
     assign_c880: x_c880_b0 + x_c880_b1 + x_c880_b2 = 1
     bus0_time: 823 x_c880_b0 + ... - T <= 0
    Bounds
     T >= 5151
    Binaries
     x_c880_b0 ...
    End

The parser reads the same dialect back (objective, constraints, bounds,
``Binaries``/``Generals`` sections) into a fresh :class:`Model`, and the
test suite round-trips models through it and re-solves to the same optimum.
Variable names must match ``[A-Za-z_][A-Za-z0-9_()\\[\\]\\.]*`` — true for
every name this library generates.
"""

from __future__ import annotations

import math
import re

from repro.ilp.expr import BINARY, EQ, GE, INTEGER, LE, LinExpr, Variable
from repro.ilp.model import Model
from repro.util.errors import ValidationError

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_()\[\].]*$")
_TOKEN_RE = re.compile(
    r"(?P<sign>[+-])|(?P<number>\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_()\[\].]*)"
)


def _format_coef(coef: float, name: str, first: bool) -> str:
    sign = "-" if coef < 0 else ("" if first else "+")
    magnitude = abs(coef)
    body = name if magnitude == 1.0 else f"{magnitude:.12g} {name}"
    return f"{sign} {body}".strip() if not first or sign else f"{sign}{body}"


def _format_expr(terms: dict[Variable, float]) -> str:
    parts = []
    items = sorted(terms.items(), key=lambda item: item[0].index)
    for position, (var, coef) in enumerate(items):
        if coef == 0:
            continue
        parts.append(_format_coef(coef, var.name, first=position == 0 and coef >= 0))
    return " ".join(parts) if parts else "0"


def write_lp(model: Model) -> str:
    """Serialize ``model`` to CPLEX LP text."""
    for var in model.variables:
        if not _NAME_RE.match(var.name):
            raise ValidationError(
                f"variable name {var.name!r} is not LP-format safe"
            )
    lines = [f"\\ {model.name}"]
    lines.append("Maximize" if model.sense == "max" else "Minimize")
    objective = _format_expr(model.objective.terms)
    lines.append(f" obj: {objective}")
    if model.objective.constant:
        lines.append(f"\\ objective constant {model.objective.constant:.12g} not expressible; re-add after solving")

    lines.append("Subject To")
    for index, constr in enumerate(model.constraints):
        label = constr.name or f"c{index}"
        op = {LE: "<=", GE: ">=", EQ: "="}[constr.sense]
        lines.append(f" {label}: {_format_expr(constr.terms)} {op} {constr.rhs:.12g}")

    bound_lines = []
    for var in model.variables:
        default_lb = 0.0 if var.vartype is not BINARY else 0.0
        lb, ub = var.lb, var.ub
        if var.vartype is BINARY and lb == 0.0 and ub == 1.0:
            continue
        if lb == default_lb and math.isinf(ub):
            continue
        if math.isinf(lb) and math.isinf(ub):
            bound_lines.append(f" {var.name} free")
        elif math.isinf(ub):
            bound_lines.append(f" {var.name} >= {lb:.12g}")
        elif math.isinf(lb):
            bound_lines.append(f" -inf <= {var.name} <= {ub:.12g}")
        else:
            bound_lines.append(f" {lb:.12g} <= {var.name} <= {ub:.12g}")
    if bound_lines:
        lines.append("Bounds")
        lines.extend(bound_lines)

    binaries = [v.name for v in model.variables if v.vartype is BINARY]
    generals = [v.name for v in model.variables if v.vartype is INTEGER]
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(binaries))
    if generals:
        lines.append("Generals")
        lines.append(" " + " ".join(generals))
    lines.append("End")
    return "\n".join(lines) + "\n"


class _Parser:
    """Recursive-descent-ish parser for the LP dialect written above."""

    _SECTIONS = {
        "minimize": "objective",
        "maximize": "objective",
        "subject": "constraints",
        "st": "constraints",
        "bounds": "bounds",
        "binaries": "binaries",
        "binary": "binaries",
        "generals": "generals",
        "general": "generals",
        "end": "end",
    }

    def __init__(self, text: str):
        self.model = Model("parsed-lp")
        self.vars: dict[str, Variable] = {}
        self.sense = "min"
        self.text = text

    def var(self, name: str) -> Variable:
        if name not in self.vars:
            self.vars[name] = self.model.add_var(name)
        return self.vars[name]

    def parse_expr(self, text: str) -> LinExpr:
        expr = LinExpr()
        sign = 1.0
        pending: float | None = None
        for match in _TOKEN_RE.finditer(text):
            if match.lastgroup == "sign":
                if pending is not None:
                    expr.constant += sign * pending
                    pending = None
                sign = -1.0 if match.group() == "-" else 1.0
            elif match.lastgroup == "number":
                if pending is not None:
                    expr.constant += sign * pending
                    sign = 1.0
                pending = float(match.group())
            else:
                coef = sign * (pending if pending is not None else 1.0)
                variable = self.var(match.group())
                expr.terms[variable] = expr.terms.get(variable, 0.0) + coef
                pending = None
                sign = 1.0
        if pending is not None:
            expr.constant += sign * pending
        return expr

    def parse(self) -> Model:
        section = None
        objective_text = []
        constraint_rows: list[tuple[str | None, str]] = []
        bound_rows: list[str] = []
        binary_names: list[str] = []
        general_names: list[str] = []

        for raw in self.text.splitlines():
            line = raw.split("\\", 1)[0].strip()
            if not line:
                continue
            keyword = line.split()[0].lower().rstrip(":")
            if keyword in self._SECTIONS and (
                keyword != "st" or line.lower().startswith(("st", "s.t."))
            ):
                section = self._SECTIONS[keyword]
                if section == "objective":
                    self.sense = "max" if keyword == "maximize" else "min"
                if section == "end":
                    break
                remainder = line.partition(" ")[2].strip()
                if section == "constraints" and line.lower().startswith("subject"):
                    remainder = remainder.partition(" ")[2].strip()  # drop "To"
                if remainder:
                    line = remainder
                else:
                    continue
            if section == "objective":
                objective_text.append(line)
            elif section == "constraints":
                label, colon, body = line.partition(":")
                if colon:
                    constraint_rows.append((label.strip(), body.strip()))
                else:
                    constraint_rows.append((None, line))
            elif section == "bounds":
                bound_rows.append(line)
            elif section == "binaries":
                binary_names.extend(line.split())
            elif section == "generals":
                general_names.extend(line.split())

        obj_body = " ".join(objective_text)
        obj_body = obj_body.partition(":")[2].strip() if ":" in obj_body else obj_body
        objective = self.parse_expr(obj_body)

        for label, body in constraint_rows:
            for op, sense in (("<=", LE), (">=", GE), ("=", EQ)):
                if op in body:
                    lhs_text, _, rhs_text = body.partition(op)
                    lhs = self.parse_expr(lhs_text)
                    rhs = self.parse_expr(rhs_text)
                    constr = (lhs - rhs <= 0) if sense == LE else (
                        (lhs - rhs >= 0) if sense == GE else (lhs - rhs == 0)
                    )
                    self.model.add_constr(constr, name=label)
                    break
            else:
                raise ValidationError(f"constraint without comparison: {body!r}")

        for row in bound_rows:
            self._apply_bound(row)
        for name in binary_names:
            self._retype(name, BINARY)
        for name in general_names:
            self._retype(name, INTEGER)

        if self.sense == "max":
            self.model.maximize(objective)
        else:
            self.model.minimize(objective)
        return self.model

    def _retype(self, name: str, vartype) -> None:
        var = self.var(name)
        var.vartype = vartype
        if vartype is BINARY:
            var.lb = max(var.lb, 0.0)
            var.ub = min(var.ub, 1.0)

    def _apply_bound(self, row: str) -> None:
        tokens = row.replace("<=", " <= ").replace(">=", " >= ").split()
        if len(tokens) == 2 and tokens[1].lower() == "free":
            var = self.var(tokens[0])
            var.lb, var.ub = -math.inf, math.inf
            return
        if len(tokens) == 3:
            left, op, right = tokens
            if op == ">=":
                self.var(left).lb = float(right)
            elif op == "<=":
                self.var(left).ub = float(right)
            else:
                raise ValidationError(f"malformed bound: {row!r}")
            return
        if len(tokens) == 5 and tokens[1] == "<=" and tokens[3] == "<=":
            lo, _, name, _, hi = tokens
            var = self.var(name)
            var.lb = -math.inf if lo.lower() in ("-inf", "-infinity") else float(lo)
            var.ub = float(hi)
            return
        raise ValidationError(f"malformed bound: {row!r}")


def parse_lp(text: str) -> Model:
    """Parse LP-format text into a fresh :class:`Model`."""
    return _Parser(text).parse()


def save_lp(model: Model, path) -> None:
    """Write ``model`` to an ``.lp`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_lp(model))


def load_lp(path) -> Model:
    """Read an ``.lp`` file into a model."""
    with open(path, encoding="utf-8") as handle:
        return parse_lp(handle.read())
