"""repro — SOC test access architecture design under place-and-route and power constraints.

A from-scratch reproduction of K. Chakrabarty, *"Design of system-on-a-chip
test access architectures under place-and-route and power constraints"*,
Proc. ACM/IEEE Design Automation Conference (DAC), 2000, pp. 432-437.

Quickstart::

    from repro import build_s1, TamArchitecture, DesignProblem, design

    soc = build_s1()
    problem = DesignProblem(soc=soc, arch=TamArchitecture([16, 16, 32]),
                            timing="serial", power_budget=150.0)
    result = design(problem)
    print(result.describe())

Layering (see DESIGN.md):

- :mod:`repro.ilp` — from-scratch MILP substrate (simplex + branch & bound);
- :mod:`repro.soc` — core/SOC data model, ISCAS catalog, benchmark systems;
- :mod:`repro.wrapper` — width-dependent test-time curves;
- :mod:`repro.tam` — bus architectures, timing models, assignments;
- :mod:`repro.power` — power compatibility analysis and profiles;
- :mod:`repro.layout` — floorplans, placers, wirelength, distance constraints;
- :mod:`repro.core` — the paper's constrained ILP design flow;
- :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro.core import (
    DesignProblem,
    TamDesign,
    build_assignment_ilp,
    build_schedule,
    design,
    design_best_architecture,
    lpt_assignment,
    local_search,
    random_assignment,
    run_all_baselines,
    simulated_annealing,
    width_sweep,
    power_budget_sweep,
    distance_budget_sweep,
    pareto_front,
    minimize_width,
    explore_bus_counts,
    schedule_with_power_cap,
    design_report,
)
from repro.layout import Floorplan, anneal_place, grid_place, tam_wirelength
from repro.soc import (
    Core,
    Soc,
    build_s1,
    build_s2,
    build_s3,
    build_soc,
    build_d695,
    generate_synthetic_soc,
    load_soc,
    save_soc,
)
from repro.tam import Assignment, TamArchitecture, exhaustive_optimal, make_timing_model
from repro.util.errors import InfeasibleError, ReproError, SolverError, ValidationError

__version__ = "1.0.0"

__all__ = [
    "DesignProblem",
    "TamDesign",
    "build_assignment_ilp",
    "build_schedule",
    "design",
    "design_best_architecture",
    "lpt_assignment",
    "local_search",
    "random_assignment",
    "run_all_baselines",
    "simulated_annealing",
    "width_sweep",
    "power_budget_sweep",
    "distance_budget_sweep",
    "pareto_front",
    "minimize_width",
    "explore_bus_counts",
    "schedule_with_power_cap",
    "design_report",
    "Floorplan",
    "anneal_place",
    "grid_place",
    "tam_wirelength",
    "Core",
    "Soc",
    "build_s1",
    "build_s2",
    "build_s3",
    "build_soc",
    "build_d695",
    "generate_synthetic_soc",
    "load_soc",
    "save_soc",
    "Assignment",
    "TamArchitecture",
    "exhaustive_optimal",
    "make_timing_model",
    "InfeasibleError",
    "ReproError",
    "SolverError",
    "ValidationError",
    "__version__",
]
